_start:
    li r4, 3            ; multiplicand
    li r5, 5            ; multiplier (101b: three mstep iterations)
    movtos md, r5
    mov r10, r4         ; running multiplicand, doubled each step
    li r3, 0
mul_loop:
    mstep r3, r3, r10   ; r3 += r10 if MD bit 0; MD >>= 1
    sll r10, r10, 1
    movfrs r11, md      ; early-out test must read MD *after* the step
    bne r11, r0, mul_loop
    halt
