"""Exact-equivalence tests for the trace-driven replay models.

The capture-once/replay-many pipeline is only admissible because the
replay models are *bit-exact* against the live simulators; these tests
pin that down three ways:

* randomized (hypothesis) address streams through the Icache and Ecache
  replay models vs. the live caches, across organizations and policies;
* real pipeline-captured streams: a workload runs on the cycle-accurate
  machine with a :class:`TraceCollector` attached and the recorded
  streams replay to the machine's own cache statistics;
* the Table 1 branch study replayed from stored counts/plans equals the
  live evaluation, and the traced sweeps agree with the live points.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import EcacheConfig, IcacheConfig
from repro.ecache import trace_sim as ecache_sim
from repro.ecache.ecache import Ecache
from repro.icache import trace_sim as icache_sim
from repro.icache.cache import simulate
from repro.traces.store import TraceStore


def icache_signature(stats):
    return (stats.accesses, stats.hits, stats.misses,
            stats.words_filled, stats.tag_allocations)


geometries = st.sampled_from([
    (4, 8, 16),   # the paper's organization
    (2, 4, 8),
    (8, 2, 4),
    (1, 4, 4),    # fully associative
    (16, 1, 2),   # direct mapped
    (4, 2, 1),    # single-word blocks (the replay fast path)
])


class TestIcacheReplayEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(geometry=geometries,
           fetchback=st.integers(0, 4),
           policy=st.sampled_from(["lru", "fifo", "random"]),
           addresses=st.lists(st.integers(0, 4095),
                              min_size=1, max_size=400))
    def test_replay_matches_live_simulation(self, geometry, fetchback,
                                            policy, addresses):
        sets, ways, block = geometry
        config = IcacheConfig(sets=sets, ways=ways, block_words=block,
                              fetchback=fetchback, replacement=policy)
        live = simulate(config, addresses)
        replayed = icache_sim.replay(
            config, np.asarray(addresses, dtype=np.int64))
        assert icache_signature(replayed) == icache_signature(live)

    @settings(max_examples=20, deadline=None)
    @given(addresses=st.lists(st.integers(0, 2047),
                              min_size=1, max_size=300))
    def test_repeated_runs_stay_exact(self, addresses):
        # stress the run/repeat collapse: loop the same window many times
        looped = addresses * 5
        config = IcacheConfig()
        live = simulate(config, looped)
        replayed = icache_sim.replay(
            config, np.asarray(looped, dtype=np.int64))
        assert icache_signature(replayed) == icache_signature(live)

    def test_empty_trace(self):
        stats = icache_sim.replay(IcacheConfig(),
                                  np.empty(0, dtype=np.int64))
        assert stats.accesses == 0 and stats.misses == 0


class TestEcacheReplayEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(size_words=st.sampled_from([64, 256, 1024]),
           line_words=st.sampled_from([1, 4, 8]),
           write_through=st.booleans(),
           refs=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 8191)),
                         min_size=1, max_size=400))
    def test_replay_matches_live_ecache(self, size_words, line_words,
                                        write_through, refs):
        config = EcacheConfig(size_words=size_words, line_words=line_words,
                              write_through=write_through)
        cache = Ecache(config)
        live_stall = 0
        for kind, address in refs:
            if kind == ecache_sim.KIND_READ:
                live_stall += cache.read(address, True)
            elif kind == ecache_sim.KIND_WRITE:
                live_stall += cache.write(address, True)
            else:
                live_stall += cache.ifetch(address, True)
        kinds = np.array([k for k, _ in refs], dtype=np.int8)
        addresses = np.array([a for _, a in refs], dtype=np.int64)
        stats, stall = ecache_sim.replay(config, kinds, addresses)
        assert stats == cache.stats
        assert stall == live_stall

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ecache_sim.replay(EcacheConfig(), [0, 0], [1])


class TestPipelineCapturedStreams:
    """A real workload's captured streams replay to the machine's stats."""

    @pytest.fixture(scope="class")
    def captured(self):
        from repro.core import Machine, MachineConfig
        from repro.traces.capture import TraceCollector
        from repro.workloads import cached_program

        machine = Machine(MachineConfig())
        collector = TraceCollector(ecache=True)
        machine.set_trace(collector)
        machine.load_program(cached_program("sieve"))
        machine.run(2_000_000)
        assert machine.halted
        return machine, collector

    def test_fetch_stream_replays_to_icache_stats(self, captured):
        machine, collector = captured
        replayed = icache_sim.replay(machine.config.icache,
                                     collector.fetch_array())
        assert (icache_signature(replayed)
                == icache_signature(machine.icache.stats))

    def test_ecache_stream_replays_to_ecache_stats(self, captured):
        machine, collector = captured
        kinds, addresses = collector.ecache_arrays()
        stats, _ = ecache_sim.replay(machine.config.ecache, kinds, addresses)
        assert stats == machine.ecache.stats


class TestTable1Replay:
    NAMES = ("sieve", "bubble")

    def test_traced_equals_live(self, tmp_path):
        from repro.analysis.branch_schemes import table1
        from repro.analysis.trace_replay import ReplayTiming, table1_traced

        live = table1(self.NAMES)
        timing = ReplayTiming()
        store = TraceStore(root=tmp_path)
        traced = table1_traced(self.NAMES, store=store, timing=timing)
        assert timing.cache_misses > 0 and timing.cache_hits >= 0
        for a, b in zip(live, traced):
            assert a.scheme.name == b.scheme.name
            assert (a.executions, a.cycles) == (b.executions, b.cycles)
            assert a.cycles_per_branch == pytest.approx(b.cycles_per_branch)

        # a warm second pass is served entirely from the store
        warm = ReplayTiming()
        again = table1_traced(self.NAMES, store=store, timing=warm)
        assert warm.cache_misses == 0
        assert warm.capture_s == 0.0
        assert [(e.executions, e.cycles) for e in again] == \
            [(e.executions, e.cycles) for e in traced]

    def test_source_hash_keys_the_store(self, tmp_path):
        from repro.analysis.trace_replay import (
            branch_counts_descriptor,
            workload_source_hash,
        )

        key = branch_counts_descriptor("sieve")
        assert key["source"] == workload_source_hash("sieve")
        assert (branch_counts_descriptor("sieve")["source"]
                != branch_counts_descriptor("bubble")["source"])


class TestTracedSweepsMatchLivePoints:
    def test_icache_sweep_row_matches_live_point(self, tmp_path):
        from repro.harness.experiments import (
            icache_organization_point,
            traced_icache_sweep,
        )

        outcome = traced_icache_sweep(quick=True,
                                      store=TraceStore(root=tmp_path))
        rows = {row["id"]: row for row in outcome["rows"]}
        # fetchback-2 is the paper organization under its live job id
        row = rows["icache/fetchback-2"]
        live = icache_organization_point(sets=4, ways=8, block_words=16,
                                         trace_length=60_000)
        assert row["miss_ratio"] == live["miss_ratio"]
        assert row["fetch_cost"] == pytest.approx(live["fetch_cost"])
        # the fetch-back satellite jobs ride along under live job ids
        assert {f"icache/fetchback-{fb}" for fb in (1, 2, 3, 4)} <= set(rows)

    def test_ecache_sweep_row_matches_live_point(self, tmp_path):
        from repro.harness.experiments import (
            ecache_size_point,
            traced_ecache_sweep,
        )

        outcome = traced_ecache_sweep(quick=True,
                                      store=TraceStore(root=tmp_path))
        rows = {row["id"]: row for row in outcome["rows"]}
        live = ecache_size_point(16384, references=80_000)
        assert rows["ecache/16384w"]["miss_rate"] == live["miss_rate"]
        assert (rows["ecache/16384w"]["stall_per_ref"]
                == pytest.approx(live["stall_per_ref"]))

    def test_warm_sweep_hits_the_store(self, tmp_path):
        from repro.harness.experiments import traced_ecache_sweep

        store = TraceStore(root=tmp_path)
        cold = traced_ecache_sweep(quick=True, store=store)
        warm = traced_ecache_sweep(quick=True, store=store)
        assert cold["cache_misses"] == 1 and cold["cache_hits"] == 0
        assert warm["cache_hits"] == 1 and warm["cache_misses"] == 0
        assert warm["capture_s"] == 0.0
        assert warm["rows"] == cold["rows"]
