"""Tests for the coprocessor interface and the FPU: payload routing,
ldf/stf privileged access, data moves, comparisons, and pipeline timing."""

import math

import pytest

from repro.asm import assemble
from repro.coproc import (
    Coprocessor,
    CoprocessorError,
    CoprocessorSet,
    Fpu,
    FpuOp,
    float_to_word,
    fpu_op,
    make_payload,
    word_to_float,
)
from repro.core import Machine, perfect_memory_config


class TestPayloads:
    def test_round_trip_fields(self):
        from repro.coproc import cop_number, cop_opcode, cop_rd, cop_rs

        payload = make_payload(3, 5, rd=7, rs=9)
        assert cop_number(payload) == 3
        assert cop_opcode(payload) == 5
        assert cop_rd(payload) == 7
        assert cop_rs(payload) == 9

    def test_bad_number_rejected(self):
        with pytest.raises(ValueError):
            make_payload(0, 1)
        with pytest.raises(ValueError):
            make_payload(8, 1)

    def test_small_payloads_fit_an_immediate(self):
        """Payloads with registers < 16 fit the 17-bit signed offset."""
        payload = make_payload(7, 15, rd=15, rs=15)
        assert payload < (1 << 16)


class TestFloatConversion:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.0, 0.5, 3.14159, 1e30,
                                       -2.5e-20])
    def test_round_trip(self, value):
        single = word_to_float(float_to_word(value))
        assert single == pytest.approx(value, rel=1e-6)

    def test_overflow_to_infinity(self):
        assert math.isinf(word_to_float(float_to_word(1e300)))


class TestFpuOperations:
    def _fpu_with(self, values):
        fpu = Fpu()
        for index, value in enumerate(values):
            fpu.regs[index] = value
        return fpu

    def test_fadd(self):
        fpu = self._fpu_with([1.5, 2.25])
        fpu.execute(fpu_op(FpuOp.FADD, fd=0, fs=1))
        assert fpu.regs[0] == 3.75

    def test_fsub_fmul_fdiv(self):
        fpu = self._fpu_with([8.0, 2.0])
        fpu.execute(fpu_op(FpuOp.FSUB, 0, 1))
        assert fpu.regs[0] == 6.0
        fpu.execute(fpu_op(FpuOp.FMUL, 0, 1))
        assert fpu.regs[0] == 12.0
        fpu.execute(fpu_op(FpuOp.FDIV, 0, 1))
        assert fpu.regs[0] == 6.0

    def test_fdiv_by_zero_gives_inf(self):
        fpu = self._fpu_with([1.0, 0.0])
        fpu.execute(fpu_op(FpuOp.FDIV, 0, 1))
        assert math.isinf(fpu.regs[0])

    def test_fneg_fabs_fmov(self):
        fpu = self._fpu_with([0.0, -4.5])
        fpu.execute(fpu_op(FpuOp.FABS, 0, 1))
        assert fpu.regs[0] == 4.5
        fpu.execute(fpu_op(FpuOp.FNEG, 2, 1))
        assert fpu.regs[2] == 4.5
        fpu.execute(fpu_op(FpuOp.FMOV, 3, 1))
        assert fpu.regs[3] == -4.5

    def test_fcmp_status(self):
        from repro.coproc.fpu import STATUS_EQ, STATUS_GT, STATUS_LT

        fpu = self._fpu_with([1.0, 2.0])
        fpu.execute(fpu_op(FpuOp.FCMP, 0, 1))
        assert fpu.status == STATUS_LT
        fpu.execute(fpu_op(FpuOp.FCMP, 1, 0))
        assert fpu.status == STATUS_GT
        fpu.execute(fpu_op(FpuOp.FCMP, 0, 0))
        assert fpu.status == STATUS_EQ

    def test_single_precision_rounding(self):
        fpu = self._fpu_with([1.0, 1e-10])
        fpu.execute(fpu_op(FpuOp.FADD, 0, 1))
        assert fpu.regs[0] == 1.0  # 1e-10 lost in single precision

    def test_int_conversion_moves(self):
        fpu = Fpu()
        fpu.write_data(fpu_op(FpuOp.MTC_INT, fd=2), (-7) & 0xFFFFFFFF)
        assert fpu.regs[2] == -7.0
        assert fpu.read_data(fpu_op(FpuOp.MFC_INT, fd=2)) == (-7) & 0xFFFFFFFF

    def test_undefined_opcode_raises(self):
        with pytest.raises(CoprocessorError):
            Fpu().execute(fpu_op(15))


class TestCoprocessorSet:
    def test_routing_by_number(self):
        class Recorder(Coprocessor):
            number = 3

            def __init__(self):
                self.seen = []

            def execute(self, payload):
                self.seen.append(payload)

        cops = CoprocessorSet()
        recorder = Recorder()
        cops.attach(recorder)
        payload = make_payload(3, 1)
        cops.execute(payload)
        assert recorder.seen == [payload]

    def test_missing_coprocessor_raises(self):
        with pytest.raises(CoprocessorError):
            CoprocessorSet().execute(make_payload(5, 0))

    def test_fpu_slot_is_number_one(self):
        cops = CoprocessorSet()
        fpu = Fpu()
        cops.attach(fpu)
        assert cops.fpu_slot is fpu


class TestFpuFromPipeline:
    def _machine(self, source):
        machine = Machine(perfect_memory_config())
        machine.attach_coprocessor(Fpu())
        machine.load_program(assemble(source))
        machine.run()
        assert machine.halted
        return machine

    def test_ldf_fadd_stf_round_trip(self):
        a, b = float_to_word(1.5), float_to_word(2.25)
        source = f"""
        _start:
            la  t0, data
            ldf f0, 0(t0)
            ldf f1, 1(t0)
            cop {fpu_op(FpuOp.FADD, 0, 1)}(r0)
            stf f0, 2(t0)
            halt
        data: .word {a}, {b}
        result: .space 1
        """
        machine = self._machine(source)
        program = assemble(source)
        word = machine.memory.system.read(program.symbols["result"])
        assert word_to_float(word) == 3.75

    def test_movtoc_movfrc_round_trip(self):
        source = f"""
        _start:
            li t0, 21
            movtoc t0, {fpu_op(FpuOp.MTC_INT, fd=3)}(r0)
            cop {fpu_op(FpuOp.FADD, 3, 3)}(r0)
            movfrc t1, {fpu_op(FpuOp.MFC_INT, fd=3)}(r0)
            nop                     ; movfrc has load timing
            mov rv, t1
            halt
        """
        machine = self._machine(source)
        assert machine.regs[3] == 42

    def test_movfrc_has_load_delay_hazard(self):
        from repro.core import HazardViolation

        source = f"""
        _start:
            movfrc t1, {fpu_op(FpuOp.MFC_STATUS)}(r0)
            mov rv, t1     ; hazard: uses movfrc result in its delay slot
            halt
        """
        machine = Machine(perfect_memory_config())
        machine.attach_coprocessor(Fpu())
        machine.load_program(assemble(source))
        with pytest.raises(HazardViolation):
            machine.run()

    def test_branch_on_fpu_condition(self):
        """The paper's final scheme: read the status register, then branch."""
        from repro.coproc.fpu import STATUS_LT

        a, b = float_to_word(1.0), float_to_word(2.0)
        source = f"""
        _start:
            la  t0, data
            ldf f0, 0(t0)
            ldf f1, 1(t0)
            cop {fpu_op(FpuOp.FCMP, 0, 1)}(r0)
            movfrc t1, {fpu_op(FpuOp.MFC_STATUS)}(r0)
            li  t2, {STATUS_LT}
            and t3, t1, t2
            bne t3, r0, less
            nop
            nop
            li rv, 0
            halt
        less:
            li rv, 1
            halt
        data: .word {a}, {b}
        """
        machine = self._machine(source)
        assert machine.regs[3] == 1

    def test_coproc_ops_are_counted(self):
        source = f"""
        _start:
            cop {fpu_op(FpuOp.FADD, 0, 0)}(r0)
            cop {fpu_op(FpuOp.FADD, 0, 0)}(r0)
            halt
        """
        machine = self._machine(source)
        assert machine.stats.coproc_ops == 2

    def test_ldf_without_fpu_raises(self):
        machine = Machine(perfect_memory_config())
        machine.load_program(assemble("_start: ldf f0, 0(r0)\nhalt"))
        with pytest.raises(RuntimeError):
            machine.run()
