"""Tests for the assembler, symbolic units, and disassembler."""

import pytest

from repro.asm import (
    AsmSyntaxError,
    AssemblyError,
    assemble,
    disassemble_word,
    listing,
)
from repro.asm.assembler import expand_li
from repro.isa import Opcode, decode
from repro.isa import instruction as I


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("add t0, t1, t2")
        assert len(program.image) == 1
        instr = decode(program.image[0])
        assert instr.funct.name == "ADD"

    def test_labels_resolve_to_addresses(self):
        program = assemble(
            """
            _start: nop
            loop:   nop
                    br loop
            """
        )
        assert program.symbols["_start"] == 0
        assert program.symbols["loop"] == 1

    def test_branch_displacement_is_relative(self):
        program = assemble(
            """
            loop: nop
                  nop
                  beq r0, r0, loop
            """
        )
        branch = program.listing[2]
        assert branch.imm == -2

    def test_forward_branch(self):
        program = assemble(
            """
            beq r0, r0, done
            nop
            nop
            done: halt
            """
        )
        assert program.listing[0].imm == 3

    def test_squash_suffix(self):
        program = assemble("loop: beqsq t0, r0, loop")
        assert program.listing[0].squash

    def test_memory_operand_forms(self):
        program = assemble(
            """
            ld t0, 4(sp)
            ld t1, var
            ld t2, var+2(gp)
            st t0, -1(sp)
            var: .word 42
            """
        )
        assert program.listing[0].imm == 4 and program.listing[0].src1 == 1
        assert program.listing[1].imm == 4  # address of var
        assert program.listing[2].imm == 6 and program.listing[2].src1 == 31
        assert program.listing[3].imm == -1

    def test_word_directive_values_and_symbols(self):
        program = assemble(
            """
            halt
            table: .word 1, 2, 0x10, entry
            entry: nop
            """
        )
        table = program.symbols["table"]
        assert [program.image[table + k] for k in range(4)] == [
            1, 2, 16, program.symbols["entry"]]

    def test_space_reserves_zeroed_words(self):
        program = assemble("halt\nbuf: .space 3")
        buf = program.symbols["buf"]
        assert all(program.image[buf + k] == 0 for k in range(3))

    def test_org_directive(self):
        program = assemble(".org 0x100\nhalt")
        assert 0x100 in program.image

    def test_entry_defaults_to_start_label(self):
        program = assemble("nop\n_start: halt")
        assert program.entry == 1

    def test_comments_and_blank_lines(self):
        program = assemble("; header\n\nnop ; trailing\n# another\nhalt")
        assert len(program.image) == 2


class TestPseudoInstructions:
    def test_li_small(self):
        program = assemble("li t0, 42")
        assert len(program.image) == 1
        assert program.listing[0].opcode == Opcode.ADDI

    def test_li_negative_small(self):
        program = assemble("li t0, -30000")
        assert len(program.image) == 1

    def test_li_large_is_three_instructions(self):
        program = assemble("li t0, 0x12345678")
        assert len(program.image) == 3

    @pytest.mark.parametrize("value", [
        0, 1, -1, 0x7FFF, 0x8000, -0x8000, 0xFFFF, 0x10000, 0x12345678,
        -0x12345678, 0x7FFFFFFF, -0x80000000, 0xFFFFFFFF])
    def test_expand_li_semantics(self, value):
        """The expansion must compute exactly the 32-bit value."""
        acc = {}

        def signed(x):
            x &= 0xFFFFFFFF
            return x - (1 << 32) if x & 0x80000000 else x

        reg = 10
        current = 0
        for instr in expand_li(reg, value):
            if instr.opcode == Opcode.ADDI:
                base = current if instr.src1 == reg else 0
                current = (signed(base) + instr.imm) & 0xFFFFFFFF
            else:  # sll
                current = (current << instr.shamt) & 0xFFFFFFFF
        acc[reg] = current
        assert acc[reg] == value & 0xFFFFFFFF

    def test_mov_is_or_with_r0(self):
        instr = assemble("mov t0, t1").listing[0]
        assert instr.funct.name == "OR" and instr.src2 == 0

    def test_call_and_ret(self):
        program = assemble(
            """
            _start: call f
                    nop
                    nop
                    halt
            f:      ret
            """
        )
        call = program.listing[0]
        assert call.opcode == Opcode.JSPCI and call.src2 == 2
        assert call.imm == program.symbols["f"]
        ret = program.listing[program.symbols["f"]]
        assert ret.opcode == Opcode.JSPCI and ret.src1 == 2 and ret.src2 == 0

    def test_la_loads_symbol_address(self):
        program = assemble("la t0, buf\nhalt\nbuf: .space 1")
        assert program.listing[0].imm == program.symbols["buf"]

    def test_jmp_alias(self):
        program = assemble("_start: jmp _start")
        assert program.listing[0].opcode == Opcode.BEQ


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError):
            assemble("frobnicate t0, t1")

    def test_unknown_register(self):
        with pytest.raises(AsmSyntaxError):
            assemble("add t0, t1, t99")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError):
            assemble("br nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: nop")

    def test_offset_out_of_range(self):
        with pytest.raises(AssemblyError):
            assemble("ld t0, 100000(r0)")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmSyntaxError) as info:
            assemble("nop\nbogus x")
        assert "line 2" in str(info.value)


class TestSpecialForms:
    def test_movfrs_movtos(self):
        program = assemble("movfrs t0, psw\nmovtos md, t0")
        assert program.listing[0].shamt == 0
        assert program.listing[1].shamt == 2

    def test_coprocessor_forms(self):
        program = assemble(
            """
            cop 0x29(r0)
            movtoc t0, 0x31(r0)
            movfrc t1, 0x51(t2)
            """
        )
        assert program.listing[0].opcode == Opcode.COP
        assert program.listing[1].opcode == Opcode.MOVTOC
        assert program.listing[2].opcode == Opcode.MOVFRC
        assert program.listing[2].src1 == 12  # t2

    def test_fpu_register_operands(self):
        program = assemble("ldf f3, 0(sp)\nstf f15, 1(sp)")
        assert program.listing[0].src2 == 3
        assert program.listing[1].src2 == 15


class TestDisassembler:
    def test_round_trip_text(self):
        source = """
        _start: li t0, 7
                add t1, t0, t0
                beqsq t1, r0, _start
                nop
                nop
                halt
        """
        program = assemble(source)
        for address, instr in program.listing.items():
            text = disassemble_word(program.image[address])
            assert text == str(instr)

    def test_data_words_render_as_word_directive(self):
        assert disassemble_word(0xFFFFFFFF).startswith(".word")

    def test_listing_contains_symbols(self):
        program = assemble("_start: nop\nhalt")
        text = listing(program)
        assert "_start:" in text and "nop" in text


class TestProgramProperties:
    def test_code_size_excludes_data(self):
        program = assemble("nop\nhalt\ntab: .word 1, 2, 3")
        assert program.code_size == 2
        assert program.size == 5

    def test_reassembly_is_deterministic(self):
        source = "_start: li t0, 99\nbr _start"
        assert assemble(source).image == assemble(source).image
