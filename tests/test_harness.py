"""Tests for the parallel experiment harness.

Covers the :class:`repro.harness.runner.Runner` contract:

* serial and parallel runs of the same jobs merge to identical results,
  in submission order, regardless of completion order;
* per-job timeouts terminate the worker and record ``"timeout"``;
* a worker that dies without reporting is retried once, then recorded as
  ``"crashed"``; an in-worker exception is ``"error"`` with no retry;
* the sweep grids are well-formed (unique ids, resolvable entry points).

The job helpers below must be module-level so the ``"module:function"``
specs resolve inside worker processes.
"""

import os
import time

import pytest

from repro.harness.experiments import (EXPERIMENT_SWEEPS, default_jobs,
                                       sweep_jobs)
from repro.harness.runner import Job, JobResult, Runner, merge_values, resolve

HERE = "tests.test_harness"


# ----------------------------------------------------------- job helpers
def _square(x):
    return x * x


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def _raise(message):
    raise RuntimeError(message)


def _crash_once(marker):
    """Die hard (no exception, no pipe report) on the first attempt."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(17)
    return "recovered"


def _always_crash():
    os._exit(23)


def _squares(count):
    return [Job(id=f"sq/{i}", fn=f"{HERE}:_square", params={"x": i})
            for i in range(count)]


# ------------------------------------------------------------ scheduling
class TestRunnerScheduling:
    def test_serial_matches_parallel(self):
        jobs = _squares(8)
        runner = Runner(max_workers=4)
        serial = runner.run(jobs, parallel=False)
        parallel = runner.run(jobs, parallel=True)
        assert merge_values(serial) == merge_values(parallel)
        assert [r.status for r in parallel] == ["ok"] * len(jobs)

    def test_results_come_back_in_submission_order(self):
        # Reverse-sorted sleeps: completion order is the opposite of
        # submission order, the merge must restore the latter.
        delays = [0.30, 0.15, 0.0]
        jobs = [Job(id=f"sleep/{i}", fn=f"{HERE}:_sleep_then_return",
                    params={"seconds": s, "value": i})
                for i, s in enumerate(delays)]
        results = Runner(max_workers=len(jobs)).run(jobs)
        assert [r.job_id for r in results] == [j.id for j in jobs]
        assert [r.value for r in results] == [0, 1, 2]

    def test_more_jobs_than_workers(self):
        jobs = _squares(9)
        results = Runner(max_workers=2).run(jobs)
        assert merge_values(results) == {f"sq/{i}": i * i for i in range(9)}

    def test_duplicate_ids_rejected(self):
        jobs = [Job(id="dup", fn=f"{HERE}:_square", params={"x": 1}),
                Job(id="dup", fn=f"{HERE}:_square", params={"x": 2})]
        with pytest.raises(ValueError, match="unique"):
            Runner(max_workers=2).run(jobs)

    def test_resolve_rejects_malformed_spec(self):
        with pytest.raises(ValueError, match="module:function"):
            resolve("no_colon_here")


# --------------------------------------------------------- failure modes
class TestFailureModes:
    def test_timeout_kills_the_worker(self):
        jobs = [Job(id="fast", fn=f"{HERE}:_square", params={"x": 3}),
                Job(id="stuck", fn=f"{HERE}:_sleep_then_return",
                    params={"seconds": 30.0, "value": None}, timeout=0.4)]
        started = time.monotonic()
        results = Runner(max_workers=2).run(jobs)
        assert time.monotonic() - started < 10.0
        by_id = {r.job_id: r for r in results}
        assert by_id["fast"].status == "ok" and by_id["fast"].value == 9
        assert by_id["stuck"].status == "timeout"
        assert "0.4" in by_id["stuck"].error
        assert not by_id["stuck"].ok

    def test_crash_is_retried_once(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        jobs = [Job(id="flaky", fn=f"{HERE}:_crash_once",
                    params={"marker": marker})]
        (result,) = Runner(max_workers=1).run(jobs)
        assert result.status == "ok"
        assert result.value == "recovered"
        assert result.attempts == 2

    def test_second_crash_is_final(self):
        jobs = [Job(id="doomed", fn=f"{HERE}:_always_crash")]
        (result,) = Runner(max_workers=1).run(jobs)
        assert result.status == "crashed"
        assert result.attempts == 2
        assert "exitcode" in result.error

    def test_exception_is_error_without_retry(self):
        jobs = [Job(id="boom", fn=f"{HERE}:_raise",
                    params={"message": "deliberate"})]
        (result,) = Runner(max_workers=1).run(jobs)
        assert result.status == "error"
        assert result.attempts == 1
        assert "deliberate" in result.error

    def test_serial_reports_errors_too(self):
        jobs = [Job(id="boom", fn=f"{HERE}:_raise",
                    params={"message": "deliberate"})]
        (result,) = Runner().run(jobs, parallel=False)
        assert result.status == "error"
        assert "deliberate" in result.error


# ------------------------------------------------------- experiment grids
class TestExperimentGrids:
    def test_grids_are_well_formed(self):
        jobs = default_jobs(quick=True, timeout=120.0)
        ids = [j.id for j in jobs]
        assert len(set(ids)) == len(ids)
        assert all(j.timeout == 120.0 for j in jobs)
        assert {j.sweep for j in jobs} == set(EXPERIMENT_SWEEPS)
        for job in jobs:
            assert callable(resolve(job.fn))

    def test_quick_grid_is_a_subset(self):
        quick = {j.id for j in default_jobs(quick=True)}
        full = {j.id for j in default_jobs(quick=False)}
        assert quick <= full
        assert len(quick) < len(full)

    def test_ecache_sweep_deterministic_across_modes(self):
        # A real experiment point (not a toy helper): the same sweep run
        # serially and in parallel must merge to identical physics.
        jobs = [Job(id=j.id, fn=j.fn,
                    params=dict(j.params, references=20_000),
                    sweep=j.sweep)
                for j in sweep_jobs("ecache-sweep", quick=True)]
        runner = Runner(max_workers=2)
        serial = merge_values(runner.run(jobs, parallel=False))
        parallel = merge_values(runner.run(jobs, parallel=True))
        assert serial == parallel
        assert all(0.0 <= row["miss_rate"] <= 1.0
                   for row in parallel.values())

    @pytest.mark.slow
    def test_full_quick_sweep_deterministic(self):
        # The whole --quick grid, both execution modes.  Tens of
        # seconds of simulation: opt in with --run-slow.
        jobs = default_jobs(quick=True)
        runner = Runner(max_workers=2)
        serial = runner.run(jobs, parallel=False)
        parallel = runner.run(jobs, parallel=True)
        assert [r.status for r in serial] == ["ok"] * len(jobs)
        assert [r.status for r in parallel] == ["ok"] * len(jobs)
        assert merge_values(serial) == merge_values(parallel)


def test_job_result_ok_property():
    assert JobResult("x", "ok").ok
    for status in ("error", "timeout", "crashed"):
        assert not JobResult("x", status).ok
