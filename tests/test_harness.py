"""Tests for the parallel experiment harness.

Covers the :class:`repro.harness.runner.Runner` contract:

* serial and parallel runs of the same jobs merge to identical results,
  in submission order, regardless of completion order;
* per-job timeouts terminate the worker and record ``"timeout"``;
* the full status taxonomy -- ``"ok"``, ``"error"`` (in-worker exception,
  remote traceback in ``error``, exception type in ``error_kind``, no
  retry), ``"timeout"``, ``"crashed"`` (worker died without reporting,
  retried with backoff until exhausted), ``"retried-ok"`` (ok after at
  least one crash retry);
* chaos mode: :class:`ChaosMonkey` kills a seeded subset of first-attempt
  workers mid-job, and the retry/merge path delivers results identical to
  a serial run;
* the sweep grids are well-formed (unique ids, resolvable entry points).

The job helpers below must be module-level so the ``"module:function"``
specs resolve inside worker processes.
"""

import os
import time

import pytest

from repro.harness.experiments import (EXPERIMENT_SWEEPS, default_jobs,
                                       sweep_jobs)
from repro.harness.runner import (CHAOS_EXIT_CODE, ChaosMonkey, Job,
                                  JobResult, Runner, merge_values, resolve)

HERE = "tests.test_harness"


# ----------------------------------------------------------- job helpers
def _square(x):
    return x * x


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def _raise(message):
    raise RuntimeError(message)


def _crash_once(marker):
    """Die hard (no exception, no pipe report) on the first attempt."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(17)
    return "recovered"


def _always_crash():
    os._exit(23)


def _squares(count):
    return [Job(id=f"sq/{i}", fn=f"{HERE}:_square", params={"x": i})
            for i in range(count)]


# ------------------------------------------------------------ scheduling
class TestRunnerScheduling:
    def test_serial_matches_parallel(self):
        jobs = _squares(8)
        runner = Runner(max_workers=4)
        serial = runner.run(jobs, parallel=False)
        parallel = runner.run(jobs, parallel=True)
        assert merge_values(serial) == merge_values(parallel)
        assert [r.status for r in parallel] == ["ok"] * len(jobs)

    def test_results_come_back_in_submission_order(self):
        # Reverse-sorted sleeps: completion order is the opposite of
        # submission order, the merge must restore the latter.
        delays = [0.30, 0.15, 0.0]
        jobs = [Job(id=f"sleep/{i}", fn=f"{HERE}:_sleep_then_return",
                    params={"seconds": s, "value": i})
                for i, s in enumerate(delays)]
        results = Runner(max_workers=len(jobs)).run(jobs)
        assert [r.job_id for r in results] == [j.id for j in jobs]
        assert [r.value for r in results] == [0, 1, 2]

    def test_more_jobs_than_workers(self):
        jobs = _squares(9)
        results = Runner(max_workers=2).run(jobs)
        assert merge_values(results) == {f"sq/{i}": i * i for i in range(9)}

    def test_duplicate_ids_rejected(self):
        jobs = [Job(id="dup", fn=f"{HERE}:_square", params={"x": 1}),
                Job(id="dup", fn=f"{HERE}:_square", params={"x": 2})]
        with pytest.raises(ValueError, match="unique"):
            Runner(max_workers=2).run(jobs)

    def test_resolve_rejects_malformed_spec(self):
        with pytest.raises(ValueError, match="module:function"):
            resolve("no_colon_here")


# --------------------------------------------------------- failure modes
class TestFailureModes:
    def test_timeout_kills_the_worker(self):
        jobs = [Job(id="fast", fn=f"{HERE}:_square", params={"x": 3}),
                Job(id="stuck", fn=f"{HERE}:_sleep_then_return",
                    params={"seconds": 30.0, "value": None}, timeout=0.4)]
        started = time.monotonic()
        results = Runner(max_workers=2).run(jobs)
        assert time.monotonic() - started < 10.0
        by_id = {r.job_id: r for r in results}
        assert by_id["fast"].status == "ok" and by_id["fast"].value == 9
        assert by_id["stuck"].status == "timeout"
        assert "0.4" in by_id["stuck"].error
        assert not by_id["stuck"].ok

    def test_crash_is_retried_once(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        jobs = [Job(id="flaky", fn=f"{HERE}:_crash_once",
                    params={"marker": marker})]
        (result,) = Runner(max_workers=1).run(jobs)
        assert result.status == "retried-ok"
        assert result.ok
        assert result.value == "recovered"
        assert result.attempts == 2

    def test_second_crash_is_final(self):
        jobs = [Job(id="doomed", fn=f"{HERE}:_always_crash")]
        (result,) = Runner(max_workers=1).run(jobs)
        assert result.status == "crashed"
        assert result.attempts == 2
        assert result.error_kind == "worker-died"
        assert "exitcode" in result.error

    def test_exception_is_error_without_retry(self):
        jobs = [Job(id="boom", fn=f"{HERE}:_raise",
                    params={"message": "deliberate"})]
        (result,) = Runner(max_workers=1).run(jobs)
        assert result.status == "error"
        assert result.attempts == 1
        assert result.error_kind == "RuntimeError"
        # the remote traceback travels back whole, not just the message
        assert "deliberate" in result.error
        assert "Traceback" in result.error
        assert "_raise" in result.error

    def test_serial_reports_errors_too(self):
        jobs = [Job(id="boom", fn=f"{HERE}:_raise",
                    params={"message": "deliberate"})]
        (result,) = Runner().run(jobs, parallel=False)
        assert result.status == "error"
        assert result.error_kind == "RuntimeError"
        assert "deliberate" in result.error

    def test_timeout_error_kind_and_default_timeout(self):
        # No per-job timeout: the runner default applies.
        jobs = [Job(id="stuck", fn=f"{HERE}:_sleep_then_return",
                    params={"seconds": 30.0, "value": None})]
        (result,) = Runner(max_workers=1, default_timeout=0.4).run(jobs)
        assert result.status == "timeout"
        assert result.error_kind == "timeout"

    def test_retry_budget_caps_total_retries(self):
        # Two doomed jobs, budget of one retry: exactly one of them gets
        # a second attempt, the other fails on its first.
        jobs = [Job(id=f"doomed/{i}", fn=f"{HERE}:_always_crash")
                for i in range(2)]
        results = Runner(max_workers=1, retry_budget=1).run(jobs)
        assert [r.status for r in results] == ["crashed", "crashed"]
        assert sorted(r.attempts for r in results) == [1, 2]

    def test_status_taxonomy_is_closed(self, tmp_path):
        # One job per terminal status, all in a single run.
        marker = str(tmp_path / "flaky-marker")
        jobs = [
            Job(id="ok", fn=f"{HERE}:_square", params={"x": 2}),
            Job(id="error", fn=f"{HERE}:_raise",
                params={"message": "boom"}),
            Job(id="timeout", fn=f"{HERE}:_sleep_then_return",
                params={"seconds": 30.0, "value": None}, timeout=0.4),
            Job(id="crashed", fn=f"{HERE}:_always_crash"),
            Job(id="retried-ok", fn=f"{HERE}:_crash_once",
                params={"marker": marker}),
        ]
        results = Runner(max_workers=2).run(jobs)
        assert {r.job_id: r.status for r in results} == {
            job.id: job.id for job in jobs}
        assert {r.job_id for r in results if r.ok} == {"ok", "retried-ok"}


# ------------------------------------------------------------- chaos mode
class TestChaosMode:
    def test_chaos_kill_is_retried_and_merge_matches_serial(self):
        # The satellite-4 contract: a chaos-killed worker (os._exit
        # mid-job, after resolve, before the call) is retried with
        # backoff, and the merged results are identical to a serial run
        # of the same jobs.
        jobs = _squares(8)
        chaos = ChaosMonkey(rate=0.5, seed=11)
        doomed = [j.id for j in jobs if chaos.dooms(j.id, attempt=1)]
        assert doomed, "seed must doom at least one job for this test"
        runner = Runner(max_workers=4, chaos=chaos)
        results = runner.run(jobs, parallel=True)
        serial = Runner(max_workers=4).run(jobs, parallel=False)
        assert merge_values(results) == merge_values(serial)
        assert [r.job_id for r in results] == [r.job_id for r in serial]
        by_id = {r.job_id: r for r in results}
        for job_id in doomed:
            assert by_id[job_id].status == "retried-ok"
            assert by_id[job_id].attempts == 2
        for job in jobs:
            if job.id not in doomed:
                assert by_id[job.id].status == "ok"

    def test_chaos_selection_is_deterministic(self):
        chaos = ChaosMonkey(rate=0.5, seed=3)
        first = [chaos.dooms(f"job/{i}", 1) for i in range(32)]
        again = [chaos.dooms(f"job/{i}", 1) for i in range(32)]
        assert first == again
        assert any(first) and not all(first)
        # only the first attempt is killed: retries always run
        assert not any(chaos.dooms(f"job/{i}", 2) for i in range(32))

    def test_chaos_exit_code_is_visible_in_final_crash(self):
        # kill_attempts=2 dooms the retry too: the job ends "crashed"
        # and the recorded exit code is the chaos sentinel.
        chaos = ChaosMonkey(rate=1.0, seed=0, kill_attempts=2)
        jobs = [Job(id="victim", fn=f"{HERE}:_square", params={"x": 1})]
        (result,) = Runner(max_workers=1, chaos=chaos).run(jobs)
        assert result.status == "crashed"
        assert str(CHAOS_EXIT_CODE) in result.error

    def test_backoff_schedule(self):
        runner = Runner(backoff_base=0.05)
        assert runner._backoff(1) == 0.0
        assert runner._backoff(2) == pytest.approx(0.05)
        assert runner._backoff(3) == pytest.approx(0.10)
        assert runner._backoff(4) == pytest.approx(0.20)

    def test_backoff_jitter_is_seeded_and_pinned(self):
        # the anti-thundering-herd spread is sha256(seed:job:attempt),
        # not wall-clock randomness: same (seed, job, attempt) -> same
        # delay, forever.  These literals pin the formula.
        runner = Runner(backoff_base=0.05, backoff_jitter=0.5,
                        jitter_seed=7)
        assert runner._backoff(1, "fuzz/isa/3") == 0.0
        assert runner._backoff(2, "fuzz/isa/3") == pytest.approx(
            0.05663893725295388)
        assert runner._backoff(3, "fuzz/isa/3") == pytest.approx(
            0.11594985577869442)
        assert runner._backoff(4, "fuzz/isa/3") == pytest.approx(
            0.2383458666818351)
        # the draw decorrelates across jobs and seeds ...
        assert runner._backoff(2, "fuzz/isa/4") == pytest.approx(
            0.05753798873202048)
        other = Runner(backoff_base=0.05, backoff_jitter=0.5,
                       jitter_seed=8)
        assert other._backoff(2, "fuzz/isa/3") == pytest.approx(
            0.0691103987344543)
        # ... stays within [delay, delay * (1 + jitter)] ...
        for attempt, base in ((2, 0.05), (3, 0.10), (4, 0.20)):
            for job_id in ("a", "b", "c"):
                delay = runner._backoff(attempt, job_id)
                assert base <= delay <= base * 1.5
        # ... and jitter=0 (the default) keeps the exact old schedule
        assert Runner(backoff_base=0.05)._backoff(3, "any") == \
            pytest.approx(0.10)


# ------------------------------------------------------- experiment grids
class TestExperimentGrids:
    def test_grids_are_well_formed(self):
        jobs = default_jobs(quick=True, timeout=120.0)
        ids = [j.id for j in jobs]
        assert len(set(ids)) == len(ids)
        assert all(j.timeout == 120.0 for j in jobs)
        assert {j.sweep for j in jobs} == set(EXPERIMENT_SWEEPS)
        for job in jobs:
            assert callable(resolve(job.fn))

    def test_quick_grid_is_a_subset(self):
        quick = {j.id for j in default_jobs(quick=True)}
        full = {j.id for j in default_jobs(quick=False)}
        assert quick <= full
        assert len(quick) < len(full)

    def test_ecache_sweep_deterministic_across_modes(self):
        # A real experiment point (not a toy helper): the same sweep run
        # serially and in parallel must merge to identical physics.
        jobs = [Job(id=j.id, fn=j.fn,
                    params=dict(j.params, references=20_000),
                    sweep=j.sweep)
                for j in sweep_jobs("ecache-sweep", quick=True)]
        runner = Runner(max_workers=2)
        serial = merge_values(runner.run(jobs, parallel=False))
        parallel = merge_values(runner.run(jobs, parallel=True))
        assert serial == parallel
        assert all(0.0 <= row["miss_rate"] <= 1.0
                   for row in parallel.values())

    @pytest.mark.slow
    def test_full_quick_sweep_deterministic(self):
        # The whole --quick grid, both execution modes.  Tens of
        # seconds of simulation: opt in with --run-slow.
        jobs = default_jobs(quick=True)
        runner = Runner(max_workers=2)
        serial = runner.run(jobs, parallel=False)
        parallel = runner.run(jobs, parallel=True)
        assert [r.status for r in serial] == ["ok"] * len(jobs)
        assert [r.status for r in parallel] == ["ok"] * len(jobs)
        assert merge_values(serial) == merge_values(parallel)


def test_job_result_ok_property():
    assert JobResult("x", "ok").ok
    assert JobResult("x", "retried-ok").ok
    for status in ("error", "timeout", "crashed"):
        assert not JobResult("x", status).ok


# ----------------------------------------------- graceful shutdown, chaos
def _signal_parent_then_return(pid, value):
    """Interrupt the parent mid-run, then finish normally ourselves."""
    import signal

    os.kill(pid, signal.SIGINT)
    time.sleep(0.4)                  # let the parent field the signal
    return value


def _slow_value(value):
    time.sleep(0.6)
    return value


class TestGracefulShutdown:
    def test_sigint_drains_active_and_interrupts_queued(self):
        # Satellite contract: on SIGINT the in-flight job finishes and
        # is recorded normally; everything still queued is released as
        # "interrupted" instead of being abandoned mid-state.
        jobs = [Job(id="active", fn=f"{HERE}:_signal_parent_then_return",
                    params={"pid": os.getpid(), "value": 42})]
        jobs += [Job(id=f"queued/{i}", fn=f"{HERE}:_square",
                     params={"x": i}) for i in range(3)]
        runner = Runner(max_workers=1)
        results = runner.run(jobs, parallel=True)
        assert runner.interrupted
        by_id = {r.job_id: r for r in results}
        assert by_id["active"].status == "ok"
        assert by_id["active"].value == 42
        for i in range(3):
            queued = by_id[f"queued/{i}"]
            assert queued.status == "interrupted"
            assert queued.error_kind == "interrupted"
            assert not queued.ok
        # handlers were restored: a later run is not poisoned
        import signal

        assert signal.getsignal(signal.SIGINT) is not None
        follow_up = Runner(max_workers=1).run(
            [Job(id="later", fn=f"{HERE}:_square", params={"x": 3})])
        assert follow_up[0].status == "ok"

    def test_interrupted_is_not_ok(self):
        assert not JobResult("x", "interrupted").ok


class TestChaosKillAfter:
    def test_kill_after_sigkills_mid_run_and_retry_succeeds(self):
        # kill_after arms an asynchronous SIGKILL *inside* the running
        # worker -- a mid-computation crash, not a pre-call exit.  The
        # retry is never doomed and must deliver the value.
        chaos = ChaosMonkey(rate=1.0, seed=0, kill_after=0.1)
        jobs = [Job(id="victim", fn=f"{HERE}:_slow_value",
                    params={"value": 7})]
        (result,) = Runner(max_workers=1, chaos=chaos).run(jobs)
        assert result.status == "retried-ok"
        assert result.value == 7
        assert result.attempts == 2

    def test_kill_after_unset_keeps_legacy_exit_kill(self):
        chaos = ChaosMonkey(rate=1.0, seed=0, kill_attempts=2)
        jobs = [Job(id="victim", fn=f"{HERE}:_square", params={"x": 2})]
        (result,) = Runner(max_workers=1, chaos=chaos).run(jobs)
        assert result.status == "crashed"
        assert str(CHAOS_EXIT_CODE) in result.error


# --------------------------------------------------- durable atomic JSON
def _doomed_json_write(path):
    """Write a payload but SIGKILL ourselves between write and rename."""
    import signal

    from repro.harness import bench

    original = os.replace

    def die(*args, **kwargs):
        os.kill(os.getpid(), signal.SIGKILL)
        return original(*args, **kwargs)  # pragma: no cover

    os.replace = die
    bench.write_json_atomic(path, {"new": True})


class TestWriteJsonAtomic:
    def test_failure_before_rename_preserves_target(self, tmp_path,
                                                    monkeypatch):
        from repro.harness.bench import write_json_atomic

        target = tmp_path / "report.json"
        write_json_atomic(target, {"generation": 1})

        def boom(*args, **kwargs):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk on fire"):
            write_json_atomic(target, {"generation": 2})
        monkeypatch.undo()
        import json

        assert json.loads(target.read_text()) == {"generation": 1}
        assert not any(".tmp" in p.name for p in tmp_path.iterdir())

    def test_kill9_between_write_and_rename_preserves_target(self,
                                                             tmp_path):
        # the hard variant: no Python cleanup runs at all
        import json
        import multiprocessing
        import signal

        from repro.harness.bench import write_json_atomic

        target = tmp_path / "report.json"
        write_json_atomic(target, {"old": True})
        worker = multiprocessing.Process(target=_doomed_json_write,
                                         args=(target,))
        worker.start()
        worker.join()
        assert worker.exitcode == -signal.SIGKILL
        assert json.loads(target.read_text()) == {"old": True}
        # debris is a .tmp that can never shadow the real file, and a
        # clean write simply replaces the target
        write_json_atomic(target, {"new": True})
        assert json.loads(target.read_text()) == {"new": True}
