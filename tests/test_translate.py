"""The translated fast path must be invisible: cycle-exact, bit-identical.

``MachineConfig.jit`` compiles hot basic blocks into specialized Python
closures (:mod:`repro.core.translate`).  The contract these tests pin is
total equivalence with the interpretive pipeline -- every architectural
register, every memory word, every pipeline/cache counter, *including
the cycle count* -- across all three block shapes (straight periodic
loops, phase-rotated loops, linear one-pass blocks) and across every
way a block can stop being valid: self-modifying stores, squashing
branches at the block boundary, exceptions, and LRU eviction.

The full-state signature compared here is the same one the fuzz
campaign's jit-vs-interpreter oracle uses
(:func:`repro.fuzz.oracle.check_jit_equivalence`).
"""

import dataclasses

import pytest

from repro.asm import assemble
from repro.core import Machine, MachineConfig, PswBit, perfect_memory_config
from repro.fuzz.gen import generate_program
from repro.fuzz.oracle import (_machine_signature, _programs_for, check_all,
                               check_jit_equivalence, run_pipeline)
from repro.isa import encode
from tests.test_decode_memo import random_loop_program


def run(program, **config_overrides) -> Machine:
    machine = Machine(MachineConfig(**config_overrides))
    machine.load_program(program)
    machine.run()
    assert machine.halted
    return machine


def assert_bit_identical(program, **jit_overrides):
    """Run interpretive and jit machines; full signatures must match."""
    reference = run(program)
    jit = run(program, jit=True, **jit_overrides)
    assert _machine_signature(reference) == _machine_signature(jit)
    return reference, jit


# --------------------------------------------------------------- workloads
class TestWorkloadEquivalence:
    def test_sieve_bit_identical(self):
        from repro.workloads import cached_program

        reference, jit = assert_bit_identical(cached_program("sieve"))
        stats = jit.pipeline._translator.stats
        assert stats.compiled > 0 and stats.entries > 0
        # the headline claim: most cycles run translated
        assert stats.cycles / reference.stats.cycles > 0.9

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["bubble", "intmm", "quick", "perm",
                                      "towers"])
    def test_workload_bit_identical(self, name):
        from repro.workloads import cached_program

        assert_bit_identical(cached_program(name))

    @pytest.mark.parametrize("seed", [0, 1, 0xC0FFEE])
    def test_random_loops_bit_identical(self, seed):
        program = assemble(random_loop_program(seed, iterations=12))
        _, jit = assert_bit_identical(program, jit_threshold=2)
        assert jit.pipeline._translator.stats.entries > 0


# ----------------------------------------------------- self-modifying code
def _self_modifying_source() -> str:
    # Phase 1 translates the hot loop with "li t3, 11" in its body; the
    # inter-phase store patches that word to "li t3, 44", which must
    # invalidate the block so phase 2 runs (and retranslates) the new
    # code: t5 ends at 20*11 + 20*44.
    patched = encode(assemble("_start: li t3, 44").listing[0])
    return f"""
    _start:
        la t0, target
        la t1, newword
        ld t2, 0(t1)
        nop
        li s1, 1
        li s2, 2
        li t5, 0
    phase:
        li s0, 20
    loop:
    target:
        li t3, 11
        add t5, t5, t3
        sub s0, s0, s1
        bne s0, r0, loop
        nop
        nop
        st t2, 0(t0)
        sub s2, s2, s1
        bne s2, r0, phase
        nop
        nop
        halt
    newword: .word {patched}
    """


class TestSelfModifyingCode:
    def test_store_into_block_invalidates_and_stays_exact(self):
        program = assemble(_self_modifying_source())
        reference, jit = assert_bit_identical(program, jit_threshold=2)
        assert jit.regs[15] == 20 * 11 + 20 * 44        # t5
        translator = jit.pipeline._translator
        assert translator.stats.invalidations >= 1
        assert translator.stats.entries > 0             # it did run hot


# ----------------------------------------------- squashes at the boundary
SQUASHING_LOOP = """
_start:
    li s0, 40
    li s1, 1
    li t0, 0
    li t6, 0
loop:
    and t4, s0, s1
    beqsq t4, r0, skip
    nop
    nop
    add t6, t6, s1
skip:
    add t0, t0, s1
    sub s0, s0, s1
    bne s0, r0, loop
    nop
    nop
    halt
"""


class TestSquashAtBlockBoundary:
    def test_alternating_squashing_branch_bit_identical(self):
        # The inner squashing branch alternates taken/not-taken every
        # pass, so the block's side exit and its wrong-way squash both
        # fire repeatedly while the loop is translated.
        program = assemble(SQUASHING_LOOP)
        reference, jit = assert_bit_identical(program, jit_threshold=2)
        assert reference.stats.branch_squashes > 0
        assert jit.pipeline._translator.stats.entries > 0


# -------------------------------------------------- exceptions in hot code
PSW_SYS_TE = (1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN) | (1 << PswBit.TE)

OVERFLOW_IN_LOOP = f"""
.org 0
    br handler
    nop
    nop

.org 0x40
handler:
    la   s0, trapcount
    ld   s1, 0(s0)
    nop
    addi s1, s1, 1
    st   s1, 0(s0)
    movfrs t0, pswold
    li    t1, {1 << PswBit.TE}
    not   t1, t1
    and   t0, t0, t1
    movtos pswold, t0
    jpc
    jpc
    jpcrs

.org 0x100
_start:
    li   t9, {PSW_SYS_TE}
    movtos psw, t9
    li   t2, 0x7FFFFF00
    li   t7, 0x10
    li   s3, 30
    li   s4, 1
loop:
    add  t2, t2, t7      ; overflows on pass 16 of 30 -> trap
    sub  s3, s3, s4
    bne  s3, r0, loop
    nop
    nop
    halt

trapcount: .word 0
"""


class TestExceptionAtBlockBoundary:
    def test_overflow_trap_mid_hot_loop_bit_identical(self):
        # The loop is hot (and translated) well before pass 16, where
        # the add overflows with TE set: the trap, the PSWold rewrite in
        # the handler, and the three-jump restart must all play out
        # exactly as interpreted.
        program = assemble(OVERFLOW_IN_LOOP)

        def run_cfg(jit):
            machine = Machine(perfect_memory_config(
                jit=jit, jit_threshold=2))
            machine.load_program(program)
            machine.run()
            assert machine.halted
            return machine

        reference, jit = run_cfg(False), run_cfg(True)
        assert _machine_signature(reference) == _machine_signature(jit)
        trapcount = program.symbols["trapcount"]
        assert reference.memory.system.read(trapcount) == 1
        assert reference.stats.exceptions == 1


# -------------------------------------------------------- admission bounds
THREE_LOOPS = """
_start:
    li s1, 1
    li t0, 0
    li s0, 20
l1: add t0, t0, s1
    sub s0, s0, s1
    bne s0, r0, l1
    nop
    nop
    li s0, 20
l2: add t0, t0, s1
    add t1, t0, t0
    sub s0, s0, s1
    bne s0, r0, l2
    nop
    nop
    li s0, 20
l3: add t0, t0, s1
    sub t1, t0, s1
    sub s0, s0, s1
    bne s0, r0, l3
    nop
    nop
    halt
"""


class TestAdmissionBounds:
    def test_block_cache_is_bounded_and_evicts_lru(self):
        program = assemble(THREE_LOOPS)
        reference, jit = assert_bit_identical(
            program, jit_threshold=2, jit_max_blocks=2)
        translator = jit.pipeline._translator
        stats = translator.stats
        assert len(translator.blocks) <= 2
        assert stats.evictions >= 1
        # conservation: every compiled block is live, evicted, or killed
        assert (len(translator.blocks)
                == stats.compiled - stats.evictions - stats.invalidations)

    def test_unbounded_run_keeps_every_block(self):
        program = assemble(THREE_LOOPS)
        _, jit = assert_bit_identical(program, jit_threshold=2)
        assert jit.pipeline._translator.stats.evictions == 0


# ------------------------------------------------------- telemetry surface
class TestTranslateTelemetry:
    def test_jit_counters_in_snapshot(self):
        from repro.workloads import cached_program

        machine = run(cached_program("sieve"), jit=True)
        snap = machine.metrics().snapshot()
        assert snap["core.translate.blocks.compiled"] > 0
        assert snap["core.translate.entries.taken"] > 0
        assert 0 < snap["core.translate.cycles"] <= snap["pipeline.cycles"]

    def test_interpretive_run_reports_zeros(self):
        program = assemble(random_loop_program(0))
        snap = run(program).metrics().snapshot()
        assert snap["core.translate.blocks.compiled"] == 0
        assert snap["core.translate.entries.taken"] == 0

    def test_jit_trace_export_validates(self, tmp_path):
        import json

        from repro.telemetry import validate_trace_events, write_jit_trace

        program = assemble(random_loop_program(1, iterations=12))
        machine = Machine(MachineConfig(jit=True, jit_threshold=2))
        machine.pipeline._translator.record_spans = True
        machine.load_program(program)
        machine.run()
        spans = machine.pipeline._translator.spans
        assert spans, "no translated-block activations recorded"
        path = tmp_path / "jit_trace.json"
        payload = write_jit_trace(path, spans)
        assert validate_trace_events(payload) == []
        assert json.loads(path.read_text()) == payload
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(spans)


# ------------------------------------------------------------ fuzz replays
class TestFuzzAgreement:
    def test_corpus_replays_bit_identical_under_jit(self):
        from repro.fuzz.corpus import iter_corpus

        entries = [e for e in iter_corpus() if not e.mutation]
        assert entries, "fuzz_corpus/ has no unmutated entries"
        for entry in entries:
            _, reorganized = _programs_for(entry.generated)
            reference = run_pipeline(reorganized, entry.generated)
            report = check_jit_equivalence(reorganized, entry.generated,
                                           reference)
            assert report is None, f"{entry.name}: {report.summary()}"

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_programs_bit_identical_under_jit(self, seed):
        generated = generate_program(seed)
        _, reorganized = _programs_for(generated)
        reference = run_pipeline(reorganized, generated)
        report = check_jit_equivalence(reorganized, generated, reference)
        assert report is None, report.summary()

    @pytest.mark.slow
    def test_200_seed_differential_campaign(self):
        # All three oracles (golden-vs-pipeline, live-vs-replay,
        # jit-vs-interpreter) over 200 fresh seeds.
        failures = []
        for seed in range(200):
            reports = check_all(generate_program(seed))
            failures.extend(f"seed {seed}: {r.summary()}" for r in reports)
        assert not failures, failures
