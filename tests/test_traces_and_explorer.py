"""Tests for trace capture, synthetic trace generation, and the Icache
organization explorer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core import IcacheConfig, Machine, perfect_memory_config
from repro.icache.explorer import (
    evaluate,
    fetchback_study,
    service_time_study,
    sweep_organizations,
)
from repro.traces.capture import TraceCollector
from repro.traces.synthetic import (
    SyntheticProgram,
    combined_fetch_trace,
    paper_regime_program,
)


class TestTraceCollector:
    def _collect(self, source):
        machine = Machine(perfect_memory_config())
        collector = TraceCollector(retires=True)
        machine.set_trace(collector)
        machine.load_program(assemble(source))
        machine.run(100_000)
        assert machine.halted
        return machine, collector

    def test_fetch_trace_matches_fetch_count(self):
        machine, collector = self._collect("nop\nnop\nnop\nhalt")
        assert len(collector.fetch_trace) == machine.stats.fetched

    def test_branch_events_record_outcomes(self):
        _, collector = self._collect("""
        _start:
            li t0, 2
        loop:
            addi t0, t0, -1
            bgt t0, r0, loop
            nop
            nop
            halt
        """)
        outcomes = [event.taken for event in collector.branch_events]
        assert outcomes == [True, False]
        counts = collector.branch_outcome_counts()
        assert list(counts.values()) == [(1, 1)]

    def test_data_trace_addresses(self):
        _, collector = self._collect("""
        _start:
            la t0, v
            ld t1, 0(t0)
            nop
            st t1, 1(t0)
            halt
        v: .space 2
        """)
        assert len(collector.data_addresses()) == 2

    def test_retire_trace_includes_squashed_flag(self):
        _, collector = self._collect("""
        _start:
            li t0, 1
            bnesq t0, t0, away
            nop
            nop
            halt
        away: halt
        """)
        squashed = [pc for pc, _, squashed in collector.retire_trace
                    if squashed]
        # the two wrong-way slots (pcs 2,3) plus the two fetches that
        # trail the halt before it resolves
        assert set(squashed) >= {2, 3}
        assert len(squashed) == 4


class TestSyntheticTraces:
    def test_deterministic(self):
        program = paper_regime_program()
        a = list(program.instruction_trace(5000))
        b = list(program.instruction_trace(5000))
        assert a == b

    def test_length_exact(self):
        program = SyntheticProgram()
        assert len(list(program.instruction_trace(12345))) == 12345
        assert len(list(program.data_trace(777))) == 777

    def test_addresses_within_footprint(self):
        program = SyntheticProgram(code_words=10_000, data_words=50_000)
        assert all(0 <= a < 11_000
                   for a in program.instruction_trace(20_000))
        assert all(0 <= a <= 50_000
                   for a, _ in program.data_trace(20_000))

    def test_different_seeds_differ(self):
        a = list(SyntheticProgram(seed=1).instruction_trace(2000))
        b = list(SyntheticProgram(seed=2).instruction_trace(2000))
        assert a != b

    def test_paper_regime_calibration(self):
        """The calibrated operating point (the anchor of E4/E5/E7)."""
        trace = list(paper_regime_program().instruction_trace(150_000))
        double = evaluate(IcacheConfig(fetchback=2), trace)
        single = evaluate(IcacheConfig(fetchback=1), trace)
        assert 0.18 < single.miss_ratio < 0.32
        assert 0.08 < double.miss_ratio < 0.17
        assert double.miss_ratio < 0.62 * single.miss_ratio

    def test_combined_trace_relocates(self):
        combined = combined_fetch_trace([[0, 1, 2], [0, 1]], quantum=2)
        assert len(combined) == 5
        # second trace must not overlap the first's address range
        assert max(combined[:3] + combined[4:]) > 2 or combined[2] > 2

    def test_combined_trace_interleaves(self):
        a = list(range(10))
        b = list(range(10))
        combined = combined_fetch_trace([a, b], quantum=3)
        assert len(combined) == 20
        # switches every 3: first 3 from trace a, next 3 relocated
        assert combined[:3] == [0, 1, 2]
        assert combined[3] >= 1024


class TestExplorer:
    @pytest.fixture(scope="class")
    def trace(self):
        return list(paper_regime_program().instruction_trace(80_000))

    def test_sweep_conserves_area(self, trace):
        for result in sweep_organizations(trace, total_words=512):
            config = result.config
            assert config.sets * config.ways * config.block_words == 512

    def test_sweep_covers_paper_organization(self, trace):
        described = {result.describe().split(" fb")[0]
                     for result in sweep_organizations(trace)}
        assert "4set x 8way x 16w" in described

    def test_fetchback_study_monotone_miss_ratio(self, trace):
        results = fetchback_study(trace)
        ratios = [r.miss_ratio for r in results]
        assert ratios == sorted(ratios, reverse=True)

    def test_service_time_study_labels(self, trace):
        results = service_time_study(trace)
        assert "2-cycle miss" in results[0].label
        assert "3-cycle miss" in results[1].label
        assert results[1].fetch_cost > results[0].fetch_cost

    @settings(max_examples=10, deadline=None)
    @given(total=st.sampled_from([128, 256, 512, 1024]))
    def test_fetch_cost_at_least_one(self, trace, total):
        for result in sweep_organizations(trace[:20_000], total_words=total):
            assert result.fetch_cost >= 1.0
            assert 0.0 <= result.miss_ratio <= 1.0
