"""Protection (system/user privilege) and exception stress tests.

The paper: "MIPS-X also provides two operating modes, system and user,
that execute in separate address spaces to provide the protection needed
to implement an operating system.  The current mode is stored in the PSW
and it can only be changed while executing in system mode."
"""

import pytest

from repro.asm import assemble
from repro.core import Machine, PswBit, perfect_memory_config
from repro.workloads import get

PSW_USER_IE = (1 << PswBit.SHIFT_EN)  # user mode (MODE bit clear)


def boot_user_program(user_source: str, handler: str = "    halt"):
    """System space holds the vector + a stub that drops to user mode;
    user space holds the program (mirrored at the same addresses)."""
    system_source = f"""
    .org 0
        br handler
        nop
        nop
    .org 0x40
    handler:
{handler}
    .org 0x100
    _start:
        li   t9, {PSW_USER_IE}
        movtos psw, t9          ; drop to user mode
        nop
        nop
        nop
        nop
        nop
        nop
    """
    machine = Machine(perfect_memory_config())
    machine.load_program(assemble(system_source))
    # the mode flips when movtos reaches ALU; the exact fetch that first
    # reads user space lands a couple of words later, so pad with nops
    # (empty user memory decodes as nops too) and start user code at a
    # comfortable distance
    user_program = assemble(".org 0x110\n" + user_source)
    machine.memory.user.load_image(user_program.image)
    return machine


class TestPrivilege:
    def test_user_mode_cannot_write_psw(self):
        machine = boot_user_program(
            f"""
            _ustart:
                li t0, 0xFF
                movtos psw, t0     ; privileged: must trap
                li t1, 7           ; must never execute
                halt
            """,
            handler="""
        movfrs s0, psw
        halt""")
        machine.run(100_000)
        assert machine.halted
        assert machine.stats.exceptions == 1
        assert machine.regs[11] == 0   # t1 never written
        # handler observed system mode + trap cause
        assert machine.regs[26] & (1 << PswBit.MODE)
        assert machine.regs[26] & (1 << PswBit.CAUSE_TRAP)

    def test_user_mode_cannot_jpc(self):
        machine = boot_user_program(
            """
            _ustart:
                jpc
                nop
                nop
                halt
            """,
            handler="""
        li s1, 77
        halt""")
        machine.run(100_000)
        assert machine.stats.exceptions == 1
        assert machine.regs[27] == 77

    def test_system_mode_writes_psw_freely(self):
        machine = Machine(perfect_memory_config())
        machine.load_program(assemble("""
        _start:
            movfrs t0, psw
            movtos psw, t0
            halt
        """))
        machine.run(10_000)
        assert machine.stats.exceptions == 0

    def test_user_and_system_memory_are_disjoint(self):
        machine = boot_user_program(
            """
            _ustart:
                li  t0, 42
                st  t0, 0x500(r0)   ; user-space address 0x500
                halt
            """)
        machine.run(100_000)
        assert machine.memory.user.read(0x500) == 42
        assert machine.memory.system.read(0x500) == 0


class TestInterruptStress:
    """Pepper a real workload with interrupts; the answer must survive.

    This exercises the exception machinery at arbitrary pipeline states:
    chain freeze/restore, squash interactions with in-flight branches and
    loads, and the three-jump restart -- hundreds of times in one run.
    """

    HANDLER_WRAP = """
    .org 0
        br handler
        nop
        nop
    .org 0x40
    handler:
        ; a real handler saves every register it touches
        st   s3, save_s3
        st   s4, save_s4
        la   s3, irq_count
        ld   s4, 0(s3)
        nop
        addi s4, s4, 1
        st   s4, 0(s3)
        ld   s3, save_s3
        ld   s4, save_s4
        jpc
        jpc
        jpcrs
    irq_count: .word 0
    save_s3:   .word 0
    save_s4:   .word 0
    """

    @pytest.mark.parametrize("name,period", [
        ("fib", 97), ("sieve", 131), ("listops", 61), ("towers", 103)])
    def test_workload_survives_interrupt_storm(self, name, period):
        workload = get(name)
        # rebase the workload above the handler (label-based addressing
        # makes the image position-independent at assembly time)
        program = workload.reorganize().unit.assemble(base=0x400)
        handler = assemble(self.HANDLER_WRAP)
        config = perfect_memory_config()
        machine = Machine(config)
        machine.memory.system.load_image(program.image)
        machine.memory.system.load_image(handler.image)
        machine.pipeline.reset(program.entry)
        # enable interrupts in the initial PSW
        machine.psw.interrupts_enabled = True

        cycle = 0
        while not machine.halted and cycle < 10_000_000:
            machine.step()
            cycle += 1
            if cycle % period == 0:
                machine.post_interrupt(cause_bits=1)

        assert machine.halted, f"{name} did not finish under interrupts"
        irq_count = machine.memory.system.read(
            handler.symbols["irq_count"])
        assert machine.stats.interrupts == irq_count
        assert machine.stats.interrupts > 50
        # THE point: the program's answer is unchanged
        expected = workload.expected
        if expected is not None:
            assert tuple(machine.console.values) == expected
        else:
            clean = Machine(config)
            clean.memory.system.load_image(program.image)
            clean.pipeline.reset(program.entry)
            clean.run(10_000_000)
            assert machine.console.values == clean.console.values

    def test_interrupt_during_branch_slots_is_safe(self):
        """Directed: interrupts posted every cycle around squashing
        branches still restart correctly."""
        source = self.HANDLER_WRAP + """
        .org 0x100
        _start:
            li  t9, %d
            movtos psw, t9
            li  t0, 0
            li  t1, 30
        loop:
            add t0, t0, t1
            addi t1, t1, -1
            bgtsq t1, r0, loop
            nop
            nop
            li  a0, 0x3FFFF0
            st  t0, 0(a0)
            halt
        """ % ((1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN)
               | (1 << PswBit.IE))
        machine = Machine(perfect_memory_config())
        machine.load_program(assemble(source))
        cycle = 0
        while not machine.halted and cycle < 1_000_000:
            machine.step()
            cycle += 1
            if cycle % 7 == 0:
                machine.post_interrupt()
        assert machine.halted
        assert machine.console.values == [sum(range(1, 31))]
        assert machine.stats.interrupts > 20
