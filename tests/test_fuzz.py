"""The differential fuzzer: generator, oracle, shrinker, corpus, campaign.

Covers the contracts the fuzzing subsystem promises:

* generation is deterministic (same seed + config -> byte-identical
  program) and produces terminating, memory-bounded programs;
* the oracle reports agreement on honest models and catches planted
  golden-model bugs (every registered mutation);
* the shrinker minimizes a caught divergence to a tiny repro that still
  fails the same way;
* the committed ``fuzz_corpus/`` replays clean (regression pin for every
  bug the fuzzer ever found);
* campaigns are deterministic serial-vs-parallel and resume from their
  journal to a byte-identical report;
* the documented exit-code taxonomy (0 ok / 1 harness / 2 divergence)
  holds.
"""

import dataclasses
import json

import pytest

from repro.fuzz.campaign import (
    exit_code,
    fuzz_point,
    journal_path_for,
    run_campaign,
)
from repro.fuzz.corpus import iter_corpus, load_entry, replay_entry, write_entry
from repro.fuzz.gen import GenConfig, generate_program
from repro.fuzz.mutation import MUTATIONS, get_mutator
from repro.fuzz.oracle import (
    PAIR_GOLDEN_PIPELINE,
    check_all,
    check_program,
)
from repro.fuzz.shrink import count_instructions, shrink

QUICK_ISA = GenConfig(mode="isa", quick=True)
QUICK_LANG = GenConfig(mode="lang", quick=True)


class TestGenerator:
    @pytest.mark.parametrize("config", [QUICK_ISA, QUICK_LANG],
                             ids=["isa", "lang"])
    def test_same_seed_is_byte_identical(self, config):
        for seed in range(5):
            first = generate_program(seed, config)
            second = generate_program(seed, config)
            assert first.source.encode() == second.source.encode()
            assert first == second

    def test_different_seeds_differ(self):
        sources = {generate_program(seed, QUICK_ISA).source
                   for seed in range(10)}
        assert len(sources) == 10

    def test_isa_programs_terminate_and_stay_in_bounds(self):
        # the shrinker's monitored run enforces exactly the generator's
        # promises: assembles, halts, every data access inside the data
        # region or MMIO
        from repro.fuzz.shrink import _monitored_golden_ok

        for seed in range(10):
            generated = generate_program(seed, QUICK_ISA)
            assert _monitored_golden_ok(generated), (
                f"seed {seed} broke a generator invariant")

    def test_lang_programs_compile(self):
        from repro.lang import compile_spl

        for seed in range(5):
            generated = generate_program(seed, QUICK_LANG)
            compilation = compile_spl(generated.source, scheme=None)
            assert compilation.naive_program().image


class TestOracle:
    @pytest.mark.parametrize("config", [QUICK_ISA, QUICK_LANG],
                             ids=["isa", "lang"])
    def test_honest_models_agree(self, config):
        for seed in range(6):
            generated = generate_program(seed, config)
            reports = check_all(generated)
            assert reports == [], (
                f"seed {seed}: {[r.summary() for r in reports]}")

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_every_planted_mutation_is_caught(self, name):
        mutator = get_mutator(name)
        for seed in range(10):
            generated = generate_program(seed, QUICK_ISA)
            report = check_program(generated, golden_mutator=mutator)
            if report is not None:
                assert report.pair == PAIR_GOLDEN_PIPELINE
                return
        pytest.fail(f"mutation {name!r} escaped 10 seeds")


class TestShrinker:
    def test_planted_bug_shrinks_to_tiny_repro(self):
        mutator = get_mutator("sra-logical")
        generated = generate_program(0, QUICK_ISA)
        report = check_program(generated, golden_mutator=mutator)
        assert report is not None
        shrunk = shrink(generated, report, golden_mutator=mutator)
        size = count_instructions(shrunk.source)
        assert size <= 8, f"shrunk repro still has {size} instructions"
        again = check_program(shrunk, golden_mutator=mutator)
        assert again is not None
        assert (again.pair, again.kind) == (report.pair, report.kind)

    def test_shrunk_repro_is_clean_without_the_mutation(self):
        mutator = get_mutator("addi-trunc8")
        generated = generate_program(0, QUICK_ISA)
        report = check_program(generated, golden_mutator=mutator)
        assert report is not None
        shrunk = shrink(generated, report, golden_mutator=mutator)
        assert check_program(shrunk) is None


class TestCorpus:
    def test_write_load_roundtrip(self, tmp_path):
        mutator = get_mutator("sra-logical")
        generated = generate_program(0, QUICK_ISA)
        report = check_program(generated, golden_mutator=mutator)
        entry_dir = write_entry(generated, report, corpus_dir=tmp_path,
                                mutation="sra-logical", note="self test")
        entry = load_entry(entry_dir)
        assert entry.generated == generated
        assert (entry.pair, entry.kind) == (report.pair, report.kind)
        assert entry.mutation == "sra-logical"
        assert replay_entry(entry) == []

    def test_committed_corpus_replays_clean(self):
        """Tier-1 regression pin: every repro the fuzzer ever filed."""
        entries = list(iter_corpus())
        assert entries, "fuzz_corpus/ is missing or empty"
        failures = []
        for entry in entries:
            failures.extend(replay_entry(entry))
        assert failures == [], "\n".join(failures)


def _strip_volatile(payload):
    return {key: value for key, value in payload.items()
            if key not in ("report_path", "journal_path",
                           "budget_exhausted")}


class TestCampaign:
    SEEDS = 3

    def test_clean_campaign_serial_equals_parallel(self, tmp_path):
        kwargs = dict(seeds=self.SEEDS, modes=("isa",), quick=True,
                      write_corpus=False)
        serial = run_campaign(parallel=False,
                              output=tmp_path / "serial.json", **kwargs)
        parallel = run_campaign(workers=2, parallel=True,
                                output=tmp_path / "parallel.json", **kwargs)
        assert serial["complete"] and parallel["complete"]
        assert exit_code(serial) == 0
        assert _strip_volatile(serial) == _strip_volatile(parallel)
        assert ((tmp_path / "serial.json").read_bytes()
                == (tmp_path / "parallel.json").read_bytes())

    def test_interrupted_campaign_resumes_to_identical_report(self,
                                                              tmp_path):
        # workers=1 -> batches of 4 jobs, so 5 seeds span two batches and
        # a zero-second budget stops the campaign between them, mid-run
        seeds = 5
        kwargs = dict(seeds=seeds, modes=("isa",), quick=True,
                      parallel=False, workers=1, write_corpus=False)
        whole = run_campaign(output=tmp_path / "whole.json", **kwargs)
        assert whole["complete"]

        partial = run_campaign(output=tmp_path / "resumed.json",
                               max_seconds=0.0, **kwargs)
        assert partial["budget_exhausted"]
        assert not partial["complete"]
        journal = journal_path_for(tmp_path / "resumed.json")
        journaled = sum(1 for _ in journal.open()) - 1  # minus header
        assert 0 < journaled < seeds

        resumed = run_campaign(output=tmp_path / "resumed.json", **kwargs)
        assert resumed["complete"]
        assert not resumed["budget_exhausted"]
        assert ((tmp_path / "whole.json").read_bytes()
                == (tmp_path / "resumed.json").read_bytes())

    def test_journal_of_other_config_is_discarded(self, tmp_path):
        kwargs = dict(modes=("isa",), quick=True, parallel=False,
                      write_corpus=False, output=tmp_path / "out.json")
        run_campaign(seeds=1, **kwargs)
        widened = run_campaign(seeds=2, **kwargs)
        assert widened["complete"]
        assert widened["totals"]["jobs"] == 2
        assert widened["totals"]["completed"] == 2

    def test_mutation_campaign_reports_but_does_not_fail(self, tmp_path):
        payload = run_campaign(seeds=1, modes=("isa",), quick=True,
                               parallel=False, mutation="sra-logical",
                               write_corpus=False,
                               output=tmp_path / "mut.json")
        assert payload["complete"]
        assert payload["totals"]["diverged"] == 1
        divergence = payload["divergences"][0]
        assert divergence["shrunk_instructions"] <= 8
        assert exit_code(payload) == 0

    def test_divergence_files_a_corpus_entry(self, tmp_path):
        # corpus filing is driven by the report alone; exercise it via a
        # mutation campaign with the mutation gate lifted artificially
        payload = run_campaign(seeds=1, modes=("isa",), quick=True,
                               parallel=False, mutation="sra-logical",
                               write_corpus=False,
                               output=tmp_path / "mut.json")
        divergence = payload["divergences"][0]
        generated = generate_program(0, QUICK_ISA)
        shrunk = dataclasses.replace(generated,
                                     source=divergence["shrunk_source"])
        from repro.fuzz.oracle import DivergenceReport

        first = divergence["reports"][0]
        entry_dir = write_entry(
            shrunk,
            DivergenceReport(pair=first["pair"], kind=first["kind"],
                             mismatches=first["mismatches"]),
            corpus_dir=tmp_path / "corpus", mutation="sra-logical")
        assert (entry_dir / "repro.s").is_file()
        meta = json.loads((entry_dir / "meta.json").read_text())
        assert meta["pair"] == PAIR_GOLDEN_PIPELINE
        assert meta["mutation"] == "sra-logical"

    def test_fuzz_point_ok_row_is_minimal(self):
        row = fuzz_point(seed=1, mode="isa", quick=True)
        assert row == {"seed": 1, "mode": "isa", "status": "ok"}


class TestExitTaxonomy:
    """The documented mapping: 0 ok / 1 harness failure / 2 divergence."""

    @staticmethod
    def _payload(diverged=0, harness=0, mutation=None, complete=True):
        return {"totals": {"jobs": 4, "completed": 4, "ok": 4 - diverged,
                           "diverged": diverged,
                           "harness_failures": harness},
                "complete": complete,
                "config": {"mutation": mutation}}

    def test_clean_campaign_exits_zero(self):
        assert exit_code(self._payload()) == 0

    def test_harness_failure_exits_one(self):
        assert exit_code(self._payload(harness=1)) == 1

    def test_unexplained_divergence_exits_two(self):
        assert exit_code(self._payload(diverged=1)) == 2

    def test_divergence_outranks_harness_failure(self):
        assert exit_code(self._payload(diverged=1, harness=1)) == 2

    def test_explained_mutation_divergence_exits_zero(self):
        assert exit_code(self._payload(diverged=1,
                                       mutation="sra-logical")) == 0

    def test_missed_planted_mutation_exits_two(self):
        # a mutation campaign that catches nothing failed its self-test
        assert exit_code(self._payload(mutation="sra-logical")) == 2

    def test_incomplete_mutation_campaign_is_not_a_miss(self):
        assert exit_code(self._payload(mutation="sra-logical",
                                       complete=False)) == 0

    def test_taxonomy_documented_in_help(self):
        from repro.tools.cli import build_parser

        parser = build_parser()
        subparsers = parser._subparsers._group_actions[0]
        for command in ("faults", "fuzz"):
            help_text = subparsers.choices[command].format_help()
            assert "0" in help_text and "1" in help_text and "2" in help_text
            assert "harness" in help_text
            expected = ("divergence" if command == "fuzz"
                        else "invariant violation")
            assert expected in help_text
