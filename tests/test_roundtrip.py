"""Round-trip properties across the toolchain layers:

* instruction -> text -> assembler -> instruction (every format);
* instruction -> word -> disassembler -> text -> assembler -> word;
* every opcode and funct at the boundary values of its immediate field;
* workload programs and fuzzer-generated programs disassemble to
  re-assemblable listings.
"""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble, disassemble_word
from repro.isa import Instruction, SpecialReg, decode
from repro.isa import instruction as I
from repro.isa.opcodes import BRANCH_OPCODES, Funct, Opcode

regs = st.integers(0, 31)
fregs = st.integers(0, 15)


def reparse(instr: Instruction) -> Instruction:
    """Assemble the canonical text of one instruction and decode it."""
    text = str(instr)
    program = assemble(text)
    return program.listing[0]


class TestCanonicalTextRoundTrip:
    @given(rd=regs, rb=regs, off=st.integers(-(1 << 16), (1 << 16) - 1))
    @settings(max_examples=60, deadline=None)
    def test_loads(self, rd, rb, off):
        assert reparse(I.ld(rd, rb, off)) == I.ld(rd, rb, off)

    @given(rs=regs, rb=regs, off=st.integers(-(1 << 16), (1 << 16) - 1))
    @settings(max_examples=60, deadline=None)
    def test_stores(self, rs, rb, off):
        assert reparse(I.st(rs, rb, off)) == I.st(rs, rb, off)

    @given(rd=regs, r1=regs, r2=regs)
    @settings(max_examples=60, deadline=None)
    def test_three_register_computes(self, rd, r1, r2):
        for ctor in (I.add, I.sub, I.and_, I.or_, I.xor, I.mstep, I.dstep):
            assert reparse(ctor(rd, r1, r2)) == ctor(rd, r1, r2)

    @given(rd=regs, rs=regs, amount=st.integers(0, 31))
    @settings(max_examples=60, deadline=None)
    def test_shifts(self, rd, rs, amount):
        for ctor in (I.sll, I.srl, I.sra, I.rotl):
            assert reparse(ctor(rd, rs, amount)) == ctor(rd, rs, amount)

    @given(r1=regs, r2=regs, disp=st.integers(-(1 << 15), (1 << 15) - 1),
           squash=st.booleans(),
           opcode=st.sampled_from(sorted(BRANCH_OPCODES)))
    @settings(max_examples=80, deadline=None)
    def test_branches(self, r1, r2, disp, squash, opcode):
        instr = I.branch(opcode, r1, r2, disp, squash)
        assert reparse(instr) == instr

    @given(fd=fregs, rb=regs, off=st.integers(-100, 100))
    @settings(max_examples=30, deadline=None)
    def test_fpu_memory(self, fd, rb, off):
        assert reparse(I.ldf(fd, rb, off)) == I.ldf(fd, rb, off)
        assert reparse(I.stf(fd, rb, off)) == I.stf(fd, rb, off)

    @given(rd=regs, special=st.sampled_from(list(SpecialReg)))
    @settings(max_examples=30, deadline=None)
    def test_special_moves(self, rd, special):
        assert reparse(I.movfrs(rd, special)) == I.movfrs(rd, special)
        assert reparse(I.movtos(special, rd)) == I.movtos(special, rd)

    def test_zero_operand_forms(self):
        for ctor in (I.nop, I.halt, I.trap, I.jpc, I.jpcrs):
            assert reparse(ctor()) == ctor()

    @given(rd=regs, rb=regs, payload=st.integers(0, (1 << 16) - 1))
    @settings(max_examples=30, deadline=None)
    def test_coprocessor_forms(self, rd, rb, payload):
        assert reparse(I.cop(rb, payload)) == I.cop(rb, payload)
        assert reparse(I.movtoc(rd, rb, payload)) == I.movtoc(rd, rb, payload)
        assert reparse(I.movfrc(rd, rb, payload)) == I.movfrc(rd, rb, payload)


@given(word=st.integers(0, 0xFFFFFFFF))
@settings(max_examples=150, deadline=None)
def test_word_disassemble_reassemble_is_canonicalizing(word):
    """Disassembly -> assembly reaches a fixed point in one step.

    A random word may carry junk in don't-care fields (e.g. a shift
    amount on an ``add``), so bitwise round-tripping is impossible; but
    the *canonical* encoding produced by one reassembly must round-trip
    exactly from then on.
    """
    try:
        decode(word)
    except Exception:
        return
    text = disassemble_word(word)
    canonical = assemble(text).image[0]
    text2 = disassemble_word(canonical)
    assert text2 == text
    assert assemble(text2).image[0] == canonical


class TestExhaustiveEncodingRoundTrip:
    """Every opcode and funct, pinned at its immediate field's boundaries.

    The hypothesis properties above sample the space; this test *covers*
    it: the case list is asserted to exercise every member of
    :class:`Opcode` and :class:`Funct`, so adding an instruction without
    extending the round-trip contract fails loudly.
    """

    MEM_OFFSETS = (-(1 << 16), -1, 0, 1, (1 << 16) - 1)
    BRANCH_DISPS = (-(1 << 15), -1, 1, (1 << 15) - 1)
    PAYLOADS = (0, 1, (1 << 16) - 1)
    SHAMTS = (0, 1, 31)

    def _cases(self):
        cases = []
        for off in self.MEM_OFFSETS:
            cases += [I.ld(1, 2, off), I.st(1, 2, off), I.ldf(3, 2, off),
                      I.stf(3, 2, off), I.addi(1, 2, off),
                      I.jspci(2, 4, off)]
        for payload in self.PAYLOADS:
            cases += [I.cop(2, payload), I.movtoc(1, 2, payload),
                      I.movfrc(1, 2, payload)]
        for disp in self.BRANCH_DISPS:
            for opcode in sorted(BRANCH_OPCODES):
                for squash in (False, True):
                    cases.append(I.branch(opcode, 1, 2, disp, squash))
        for amount in self.SHAMTS:
            cases += [I.sll(1, 2, amount), I.srl(1, 2, amount),
                      I.sra(1, 2, amount), I.rotl(1, 2, amount)]
        cases += [I.add(1, 2, 3), I.sub(1, 2, 3), I.and_(1, 2, 3),
                  I.or_(1, 2, 3), I.xor(1, 2, 3), I.not_(1, 2),
                  I.mstep(1, 2, 3), I.dstep(1, 2, 3)]
        for special in SpecialReg:
            cases += [I.movfrs(1, special), I.movtos(special, 1)]
        cases += [I.trap(), I.jpc(), I.jpcrs(), I.halt(), I.nop()]
        return cases

    def test_every_opcode_and_funct_round_trips_at_boundaries(self):
        covered_opcodes, covered_functs = set(), set()
        for instr in self._cases():
            word = assemble(str(instr)).image[0]
            text = disassemble_word(word)
            assert assemble(text).image[0] == word, str(instr)
            decoded = decode(word)
            covered_opcodes.add(decoded.opcode)
            if decoded.opcode is Opcode.COMPUTE:
                covered_functs.add(decoded.funct)
        assert covered_opcodes == set(Opcode)
        assert covered_functs == set(Funct)


class TestWorkloadListings:
    def test_compiled_program_listing_reassembles(self):
        """Full circle on a real program: every instruction word of the
        compiled sieve disassembles to text that assembles back to the
        identical word."""
        from repro.workloads import cached_program

        program = cached_program("sieve")
        for address, instr in program.listing.items():
            word = program.image[address]
            assert assemble(disassemble_word(word)).image[0] == word


class TestGeneratedPrograms:
    def test_fuzzer_distribution_round_trips(self):
        """The fuzzer's output lives inside the round-trip contract: every
        instruction word of a generated program disassembles to text that
        assembles back to the identical word, across both modes."""
        from repro.fuzz.gen import GenConfig, generate_program

        for mode in ("isa", "lang"):
            config = GenConfig(mode=mode, quick=True)
            for seed in range(8):
                generated = generate_program(seed, config)
                if mode == "lang":
                    from repro.lang import compile_spl

                    program = compile_spl(generated.source,
                                          scheme=None).naive_program()
                else:
                    program = assemble(generated.source)
                assert program.listing, f"{mode} seed {seed} empty"
                for address, _ in program.listing.items():
                    word = program.image[address]
                    assert (assemble(disassemble_word(word)).image[0]
                            == word), (mode, seed, address)
