"""Workload-suite tests: every program runs correctly on the full machine
(real Icache + Ecache), matches the golden model, and shows the expected
architectural character (Lisp > Pascal no-op fraction, etc.)."""

import pytest

from repro.coproc import Fpu
from repro.core import MachineConfig, perfect_memory_config
from repro.core.golden import GoldenSimulator
from repro.workloads import (
    EXTRA_SUITE,
    EXTRA_TEXT,
    FP_SUITE,
    LISP_SUITE,
    PARALLEL_SUITE,
    PASCAL_SUITE,
    WORKLOADS,
    get,
    run_workload,
)
from repro.workloads.fp import expected_dot_product, expected_saxpy_count

ALL_NAMES = sorted(WORKLOADS)


def golden_output(workload, max_instructions=10_000_000):
    sim = GoldenSimulator()
    if workload.needs_fpu:
        sim.coprocessors.attach(Fpu())
    sim.load_program(workload.naive_program())
    sim.run(max_instructions)
    return sim.console.values


class TestRegistry:
    def test_suites_are_disjoint_and_complete(self):
        union = (set(PASCAL_SUITE) | set(LISP_SUITE) | set(FP_SUITE)
                 | set(EXTRA_SUITE) | set(PARALLEL_SUITE))
        assert union == set(WORKLOADS)
        assert not set(PASCAL_SUITE) & set(LISP_SUITE)
        assert not set(EXTRA_SUITE) & set(PASCAL_SUITE)
        assert not set(PARALLEL_SUITE) & set(PASCAL_SUITE)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get("frobnicate")

    def test_expected_outputs_recorded(self):
        assert get("towers").expected == (1023,)
        assert get("queens").expected == (92,)
        assert get("sieve").expected == (303,)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_full_machine_matches_golden(self, name):
        """Reorganized code on the real machine (caches on) == naive code
        on the instruction-level golden model."""
        workload = get(name)
        machine = run_workload(name, MachineConfig())
        assert machine.console.values == golden_output(workload)
        if workload.expected is not None:
            assert tuple(machine.console.values) == workload.expected

    def test_cpi_is_physical(self, name):
        machine = run_workload(name, MachineConfig())
        # every executed instruction costs at least a cycle; with the
        # paper's memory system CPI lands between 1 and ~3
        assert 1.0 <= machine.stats.cpi < 3.0


class TestKnownResults:
    def test_perm_call_count(self):
        # calls(n) = 1 + n * calls(n-1), calls(1) = 1 -> calls(6) = 1237
        assert run_workload("perm").console.values == [1237]

    def test_towers_moves(self):
        assert run_workload("towers").console.values == [2 ** 10 - 1]

    def test_queens_solutions(self):
        assert run_workload("queens").console.values == [92]

    def test_sieve_prime_count(self):
        count = sum(1 for n in range(2, 2001)
                    if all(n % d for d in range(2, int(n ** 0.5) + 1)))
        assert run_workload("sieve").console.values == [count]

    def test_fib(self):
        assert run_workload("fib").console.values == [610]

    def test_listops_values(self):
        assert run_workload("listops").console.values == [45150, 300, 290, 300]

    def test_treefold_sums_leaves(self):
        # leaves carry seeds 2^9 .. 2^10-1
        assert run_workload("treefold").console.values == [
            sum(range(512, 1024))]

    def test_sorts_produce_sorted_output(self):
        for name in ("bubble", "quick"):
            values = run_workload(name).console.values
            assert values[0] == 0          # zero inversions
            assert values[1] <= values[2]  # min <= max

    def test_intmm_checksum_matches_python(self):
        # replicate initmatrix + multiply in Python
        def init():
            t = 1
            matrix = [[0] * 8 for _ in range(8)]
            for i in range(8):
                for j in range(8):
                    t = _pascal_mod(t * 5 + i + j, 31) - 15
                    matrix[i][j] = t
            return matrix

        def _pascal_mod(a, b):
            q = int(a / b)
            return a - q * b

        a = init()
        b = init()
        checksum = sum(sum(a[r][i] * b[i][c] for i in range(8))
                       for r in range(8) for c in range(8))
        assert run_workload("intmm").console.values == [checksum]

    def test_fp_dot_product_value(self):
        from repro.coproc import float_to_word

        machine = run_workload("fp_dot")
        assert machine.console.values == [
            _signed(float_to_word(expected_dot_product()))]

    def test_fp_saxpy_count(self):
        machine = run_workload("fp_saxpy")
        assert machine.console.values == [expected_saxpy_count()]

    def test_extra_character_output(self):
        machine = run_workload("strings")
        assert machine.console.text == EXTRA_TEXT["strings"]

    def test_extra_mapreduce_values(self):
        n = 30
        machine = run_workload("mapreduce")
        assert machine.console.values == [
            n * (n + 1) * (2 * n + 1) // 6,
            sum(k for k in range(1, n + 1) if k % 2),
        ]

    def test_extra_bitcount_matches_python(self):
        total = 0
        x = 1
        for _ in range(24):
            x = (x * 5 + 1) % 65536
            total += bin(x).count("1")
        machine = run_workload("bitcount")
        assert machine.console.values == [total, 0, 16]


def _signed(word):
    return word - (1 << 32) if word & 0x80000000 else word


class TestArchitecturalCharacter:
    """The workload suite must reproduce the paper's qualitative profile."""

    def test_lisp_has_more_noops_than_pascal(self):
        """Paper: 15.6% (Pascal) vs 18.3% (Lisp), blamed on load-load
        interlocks from car/cdr chains."""
        def average_noops(names):
            fractions = []
            for name in names:
                stats = run_workload(name, perfect_memory_config()).stats
                fractions.append(stats.noop_fraction)
            return sum(fractions) / len(fractions)

        assert average_noops(LISP_SUITE) > average_noops(PASCAL_SUITE)

    def test_data_reference_density_near_one_third(self):
        """Paper's bandwidth estimate assumes data fetched every ~3rd
        cycle."""
        densities = [run_workload(name, perfect_memory_config())
                     .stats.data_reference_density
                     for name in PASCAL_SUITE]
        average = sum(densities) / len(densities)
        assert 0.15 < average < 0.55

    def test_fp_workloads_are_fp_dense(self):
        """FP-intensive traces: a significant fraction of coprocessor
        instructions (the observation that killed the non-cached
        coprocessor scheme)."""
        machine = run_workload("fp_dot", perfect_memory_config())
        stats = machine.stats
        fp_refs = stats.coproc_ops + stats.loads + stats.stores
        assert stats.coproc_ops / stats.retired > 0.1
        assert fp_refs / stats.retired > 0.3

    def test_branch_density_is_realistic(self):
        """Integer code of this era branches roughly every 4-10
        instructions."""
        for name in ("queens", "bubble", "listops"):
            stats = run_workload(name, perfect_memory_config()).stats
            density = (stats.branches + stats.jumps) / stats.retired
            assert 0.08 < density < 0.35, name
