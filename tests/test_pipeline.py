"""Cycle-level tests of the pipeline: bypassing, delay slots, squashing,
hazards, halting, and basic instruction semantics."""

import pytest

from repro.asm import assemble
from repro.core import (
    HazardViolation,
    Machine,
    perfect_memory_config,
)

CONSOLE = 0x3FFFF0


def run(source: str, config=None, max_cycles: int = 200_000) -> Machine:
    machine = Machine(config or perfect_memory_config())
    machine.load_program(assemble(source))
    machine.run(max_cycles)
    assert machine.halted, "program did not halt"
    return machine


def out(source: str, config=None):
    return run(source, config).console.values


EPILOGUE = """
    li   a5, 0x3FFFF0
    st   rv, 0(a5)
    halt
"""


class TestBasicExecution:
    def test_arithmetic_chain(self):
        machine = run(
            """
            _start:
                li t0, 10
                li t1, 3
                add t2, t0, t1
                sub t3, t2, t1
                and t4, t2, t1
                or  t5, t2, t1
                xor t6, t2, t1
                halt
            """
        )
        regs = machine.regs
        assert regs[12] == 13      # t2
        assert regs[13] == 10      # t3
        assert regs[14] == 13 & 3
        assert regs[15] == 13 | 3
        assert regs[16] == 13 ^ 3

    def test_r0_discards_writes(self):
        machine = run("li r0, 99\nadd r0, r0, r0\nhalt")
        assert machine.regs[0] == 0

    def test_shifts(self):
        machine = run(
            """
            li t0, 0x81
            sll t1, t0, 4
            srl t2, t0, 4
            sra t3, t0, 4
            li  t4, -16
            sra t5, t4, 2
            halt
            """
        )
        assert machine.regs[11] == 0x810
        assert machine.regs[12] == 0x8
        assert machine.regs[13] == 0x8
        assert machine.regs[15] == 0xFFFFFFFC  # -4

    def test_not_and_mov(self):
        machine = run("li t0, 0\nnot t1, t0\nmov t2, t1\nhalt")
        assert machine.regs[11] == 0xFFFFFFFF
        assert machine.regs[12] == 0xFFFFFFFF

    def test_memory_round_trip(self):
        machine = run(
            """
            _start:
                li  t0, 0x1234
                la  t1, buf
                st  t0, 0(t1)
                ld  t2, 0(t1)
                nop             ; load delay slot
                add t3, t2, t2
                halt
            buf: .space 1
            """
        )
        assert machine.regs[12] == 0x1234
        assert machine.regs[13] == 0x2468

    def test_console_output(self):
        assert out(
            """
            _start:
                li rv, 777
            """ + EPILOGUE
        ) == [777]

    def test_negative_console_values_are_signed(self):
        assert out("_start:\n li rv, -5\n" + EPILOGUE) == [-5]

    def test_large_immediate(self):
        machine = run("li t0, 0x12345678\nhalt")
        assert machine.regs[10] == 0x12345678


class TestPipelineTiming:
    def test_cpi_one_for_straightline_code(self):
        """With perfect memory and no branches, CPI approaches 1."""
        body = "\n".join("add t0, t0, t1" for _ in range(200))
        machine = run(f"li t0, 0\nli t1, 1\n{body}\nhalt")
        stats = machine.stats
        # pipeline fill (4) + halt drain (~3) are the only overhead
        assert stats.cycles - stats.retired <= 8

    def test_bypass_distance_one(self):
        machine = run("li t0, 5\nadd t1, t0, t0\nadd t2, t1, t1\nhalt")
        assert machine.regs[11] == 10 and machine.regs[12] == 20

    def test_bypass_distance_two(self):
        machine = run("li t0, 5\nnop\nadd t1, t0, t0\nhalt")
        assert machine.regs[11] == 10

    def test_register_file_write_before_read_distance_three(self):
        machine = run("li t0, 5\nnop\nnop\nadd t1, t0, t0\nhalt")
        assert machine.regs[11] == 10

    def test_load_value_usable_after_one_slot(self):
        machine = run(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
                nop
                add t2, t1, t1
                halt
            v: .word 21
            """
        )
        assert machine.regs[12] == 42

    def test_store_data_from_distance_one_producer(self):
        machine = run(
            """
            _start:
                la t0, v
                li t1, 9
                st t1, 0(t0)
                ld t2, 0(t0)
                nop
                mov rv, t2
                halt
            v: .word 0
            """
        )
        assert machine.regs[3] == 9

    def test_back_to_back_stores_and_loads(self):
        machine = run(
            """
            _start:
                la t0, a
                li t1, 1
                li t2, 2
                st t1, 0(t0)
                st t2, 1(t0)
                ld t3, 0(t0)
                ld t4, 1(t0)
                nop
                add t5, t3, t4
                halt
            a: .space 2
            """
        )
        assert machine.regs[15] == 3


class TestHazardChecking:
    def test_load_use_in_delay_slot_raises(self):
        with pytest.raises(HazardViolation):
            run(
                """
                _start:
                    la t0, v
                    ld t1, 0(t0)
                    add t2, t1, t1   ; hazard: uses t1 in load delay slot
                    halt
                v: .word 3
                """
            )

    def test_hazard_check_off_returns_stale_value(self):
        config = perfect_memory_config()
        config.hazard_check = False
        machine = run(
            """
            _start:
                li t1, 100
                la t0, v
                ld t1, 0(t0)
                add t2, t1, t1   ; stale t1 (=100) on real hardware
                halt
            v: .word 3
            """,
            config,
        )
        assert machine.regs[12] == 200

    def test_unrelated_register_in_delay_slot_is_fine(self):
        machine = run(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
                add t2, t0, t0   ; fine: does not read t1
                add t3, t1, t1
                halt
            v: .word 4
            """
        )
        assert machine.regs[13] == 8


class TestBranches:
    def test_taken_branch_executes_both_slots(self):
        machine = run(
            """
            _start:
                li t0, 1
                beq t0, t0, target
                li t1, 11        ; slot 1: executes
                li t2, 22        ; slot 2: executes
                li t3, 33        ; skipped
            target:
                halt
            """
        )
        assert machine.regs[11] == 11
        assert machine.regs[12] == 22
        assert machine.regs[13] == 0

    def test_not_taken_no_squash_executes_slots(self):
        machine = run(
            """
            _start:
                li t0, 1
                bne t0, t0, away
                li t1, 11
                li t2, 22
                halt
            away:
                halt
            """
        )
        assert machine.regs[11] == 11 and machine.regs[12] == 22

    def test_squash_branch_not_taken_squashes_slots(self):
        machine = run(
            """
            _start:
                li t0, 1
                bnesq t0, t0, away   ; predicted taken, goes wrong way
                li t1, 11            ; squashed
                li t2, 22            ; squashed
                halt
            away:
                halt
            """
        )
        assert machine.regs[11] == 0 and machine.regs[12] == 0
        assert machine.stats.branch_squashes == 1
        assert machine.stats.squashed >= 2

    def test_squash_branch_taken_executes_slots(self):
        machine = run(
            """
            _start:
                li t0, 1
                beqsq t0, t0, target
                li t1, 11
                li t2, 22
            target:
                halt
            """
        )
        assert machine.regs[11] == 11 and machine.regs[12] == 22
        assert machine.stats.branch_squashes == 0

    def test_all_conditions(self):
        machine = run(
            """
            _start:
                li t0, 3
                li t1, 5
                li s0, 0
                blt t0, t1, c1
                nop
                nop
                halt
            c1: addi s0, s0, 1
                ble t0, t1, c2
                nop
                nop
                halt
            c2: addi s0, s0, 1
                bgt t1, t0, c3
                nop
                nop
                halt
            c3: addi s0, s0, 1
                bge t1, t0, c4
                nop
                nop
                halt
            c4: addi s0, s0, 1
                bne t0, t1, c5
                nop
                nop
                halt
            c5: addi s0, s0, 1
                beq t0, t0, done
                nop
                nop
                halt
            done:
                addi s0, s0, 1
                halt
            """
        )
        assert machine.regs[26] == 6

    def test_signed_comparison(self):
        machine = run(
            """
            _start:
                li t0, -1
                li t1, 1
                li s0, 0
                blt t0, t1, good
                nop
                nop
                halt
            good:
                li s0, 1
                halt
            """
        )
        assert machine.regs[26] == 1

    def test_loop_counts_correctly(self):
        machine = run(
            """
            _start:
                li t0, 0         ; sum
                li t1, 10        ; counter
            loop:
                add t0, t0, t1
                addi t1, t1, -1
                bgt t1, r0, loop
                nop
                nop
                mov rv, t0
                halt
            """
        )
        assert machine.regs[3] == 55

    def test_branch_cost_accounting(self):
        machine = run(
            """
            _start:
                li t0, 4
            loop:
                addi t0, t0, -1
                bgt t0, r0, loop
                nop
                nop
                halt
            """
        )
        assert machine.stats.branches == 4
        assert machine.stats.branches_taken == 3


class TestJumps:
    def test_call_and_return(self):
        machine = run(
            """
            _start:
                li  a0, 20
                call double
                nop
                nop
                mov s0, rv
                halt
            double:
                add rv, a0, a0
                ret
                nop
                nop
            """
        )
        assert machine.regs[26] == 40

    def test_link_register_points_past_slots(self):
        machine = run(
            """
            _start:
                call f
                li t0, 1      ; slot 1
                li t1, 2      ; slot 2
                li t2, 3      ; return lands here
                halt
            f:  ret
                nop
                nop
            """
        )
        assert machine.regs[10] == 1
        assert machine.regs[11] == 2
        assert machine.regs[12] == 3

    def test_nested_calls_with_stack(self):
        machine = run(
            """
            _start:
                li  sp, 0x1000
                li  a0, 3
                call f
                nop
                nop
                mov rv, rv
                halt
            f:  ; f(n) = n + g(n)
                addi sp, sp, -2
                st  ra, 0(sp)
                st  a0, 1(sp)
                call g
                nop
                nop
                ld  a0, 1(sp)
                ld  ra, 0(sp)
                add rv, rv, a0
                addi sp, sp, 2
                ret
                nop
                nop
            g:  ; g(n) = n * 2
                add rv, a0, a0
                ret
                nop
                nop
            """
        )
        assert machine.regs[3] == 9

    def test_indirect_jump_through_register(self):
        machine = run(
            """
            _start:
                la t0, target
                jspci r0, 0(t0)
                nop
                nop
                li t1, 99   ; skipped
            target:
                halt
            """
        )
        assert machine.regs[11] == 0


class TestHalt:
    def test_halt_squashes_younger_instructions(self):
        machine = run("li t0, 1\nhalt\nli t1, 2\nli t2, 3")
        assert machine.regs[10] == 1
        assert machine.regs[11] == 0
        assert machine.regs[12] == 0

    def test_older_instructions_complete_before_halt(self):
        machine = run(
            """
            _start:
                la t0, v
                li t1, 5
                st t1, 0(t0)
                halt
            v: .space 1
            """
        )
        address = assemble("_start:\n nop").symbols  # dummy
        assert machine.memory.system.read(
            assemble(
                "_start:\n la t0, v\n li t1, 5\n st t1, 0(t0)\n halt\nv: .space 1"
            ).symbols["v"]
        ) == 5

    def test_run_without_halt_stops_at_cycle_budget(self):
        machine = Machine(perfect_memory_config())
        machine.load_program(assemble("_start: br _start\nnop\nnop"))
        stats = machine.run(max_cycles=500)
        assert not machine.halted
        assert stats.cycles == 500


class TestStatsBookkeeping:
    def test_noop_counting(self):
        machine = run("nop\nnop\nli t0, 1\nhalt")
        assert machine.stats.noops == 2

    def test_data_reference_density(self):
        machine = run(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
                nop
                st t1, 1(t0)
                halt
            v: .space 2
            """
        )
        assert machine.stats.loads == 1
        assert machine.stats.stores == 1

    def test_retired_excludes_squashed(self):
        machine = run(
            """
            _start:
                li t0, 1
                bnesq t0, t0, away
                nop
                nop
                halt
            away: halt
            """
        )
        # li + branch + halt retire; the two slot nops are squashed
        assert machine.stats.squashed >= 2
        assert machine.stats.noops == 0
