"""Tests for the SPL compiler: lexer, parser, semantics, code generation,
and end-to-end execution on both the golden model and the pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Machine, perfect_memory_config
from repro.core.golden import GoldenSimulator
from repro.lang import (
    LexError,
    ParseError,
    SemanticError,
    compile_spl,
    parse_program,
    tokenize,
)
from repro.lang.ast_nodes import Binary, FuncDecl, If


def run_golden_src(source, max_instructions=5_000_000):
    sim = GoldenSimulator()
    sim.load_program(compile_spl(source, scheme=None).naive_program())
    sim.run(max_instructions)
    return sim.console.values


def run_pipeline_src(source, max_cycles=5_000_000):
    machine = Machine(perfect_memory_config())
    machine.load_program(compile_spl(source).program())
    machine.run(max_cycles)
    assert machine.halted
    return machine.console.values


def both(source):
    golden = run_golden_src(source)
    pipeline = run_pipeline_src(source)
    assert golden == pipeline
    return golden


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("BEGIN End wHiLe")
        assert [t.text for t in tokens[:-1]] == ["begin", "end", "while"]

    def test_numbers_and_hex(self):
        tokens = tokenize("42 0x2A")
        assert tokens[0].value == 42
        assert tokens[1].value == 42

    def test_char_literal(self):
        assert tokenize("'A'")[0].value == 65

    def test_comments_stripped(self):
        tokens = tokenize("a { comment } b // line\nc")
        assert [t.text for t in tokens[:-1]] == ["a", "b", "c"]

    def test_two_char_symbols(self):
        kinds = [t.kind for t in tokenize(":= <> <= >=")[:-1]]
        assert kinds == [":=", "<>", "<=", ">="]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("{ never ends")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]


class TestParser:
    def test_minimal_program(self):
        tree = parse_program("program p; begin end.")
        assert tree.name == "p"
        assert tree.main.body == []

    def test_declarations(self):
        tree = parse_program(
            "program p; var a, b[10]; func f(x); begin end; begin end.")
        assert tree.globals[0].size is None
        assert tree.globals[1].size == 10
        assert isinstance(tree.functions[0], FuncDecl)

    def test_if_then_else_without_semicolon(self):
        tree = parse_program(
            "program p; var x; begin if x = 1 then x := 2 else x := 3; end.")
        statement = tree.main.body[0]
        assert isinstance(statement, If)
        assert statement.else_body is not None

    def test_operator_precedence(self):
        tree = parse_program("program p; var x; begin x := 1 + 2 * 3; end.")
        value = tree.main.body[0].value
        assert isinstance(value, Binary) and value.op == "+"
        assert isinstance(value.right, Binary) and value.right.op == "*"

    def test_comparison_binds_loosest(self):
        tree = parse_program(
            "program p; var x; begin while x + 1 < 2 * 3 do x := 1; end.")
        condition = tree.main.body[0].condition
        assert condition.op == "<"

    def test_for_downto(self):
        tree = parse_program(
            "program p; var i; begin for i := 10 downto 1 do i := i; end.")
        assert tree.main.body[0].down

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("program p; begin end")

    def test_bad_statement(self):
        with pytest.raises(ParseError):
            parse_program("program p; begin 42; end.")


class TestSemantics:
    def test_undefined_variable(self):
        with pytest.raises(SemanticError):
            compile_spl("program p; begin x := 1; end.")

    def test_undefined_function(self):
        with pytest.raises(SemanticError):
            compile_spl("program p; begin f(); end.")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError):
            compile_spl(
                "program p; func f(a); begin end; begin f(1, 2); end.")

    def test_array_used_as_scalar(self):
        with pytest.raises(SemanticError):
            compile_spl("program p; var a[4]; begin a := 1; end.")

    def test_scalar_indexed(self):
        with pytest.raises(SemanticError):
            compile_spl("program p; var a; begin a[0] := 1; end.")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            compile_spl("program p; var a; var a; begin end.")

    def test_too_many_parameters(self):
        with pytest.raises(SemanticError):
            compile_spl("program p; func f(a,b,c,d,e,f2,g); begin end; "
                        "begin end.")


class TestExecution:
    def test_arithmetic(self):
        assert both("""
            program p; begin
                write(2 + 3 * 4);
                write((2 + 3) * 4);
                write(10 - 2 - 3);
                write(-5 + 3);
            end.""") == [14, 20, 5, -2]

    def test_division_semantics(self):
        """Pascal div truncates toward zero; mod follows the dividend."""
        assert both("""
            program p; begin
                write(17 div 5);  write(17 mod 5);
                write(-17 div 5); write(-17 mod 5);
                write(17 div -5); write(17 mod -5);
                write(1000000 div 7);
                write(5 div 0);   { convention: q=0 }
            end.""") == [3, 2, -3, -2, -3, 2, 142857, 0]

    def test_comparisons_as_values(self):
        assert both("""
            program p; var x; begin
                x := 3;
                write(x > 2); write(x > 3); write(x >= 3);
                write(x < 2); write(x <= 3); write(x = 3); write(x <> 3);
            end.""") == [1, 0, 1, 0, 1, 1, 0]

    def test_while_greater_boundary(self):
        """Regression: 'while n > 0' must not run an extra iteration."""
        assert both("""
            program p; var n, count; begin
                n := 3; count := 0;
                while n > 0 do begin count := count + 1; n := n - 1; end;
                write(count);
                n := 0;
                while n > 0 do n := n - 1;
                write(n);
            end.""") == [3, 0]

    def test_short_circuit_and_or(self):
        # g() must not run when the left side decides
        assert both("""
            program p; var calls;
            func g(v); begin calls := calls + 1; return v; end;
            begin
                calls := 0;
                if 0 = 1 and g(1) = 1 then write(99);
                write(calls);
                if 1 = 1 or g(1) = 1 then write(7);
                write(calls);
            end.""") == [0, 7, 0]

    def test_not_operator(self):
        assert both("""
            program p; var x; begin
                x := 0;
                if not (x = 1) then write(1);
                write(not 0); write(not 5);
            end.""") == [1, 1, 0]

    def test_for_loops(self):
        assert both("""
            program p; var i, s; begin
                s := 0;
                for i := 1 to 5 do s := s + i;
                write(s);
                for i := 5 downto 1 do s := s - i;
                write(s);
                for i := 3 to 2 do s := s + 100;  { zero iterations }
                write(s);
            end.""") == [15, 0, 0]

    def test_repeat_until(self):
        assert both("""
            program p; var i; begin
                i := 0;
                repeat i := i + 1; until i >= 4;
                write(i);
            end.""") == [4]

    def test_arrays_global_and_local(self):
        assert both("""
            program p; var g[10];
            func f(n);
            var a[5], i;
            begin
                for i := 0 to 4 do a[i] := i * n;
                return a[0] + a[1] + a[4];
            end;
            begin
                g[3] := 33;
                g[4] := g[3] + 1;
                write(g[4]);
                write(f(10));
            end.""") == [34, 50]

    def test_recursion_gcd(self):
        assert both("""
            program p;
            func gcd(a, b);
            begin
                if b = 0 then return a;
                return gcd(b, a mod b);
            end;
            begin
                write(gcd(1071, 462));
                write(gcd(17, 5));
            end.""") == [21, 1]

    def test_mutual_recursion(self):
        assert both("""
            program p;
            func isodd(n);
            begin
                if n = 0 then return 0;
                return iseven(n - 1);
            end;
            func iseven(n);
            begin
                if n = 0 then return 1;
                return isodd(n - 1);
            end;
            begin
                write(iseven(10)); write(isodd(10)); write(isodd(7));
            end.""") == [1, 0, 1]

    def test_six_arguments(self):
        assert both("""
            program p;
            func addall(a, b, c, d, e, f);
            begin return a + b + c + d + e + f; end;
            begin write(addall(1, 2, 3, 4, 5, 6)); end.""") == [21]

    def test_deep_expression_spilling(self):
        """Nested calls inside expressions exercise call-site spills."""
        assert both("""
            program p;
            func sq(x); begin return x * x; end;
            begin
                write(sq(2) + sq(3) * sq(4) - sq(sq(2)));
                write(sq(1 + sq(2)) + 1);
            end.""") == [4 + 9 * 16 - 16, 26]

    def test_writec(self):
        machine = Machine(perfect_memory_config())
        machine.load_program(compile_spl("""
            program p; begin writec(72); writec(105); end.""").program())
        machine.run(100_000)
        assert machine.console.text == "Hi"

    def test_char_literals(self):
        assert both("program p; begin write('A'); end.") == [65]

    def test_large_constants(self):
        assert both("""
            program p; begin
                write(1000000 * 2);
                write(0x7FFF + 1);
            end.""") == [2000000, 32768]


@settings(max_examples=40, deadline=None)
@given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6))
def test_compiled_arithmetic_matches_python(a, b):
    """Compiled +, -, * agree with Python's 32-bit semantics."""
    values = run_golden_src(f"""
        program p; var x, y; begin
            x := {a}; y := {b};
            write(x + y); write(x - y); write(x * y);
        end.""")

    def wrap(v):
        v &= 0xFFFFFFFF
        return v - (1 << 32) if v & 0x80000000 else v

    assert values == [wrap(a + b), wrap(a - b), wrap(a * b)]


@settings(max_examples=40, deadline=None)
@given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6))
def test_compiled_divmod_matches_truncating_semantics(a, b):
    if b == 0:
        return
    values = run_golden_src(f"""
        program p; var x, y; begin
            x := {a}; y := {b};
            write(x div y); write(x mod y);
        end.""")
    quotient = int(a / b)  # truncation toward zero
    remainder = a - quotient * b
    assert values == [quotient, remainder]


@settings(max_examples=15, deadline=None)
@given(n=st.integers(0, 12))
def test_compiled_fib_matches_python(n):
    import functools

    @functools.lru_cache(None)
    def fib(k):
        return k if k < 2 else fib(k - 1) + fib(k - 2)

    assert run_golden_src(f"""
        program p;
        func fib(n);
        begin
            if n < 2 then return n;
            return fib(n - 1) + fib(n - 2);
        end;
        begin write(fib({n})); end.""") == [fib(n)]
