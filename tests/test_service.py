"""The simulation service: protocol, cache keys, robustness, ladder.

Five claims are pinned here:

* the frame protocol classifies every way a frame can lie -- oversize
  headers, truncation, non-JSON, non-objects -- without ever crashing
  a connection handler;
* content addresses are *semantic*: ``request_key`` and the trace
  store's ``descriptor_key`` are invariant under dict insertion order
  and tuple/list spelling (hypothesis), and sensitive to every actual
  value change -- equal keys mean equal computations, nothing else;
* the admission layer (token bucket, per-client cap, queue cap) and
  the circuit breaker are deterministic state machines under a fake
  clock;
* a cache hit replays the *byte-identical* canonical payload of the
  cold computation it memoises, corruption is detected and healed, and
  LRU eviction is bounded;
* the server's degradation ladder holds end-to-end: coalescing,
  shed-with-Retry-After, breaker-open cache-only mode, partial sweeps
  flagged ``incomplete`` and never cached, drain losing no accepted
  job, malformed frames and slow clients disconnected without
  collateral damage.
"""

import asyncio
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.admission import (AdmissionController, TokenBucket,
                                     stable_client_id)
from repro.service.breaker import STATE_CODES, CircuitBreaker
from repro.service.cache import ResultCache, request_key
from repro.service.protocol import (MAX_FRAME_BYTES, HEADER, ProtocolError,
                                    encode_frame, read_frame)
from repro.service.server import ServiceConfig, ServiceServer
from repro.traces.store import canonical_json, descriptor_key


# --------------------------------------------------------------- protocol
def _read(data: bytes, **kwargs):
    """Run read_frame over a pre-fed reader."""
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader, **kwargs)
    return asyncio.run(inner())


class TestProtocol:
    def test_roundtrip_and_clean_eof(self):
        frame = encode_frame({"kind": "ping", "id": 7})

        async def inner():
            reader = asyncio.StreamReader()
            reader.feed_data(frame + frame)
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(inner())
        assert first == {"kind": "ping", "id": 7}
        assert second == first
        assert third is None               # clean EOF between frames

    def test_oversize_header_is_rejected_before_reading(self):
        with pytest.raises(ProtocolError, match="ceiling"):
            _read(HEADER.pack(1 << 30), max_bytes=MAX_FRAME_BYTES)

    def test_truncated_header_and_body_are_classified(self):
        with pytest.raises(ProtocolError, match="frame header"):
            _read(b"\x00\x00")
        with pytest.raises(ProtocolError, match="10/100 bytes"):
            _read(HEADER.pack(100) + b"x" * 10)

    def test_non_json_and_non_object_bodies_are_classified(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            _read(HEADER.pack(4) + b"{nop")
        with pytest.raises(ProtocolError, match="not an object"):
            _read(HEADER.pack(4) + b"1234")

    def test_encode_frame_refuses_oversize_payloads(self):
        with pytest.raises(ProtocolError, match="ceiling"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


# ----------------------------------------------------------- content keys
_scalars = (st.integers(min_value=-2**31, max_value=2**31) | st.booleans()
            | st.text(max_size=8) | st.floats(allow_nan=False,
                                              allow_infinity=False))
_params = st.dictionaries(
    st.text(min_size=1, max_size=8), _scalars | st.lists(_scalars,
                                                         max_size=4),
    max_size=6)


def _reversed_dict(mapping: dict) -> dict:
    return {key: mapping[key] for key in reversed(list(mapping))}


class TestContentKeys:
    """The content address is semantic, not syntactic (satellite 3)."""

    @settings(max_examples=50, deadline=None)
    @given(params=_params)
    def test_request_key_ignores_dict_insertion_order(self, params):
        assert request_key("run", params) == \
            request_key("run", _reversed_dict(params))

    @settings(max_examples=50, deadline=None)
    @given(params=_params)
    def test_descriptor_key_ignores_dict_insertion_order(self, params):
        assert descriptor_key(params) == \
            descriptor_key(_reversed_dict(params))

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(_scalars, min_size=1, max_size=5))
    def test_tuples_and_lists_are_interchangeable(self, values):
        assert request_key("sweep", {"points": tuple(values)}) == \
            request_key("sweep", {"points": list(values)})
        assert descriptor_key({"points": tuple(values)}) == \
            descriptor_key({"points": list(values)})

    @settings(max_examples=50, deadline=None)
    @given(params=_params, key=st.text(min_size=1, max_size=8),
           bump=st.integers(min_value=1, max_value=99))
    def test_any_value_change_changes_the_key(self, params, key, bump):
        changed = dict(params)
        changed[key] = (changed.get(key, 0) + bump
                        if isinstance(changed.get(key, 0), int) else bump)
        assert request_key("run", params) != request_key("run", changed)

    def test_kind_is_part_of_the_address(self):
        assert request_key("run", {"seed": 1}) != \
            request_key("fuzz", {"seed": 1})

    def test_canonical_json_is_the_shared_canonicalizer(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            '{"a":[1,2],"b":1}'


# ------------------------------------------------------- admission control
class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_drains_and_refills_deterministically(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2.0, refill_per_s=1.0, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        assert bucket.seconds_until(1.0) == pytest.approx(1.0)
        clock.now += 0.5
        assert not bucket.try_take()       # only half a token back
        clock.now += 0.5
        assert bucket.try_take()

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2.0, refill_per_s=100.0, clock=clock)
        clock.now += 3600.0
        assert bucket.tokens == pytest.approx(2.0)


class TestAdmissionController:
    def _controller(self, **kwargs):
        clock = FakeClock()
        bucket = TokenBucket(capacity=4.0, refill_per_s=2.0, clock=clock)
        return AdmissionController(bucket, **kwargs), clock

    def test_shed_reasons_are_ordered_and_named(self):
        controller, _ = self._controller(max_inflight_per_client=1,
                                         max_queue_depth=2)
        # queue-full outranks everything
        verdict = controller.admit("a", queue_depth=2)
        assert (not verdict.allowed and verdict.reason == "queue-full"
                and verdict.retry_after_s > 0)
        # then the per-client in-flight cap
        controller.start("a")
        verdict = controller.admit("a", queue_depth=0)
        assert verdict.reason == "client-inflight-limit"
        # another client is unaffected by a's cap: fairness isolation
        assert controller.admit("b", queue_depth=0).allowed

    def test_rate_limit_sheds_with_retry_after(self):
        controller, clock = self._controller()
        for _ in range(4):
            assert controller.admit("a", queue_depth=0).allowed
        verdict = controller.admit("a", queue_depth=0)
        assert verdict.reason == "rate-limited"
        assert verdict.retry_after_s == pytest.approx(0.5)
        clock.now += 0.5
        assert controller.admit("a", queue_depth=0).allowed

    def test_finish_releases_the_inflight_slot(self):
        controller, _ = self._controller(max_inflight_per_client=1)
        controller.start("a")
        assert controller.inflight("a") == 1
        controller.finish("a")
        assert controller.inflight("a") == 0
        assert controller.admit("a", queue_depth=0).allowed

    def test_stable_client_id(self):
        assert stable_client_id(("127.0.0.1", 4), "alice") == "alice"
        assert stable_client_id(("127.0.0.1", 4), None) == \
            str(("127.0.0.1", 4))
        assert stable_client_id(None, None) == "anonymous"
        assert len(stable_client_id(None, "x" * 200)) == 64


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        defaults = dict(window=8, failure_threshold=0.5, min_samples=4,
                        open_seconds=2.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_opens_on_failure_fraction_and_recovers(self):
        breaker, clock = self._breaker()
        for ok in (True, False, False, False):
            breaker.record(ok)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert 0.0 < breaker.retry_after_s() <= 2.0
        # after the open interval one probe is admitted (half-open) ...
        clock.now += 2.1
        assert breaker.allow()
        assert breaker.state == "half-open"
        assert not breaker.allow()         # ... and only one
        # a probe success closes; the window restarts clean
        breaker.record(True)
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.closes == 1

    def test_probe_failure_reopens(self):
        breaker, clock = self._breaker()
        breaker.trip("saturated")
        clock.now += 2.1
        assert breaker.allow()
        breaker.record(False)
        assert breaker.state == "open"
        assert breaker.opens == 2

    def test_too_few_samples_never_trip(self):
        breaker, _ = self._breaker(min_samples=4)
        for _ in range(3):
            breaker.record(False)
        assert breaker.state == "closed"

    def test_state_codes_cover_the_fsm(self):
        assert STATE_CODES == {"closed": 0, "open": 1, "half-open": 2}


# ------------------------------------------------------------ result cache
class TestResultCache:
    def test_hit_replays_canonical_bytes(self):
        cache = ResultCache(max_entries=4)
        key = request_key("run", {"workload": "fib"})
        payload = cache.put_result(key, {"b": 2, "a": [1, 2]})
        assert payload == b'{"a":[1,2],"b":2}'
        assert cache.get(key) == payload
        assert (cache.hits, cache.misses) == (1, 0)

    def test_lru_evicts_the_coldest_entry(self):
        cache = ResultCache(max_entries=2)
        cache.put_result("k1", {"v": 1})
        cache.put_result("k2", {"v": 2})
        assert cache.get("k1") is not None     # refresh k1
        cache.put_result("k3", {"v": 3})       # evicts k2, the coldest
        assert cache.get("k2") is None
        assert cache.get("k1") is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_corruption_is_a_detected_miss_never_a_wrong_hit(self):
        cache = ResultCache(max_entries=4)
        key = "deadbeef"
        cache.put_result(key, {"v": 42})
        cache.corrupt(key)
        assert cache.get(key) is None
        assert cache.integrity_failures == 1
        assert key not in cache                # purged, ready to heal
        cache.put_result(key, {"v": 42})
        assert cache.get(key) == b'{"v":42}'


# ------------------------------------------------------ server end-to-end
_ASM = """
        addi r1, r0, 5
        halt
        nop
        nop
"""


def _config(**overrides) -> ServiceConfig:
    """In-process config: serial Runner, tight timeouts, no TCP noise."""
    defaults = dict(parallel=False, max_workers=1, batch_max=4,
                    max_batches=2, job_timeout_s=30.0,
                    rate_capacity=64.0, rate_per_s=64.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _serve(coro_fn, **config_overrides):
    """Start a server, run the test coroutine against it, close."""
    async def inner():
        server = ServiceServer(_config(**config_overrides))
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.close()
    return asyncio.run(inner())


class TestServerLadder:
    def test_hit_is_byte_identical_to_the_cold_computation(self):
        async def scenario(server):
            cold = await server.handle_request(
                {"id": 1, "kind": "assemble",
                 "params": {"source": _ASM}})
            hit = await server.handle_request(
                {"id": 2, "kind": "assemble",
                 "params": {"source": _ASM}})
            return cold, hit, server.cache.stats()

        cold, hit, cache = _serve(scenario)
        assert (cold["status"], cold["cache"]) == ("ok", "miss")
        assert (hit["status"], hit["cache"]) == ("ok", "hit")
        assert canonical_json(cold["result"]) == \
            canonical_json(hit["result"])
        assert cold["key"] == hit["key"]
        assert (cache["hits"], cache["misses"]) == (1, 1)

    def test_identical_inflight_requests_coalesce_onto_one_job(self):
        async def scenario(server):
            request = {"kind": "sleep", "params": {"seconds": 0.2}}
            first, second = await asyncio.gather(
                server.handle_request(dict(request, id=1)),
                server.handle_request(dict(request, id=2)))
            return first, second, server.stats

        first, second, stats = _serve(scenario)
        assert {first["cache"], second["cache"]} == {"miss", "coalesced"}
        assert first["status"] == second["status"] == "ok"
        assert stats.jobs_dispatched == 1      # one computation, not two
        assert stats.coalesced == 1

    def test_admission_sheds_with_retry_after(self):
        async def scenario(server):
            responses = []
            for index in range(4):
                responses.append(await server.handle_request(
                    {"id": index, "kind": "sleep",
                     "params": {"seconds": 0.0}, "no_cache": True,
                     "client": "greedy"}))
            return responses

        responses = _serve(scenario, rate_capacity=2.0, rate_per_s=0.5)
        shed = [r for r in responses if r["status"] == "shed"]
        assert len(shed) == 2
        assert all(r["reason"] == "rate-limited" and
                   r["retry_after_s"] > 0 for r in shed)

    def test_breaker_open_is_cache_only_mode_then_recloses(self):
        async def scenario(server):
            primed = await server.handle_request(
                {"id": 0, "kind": "assemble",
                 "params": {"source": _ASM}})
            for index in range(4):             # crash jobs open the breaker
                await server.handle_request(
                    {"id": index, "kind": "crash", "params": {},
                     "no_cache": True})
            assert server.breaker.state == "open"
            shed = await server.handle_request(
                {"id": 10, "kind": "sleep", "params": {"seconds": 0.0},
                 "no_cache": True})
            hit = await server.handle_request(
                {"id": 11, "kind": "assemble",
                 "params": {"source": _ASM}})
            await asyncio.sleep(0.35)          # open interval elapses
            probe = await server.handle_request(
                {"id": 12, "kind": "sleep", "params": {"seconds": 0.0},
                 "no_cache": True})
            return primed, shed, hit, probe, server.breaker

        primed, shed, hit, probe, breaker = _serve(
            scenario, breaker_min_samples=4, breaker_window=8,
            breaker_open_s=0.3)
        assert primed["status"] == "ok"
        assert (shed["status"], shed["reason"]) == ("shed", "breaker-open")
        assert shed["retry_after_s"] > 0
        # the cache still serves while the pool is quarantined
        assert (hit["status"], hit["cache"]) == ("ok", "hit")
        # and the half-open probe's success re-closes the breaker
        assert probe["status"] == "ok"
        assert breaker.state == "closed"
        assert breaker.opens >= 1 and breaker.closes >= 1

    def test_deadline_expires_while_queued(self):
        async def scenario(server):
            blocker, victim = await asyncio.gather(
                server.handle_request(
                    {"id": 1, "kind": "sleep", "params": {"seconds": 0.4},
                     "no_cache": True, "client": "a"}),
                server.handle_request(
                    {"id": 2, "kind": "sleep", "params": {"seconds": 0.3},
                     "no_cache": True, "client": "b",
                     "deadline_s": 0.05}))
            return blocker, victim, server.stats

        # batch_max=1 + max_batches=1 forces the victim to queue behind
        # the blocker past its 50 ms deadline
        blocker, victim, stats = _serve(scenario, batch_max=1,
                                        max_batches=1)
        assert blocker["status"] == "ok"
        assert victim["status"] == "error"
        assert victim["result"]["error_kind"] == "deadline"
        assert stats.deadline_expired == 1

    def test_partial_sweep_is_flagged_incomplete_and_never_cached(self):
        request = {"kind": "sweep", "params": {
            "experiment": "ecache-size",
            "points": [{"size_words": 4096, "references": 2_000,
                        "data_words": 8_000},
                       {"size_words": -1, "references": 2_000,
                        "data_words": 8_000}]}}          # -1 cannot build

        async def scenario(server):
            first = await server.handle_request(dict(request, id=1))
            second = await server.handle_request(dict(request, id=2))
            return first, second, server.cache.stats()

        first, second, cache = _serve(scenario)
        assert first["status"] == "ok"         # the good point is served
        assert first["incomplete"] is True
        assert first["result"]["completed"] == 1
        assert len(first["result"]["failures"]) == 1
        # an incomplete sweep is never cached: the retry recomputes
        assert second["cache"] == "miss"
        assert cache["hits"] == 0

    def test_drain_finishes_accepted_work_and_sheds_new(self):
        async def scenario(server):
            accepted = asyncio.create_task(server.handle_request(
                {"id": 1, "kind": "sleep", "params": {"seconds": 0.3},
                 "no_cache": True}))
            await asyncio.sleep(0.05)          # let it be admitted
            drain = asyncio.create_task(server.drain())
            await asyncio.sleep(0.01)
            late = await server.handle_request(
                {"id": 2, "kind": "sleep", "params": {"seconds": 0.0},
                 "no_cache": True})
            await drain
            return await accepted, late

        accepted, late = _serve(scenario)
        assert accepted["status"] == "ok"      # no accepted job is lost
        assert (late["status"], late["reason"]) == ("shed", "draining")

    def test_bad_requests_are_named_not_crashed(self):
        async def scenario(server):
            unknown = await server.handle_request(
                {"id": 1, "kind": "divide", "params": {}})
            missing = await server.handle_request(
                {"id": 2, "kind": "run", "params": {}})
            return unknown, missing

        unknown, missing = _serve(scenario)
        assert unknown["status"] == "bad-request"
        assert "unknown kind" in unknown["reason"]
        assert missing["status"] == "bad-request"
        assert "workload" in missing["reason"]

    def test_metrics_harvest_is_strict_and_catalogued(self):
        from repro.telemetry import CATALOG_BY_NAME

        async def scenario(server):
            await server.handle_request(
                {"id": 1, "kind": "assemble",
                 "params": {"source": _ASM}})
            return server.metrics().snapshot()

        snapshot = _serve(scenario)
        assert all(name in CATALOG_BY_NAME for name in snapshot)
        service_names = {name for name in snapshot
                         if name.startswith("service.")}
        assert len(service_names) == 19
        assert snapshot["service.requests"] == 1
        assert snapshot["service.breaker.state"] == 0   # closed


class TestServerOverTcp:
    def test_malformed_frame_disconnects_only_the_offender(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                port=server.port)
            writer.write(HEADER.pack(8) + b"not json")
            await writer.drain()
            rejection = await read_frame(reader)
            assert await read_frame(reader) is None    # disconnected
            writer.close()
            # a well-behaved client on a fresh connection is unaffected
            good_r, good_w = await asyncio.open_connection(
                port=server.port)
            good_w.write(encode_frame({"id": 1, "kind": "ping"}))
            await good_w.drain()
            pong = await read_frame(good_r)
            good_w.close()
            return rejection, pong, server.stats

        rejection, pong, stats = _serve(scenario)
        assert rejection["status"] == "bad-request"
        assert pong["status"] == "ok"
        assert stats.frames_malformed == 1

    def test_slow_client_is_disconnected_mid_frame(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                port=server.port)
            writer.write(HEADER.pack(100) + b"only-ten..")   # then stall
            await writer.drain()
            deadline = time.monotonic() + 5.0
            while (server.stats.slow_disconnects < 1
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.02)
            assert await read_frame(reader) is None    # server hung up
            writer.close()
            return server.stats

        stats = _serve(scenario, frame_timeout_s=0.15)
        assert stats.slow_disconnects == 1
        assert stats.frames_malformed == 0     # a stall is not an attack

    def test_chaos_killed_worker_retries_to_the_right_answer(self):
        from repro.harness.runner import ChaosMonkey
        from repro.service.jobs import assemble_point

        async def scenario(server):
            response = await server.handle_request(
                {"id": 1, "kind": "assemble",
                 "params": {"source": _ASM}})
            return response

        response = _serve(scenario, parallel=True, max_workers=2,
                          max_retries=3, backoff_base=0.01,
                          chaos=ChaosMonkey(rate=1.0, seed=3))
        assert response["status"] == "ok"
        assert response["attempts"] >= 2       # the kill really happened
        assert canonical_json(response["result"]) == \
            canonical_json(assemble_point(_ASM))
