"""Tests for the developer tooling: pipeline viewer and CLI."""


from repro.asm import assemble
from repro.core import Machine, perfect_memory_config
from repro.tools.cli import main
from repro.tools.pipeview import PipelineTracer, trace_pipeline

LOOP = """
_start:
    li t0, 3
loop:
    addi t0, t0, -1
    bgtsq t0, r0, loop
    nop
    nop
    halt
"""


def make_machine(source=LOOP):
    machine = Machine(perfect_memory_config())
    machine.load_program(assemble(source))
    return machine


class TestPipelineTracer:
    def test_stage_progression(self):
        machine = make_machine()
        tracer = PipelineTracer(machine)
        tracer.step(8)
        first = tracer.rows[0]
        # the first instruction walks F R A M W on consecutive cycles
        cycles = sorted(first.cells)
        letters = [first.cells[c] for c in cycles]
        assert letters[:5] == ["F", "R", "A", "M", "W"]
        assert cycles == list(range(cycles[0], cycles[0] + len(cycles)))

    def test_one_instruction_per_cycle_enters(self):
        machine = make_machine()
        tracer = PipelineTracer(machine)
        tracer.step(6)
        entries = [min(row.cells) for row in tracer.rows if row.cells]
        assert entries == sorted(entries)
        assert len(set(entries)) == len(entries)

    def test_squashed_slots_marked(self):
        machine = make_machine()
        tracer = PipelineTracer(machine)
        tracer.step(30)
        squashed_rows = [row for row in tracer.rows if row.squashed]
        assert squashed_rows, "final-iteration slots should be squashed"
        rendered = tracer.render()
        assert "x" in rendered or "f" in rendered

    def test_repeated_pcs_get_separate_rows(self):
        """Regression: CPython id() reuse must not merge loop iterations."""
        machine = make_machine()
        tracer = PipelineTracer(machine)
        tracer.step(30)
        loop_rows = [row for row in tracer.rows if row.pc == 1]
        assert len(loop_rows) == 3  # three iterations of the loop body
        for row in loop_rows:
            cycles = sorted(row.cells)
            assert cycles == list(range(cycles[0], cycles[0] + len(cycles)))

    def test_stall_cycles_render_dots(self):
        from repro.core import MachineConfig

        machine = Machine(MachineConfig())  # real Icache: cold misses stall
        machine.load_program(assemble(LOOP))
        tracer = PipelineTracer(machine)
        tracer.step(12)
        assert "." in tracer.render()

    def test_trace_pipeline_convenience(self):
        text = trace_pipeline(make_machine(), cycles=10)
        assert "legend" in text
        assert "addi" in text


class TestCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_run_command(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.s", """
        _start:
            li t0, 21
            add t0, t0, t0
            li a0, 0x3FFFF0
            st t0, 0(a0)
            halt
        """)
        assert main(["run", path, "--ideal", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "console: [42]" in out
        assert "CPI" in out

    def test_run_with_trace(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.s", LOOP)
        assert main(["run", path, "--ideal", "--trace", "8"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_compile_command(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.spl", """
        program t;
        begin write(6 * 7); end.
        """)
        assert main(["compile", path, "--ideal"]) == 0
        assert "console: [42]" in capsys.readouterr().out

    def test_compile_emit_asm(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.spl",
                           "program t; begin write(1); end.")
        assert main(["compile", path, "--emit-asm"]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out

    def test_compile_listing(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.spl",
                           "program t; begin write(1); end.")
        assert main(["compile", path, "--listing"]) == 0
        assert "halt" in capsys.readouterr().out

    def test_disasm_command(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.s", "_start: nop\nhalt")
        assert main(["disasm", path]) == 0
        out = capsys.readouterr().out
        assert "nop" in out and "halt" in out

    def test_workload_command(self, capsys):
        assert main(["workload", "fib", "--ideal"]) == 0
        assert "console: [610]" in capsys.readouterr().out

    def test_nonhalting_program_reports_failure(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.s", "_start: br _start\nnop\nnop")
        assert main(["run", path, "--ideal",
                     "--max-cycles", "1000"]) == 1


class TestCheckBenchFile:
    def _write(self, tmp_path, payload):
        import json

        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        return path

    def _complete(self):
        return {"core": {"cycles_per_sec": 1000, "workloads": {}},
                "sweep": {"jobs": 4, "ok": 4},
                "experiments": {"e/1": {"status": "ok"}}}

    def test_complete_file_passes(self, tmp_path):
        from repro.tools.check_results import check_bench_file

        assert check_bench_file(self._write(tmp_path, self._complete())) == []

    def test_missing_section_is_named(self, tmp_path):
        from repro.tools.check_results import check_bench_file

        payload = self._complete()
        del payload["sweep"]
        failures = check_bench_file(self._write(tmp_path, payload))
        assert any("section 'sweep' is missing" in f for f in failures)

    def test_missing_key_is_named(self, tmp_path):
        from repro.tools.check_results import check_bench_file

        payload = self._complete()
        del payload["core"]["cycles_per_sec"]
        failures = check_bench_file(self._write(tmp_path, payload))
        assert any("section 'core' is missing key 'cycles_per_sec'" in f
                   for f in failures)

    def test_partial_write_is_not_a_keyerror(self, tmp_path):
        from repro.tools.check_results import check_bench_file

        path = tmp_path / "bench.json"
        path.write_text('{"core": {"cycles_per')     # torn write
        failures = check_bench_file(path)            # must not raise
        assert failures and "not valid JSON" in failures[0]

    def test_experiment_rows_need_status(self, tmp_path):
        from repro.tools.check_results import check_bench_file

        payload = self._complete()
        payload["experiments"]["e/2"] = {"duration_s": 1.0}
        failures = check_bench_file(self._write(tmp_path, payload))
        assert any("row 'e/2' has no 'status'" in f for f in failures)

    def test_missing_file_is_reported(self, tmp_path):
        from repro.tools.check_results import check_bench_file

        failures = check_bench_file(tmp_path / "nope.json")
        assert failures and "does not exist" in failures[0]


class TestCheckFuzzFile:
    def _write(self, tmp_path, payload):
        import json

        path = tmp_path / "fuzz.json"
        path.write_text(json.dumps(payload))
        return path

    def _clean(self):
        return {"schema": 1,
                "config": {"seeds": 2, "modes": ["isa"], "quick": True,
                           "mutation": None, "chaos_rate": 0.0},
                "totals": {"jobs": 2, "completed": 2, "ok": 2,
                           "diverged": 0, "harness_failures": 0},
                "complete": True,
                "divergences": []}

    def test_clean_report_passes(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        assert check_fuzz_file(self._write(tmp_path, self._clean())) == []

    def test_missing_file_is_reported(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        failures = check_fuzz_file(tmp_path / "nope.json")
        assert failures and "does not exist" in failures[0]

    def test_missing_totals_key_is_named(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        payload = self._clean()
        del payload["totals"]["diverged"]
        failures = check_fuzz_file(self._write(tmp_path, payload))
        assert any("missing key 'diverged'" in f for f in failures)

    def test_incomplete_campaign_fails_with_resume_hint(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        payload = self._clean()
        payload["complete"] = False
        payload["totals"]["completed"] = 1
        failures = check_fuzz_file(self._write(tmp_path, payload))
        assert any("incomplete" in f and "resume" in f for f in failures)

    def test_unexplained_divergence_fails(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        payload = self._clean()
        payload["totals"]["diverged"] = 1
        payload["totals"]["ok"] = 1
        failures = check_fuzz_file(self._write(tmp_path, payload))
        assert any("unexplained model divergence" in f for f in failures)

    def test_mutation_divergence_is_explained(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        payload = self._clean()
        payload["config"]["mutation"] = "sra-logical"
        payload["totals"]["diverged"] = 1
        payload["totals"]["ok"] = 1
        assert check_fuzz_file(self._write(tmp_path, payload)) == []

    def test_harness_failures_fail(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        payload = self._clean()
        payload["totals"]["harness_failures"] = 1
        failures = check_fuzz_file(self._write(tmp_path, payload))
        assert any("failed in the harness" in f for f in failures)

    def test_missed_mutation_fails_the_self_test(self, tmp_path):
        from repro.tools.check_results import check_fuzz_file

        payload = self._clean()
        payload["config"]["mutation"] = "sra-logical"
        failures = check_fuzz_file(self._write(tmp_path, payload))
        assert any("failed its self-test" in f for f in failures)
