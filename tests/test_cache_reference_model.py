"""Property test: the Icache against an independent reference model.

The reference is a deliberately naive, obviously-correct implementation of
a sub-block set-associative cache with true-LRU replacement and k-word
fetch-back, written from the definition.  Hypothesis drives both models
with the same address streams and demands identical hit/miss sequences.
"""

from typing import Dict, List, Optional

from hypothesis import given, settings, strategies as st

from repro.core.config import IcacheConfig
from repro.icache import Icache


class ReferenceCache:
    """Textbook sub-block LRU cache (slow, simple, obviously right)."""

    def __init__(self, sets: int, ways: int, block_words: int,
                 fetchback: int):
        self.sets = sets
        self.ways = ways
        self.block_words = block_words
        self.fetchback = fetchback
        # per set: list of (tag, {word_index}) in LRU order (front = LRU)
        self.storage: List[List] = [[] for _ in range(sets)]

    def _locate(self, address: int):
        block = address // self.block_words
        return block % self.sets, block // self.sets, \
            address % self.block_words

    def _find(self, index: int, tag: int) -> Optional[list]:
        for entry in self.storage[index]:
            if entry[0] == tag:
                return entry
        return None

    def access(self, address: int) -> bool:
        index, tag, word = self._locate(address)
        entry = self._find(index, tag)
        hit = entry is not None and word in entry[1]
        if hit:
            self.storage[index].remove(entry)
            self.storage[index].append(entry)   # most recently used
        else:
            for fill in range(self.fetchback):
                self._fill(address + fill)
        return hit

    def _fill(self, address: int) -> None:
        index, tag, word = self._locate(address)
        entry = self._find(index, tag)
        if entry is None:
            if len(self.storage[index]) >= self.ways:
                self.storage[index].pop(0)      # evict LRU
            entry = [tag, set()]
            self.storage[index].append(entry)
        else:
            self.storage[index].remove(entry)
            self.storage[index].append(entry)   # allocation touches LRU
        entry[1].add(word)


geometries = st.sampled_from([
    (4, 8, 16, 2),   # the paper's organization
    (4, 8, 16, 1),
    (2, 4, 8, 2),
    (8, 2, 4, 2),
    (1, 4, 4, 2),    # fully associative
    (16, 1, 2, 2),   # direct mapped
    (4, 8, 16, 4),
])


@settings(max_examples=60, deadline=None)
@given(geometry=geometries,
       addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=400))
def test_icache_matches_reference_model(geometry, addresses):
    sets, ways, block, fetchback = geometry
    cache = Icache(IcacheConfig(sets=sets, ways=ways, block_words=block,
                                fetchback=fetchback, replacement="lru"))
    reference = ReferenceCache(sets, ways, block, fetchback)
    for address in addresses:
        expected = reference.access(address)
        actual = cache.fetch(address).hit
        assert actual == expected, (
            f"divergence at address {address} "
            f"(geometry {geometry}): cache={actual} reference={expected}")


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(st.integers(0, 1023), min_size=1, max_size=300))
def test_icache_stats_invariants(addresses):
    cache = Icache(IcacheConfig())
    for address in addresses:
        cache.fetch(address)
    stats = cache.stats
    assert stats.accesses == len(addresses)
    assert stats.hits + stats.misses == stats.accesses
    # the double fetch-back never fills more than 2 words per miss
    assert stats.words_filled <= 2 * stats.misses
    assert stats.tag_allocations <= stats.words_filled


class SimpleDirectEcache:
    """Reference for the external cache: a direct-mapped tag dict."""

    def __init__(self, lines: int, line_words: int):
        self.lines = lines
        self.line_words = line_words
        self.tags: Dict[int, int] = {}

    def access(self, address: int) -> bool:
        line = address // self.line_words
        index = line % self.lines
        tag = line // self.lines
        hit = self.tags.get(index) == tag
        self.tags[index] = tag
        return hit


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(st.integers(0, 8191), min_size=1, max_size=400))
def test_ecache_matches_reference_model(addresses):
    from repro.core.config import EcacheConfig
    from repro.ecache import Ecache

    config = EcacheConfig(size_words=512, line_words=4, miss_penalty=8)
    cache = Ecache(config)
    reference = SimpleDirectEcache(lines=512 // 4, line_words=4)
    for address in addresses:
        expected = reference.access(address)
        actual = cache.read(address, True) == 0
        assert actual == expected
