"""Tests for the fault-injection subsystem (:mod:`repro.faults`).

Covers the four layers of the tentpole:

* the :class:`FaultPlan` DSL -- deterministic across processes, events
  inside the warmup/horizon window, exception events spaced;
* the injection primitives on the machine models -- Icache valid/tag
  corruption preserves the structural invariants the cache relies on,
  forced Ecache misses and coprocessor busy stalls are consumed;
* the differential invariant checker -- fixed-seed campaign verdicts are
  pinned as a regression surface, and **negative** tests prove the
  checker actually catches divergence, squashed commits, and
  non-termination when a fault escapes the model;
* the campaign driver -- aggregation, report writing, exit semantics.
"""

import json
import random

import pytest

from repro.core import Machine, MachineConfig
from repro.core.config import IcacheConfig
from repro.faults import build_plan, run_differential
from repro.faults.inject import FaultInjector
from repro.faults.invariants import (WritebackAudit, differential_for_seed,
                                     golden_run)
from repro.faults.plan import (EVENT_KINDS, FAULT_CLASSES, WARMUP_CYCLES,
                               FaultEvent, FaultPlan)
from repro.faults.workloads import CLASS_WORKLOADS, fault_program
from repro.icache.cache import Icache, contents_invariants

#: golden cycle counts of the fault workloads -- a change here means the
#: workloads (and every pinned verdict below) shifted
GOLDEN_CYCLES = {"sum": 407, "mix": 596, "coproc": 171}

#: pinned verdicts for the quick campaign grid (seed -> rotating class):
#: (status, exceptions_taken).  These are the paper's guarantees holding
#: under fault: every class is absorbed, injected exceptions are taken.
PINNED_VERDICTS = {
    0: ("icache-valid", "absorbed", 0),
    1: ("icache-tag", "absorbed", 0),
    2: ("ecache-storm", "absorbed", 0),
    3: ("parity-nmi", "absorbed", 1),
    4: ("spurious-irq", "absorbed", 1),
    5: ("coproc-busy", "absorbed", 0),
    6: ("overflow-storm", "absorbed", 1),
    7: ("mixed", "absorbed", 1),
}


# ------------------------------------------------------------- plan DSL
class TestFaultPlan:
    def test_plans_are_deterministic(self):
        for fault_class in FAULT_CLASSES:
            first = build_plan(3, fault_class, horizon=500)
            again = build_plan(3, fault_class, horizon=500)
            assert first == again
        assert (build_plan(3, "mixed", horizon=500)
                != build_plan(4, "mixed", horizon=500))

    def test_events_land_inside_the_window(self):
        for seed in range(16):
            plan = build_plan(seed, "mixed", horizon=400)
            assert plan.events, "a plan must schedule at least one event"
            for event in plan.events:
                assert event.cycle >= WARMUP_CYCLES
                assert event.kind in EVENT_KINDS

    def test_exception_events_are_spaced(self):
        exception_kinds = {"parity-nmi", "spurious-irq", "overflow"}
        for seed in range(32):
            plan = build_plan(seed, "mixed", horizon=2000)
            cycles = sorted(e.cycle for e in plan.events
                            if e.kind in exception_kinds)
            for a, b in zip(cycles, cycles[1:]):
                assert b - a >= 64

    def test_budget_scales_with_intensity(self):
        light = FaultPlan(0, "ecache-storm", 400, (
            FaultEvent(100, "ecache-forced-miss", (("count", 1),)),))
        heavy = FaultPlan(0, "ecache-storm", 400, (
            FaultEvent(100, "ecache-forced-miss", (("count", 12),)),))
        assert heavy.cycle_budget() > light.cycle_budget()

    def test_rejects_unknown_class_and_tiny_horizon(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            build_plan(0, "cosmic-ray", horizon=400)
        with pytest.raises(ValueError, match="warmup"):
            build_plan(0, "mixed", horizon=WARMUP_CYCLES)


# ------------------------------------------------- injection primitives
class TestInjectionPrimitives:
    def _warm_cache(self):
        cache = Icache(IcacheConfig())
        for address in range(512):
            cache.fetch(address)
        return cache

    def test_valid_flips_preserve_invariants(self):
        cache = self._warm_cache()
        rng = random.Random(7)
        flipped = cache.inject_valid_flips(rng, count=8)
        assert flipped > 0
        assert all(contents_invariants(cache).values())

    def test_tag_corruption_preserves_invariants(self):
        for seed in range(8):
            cache = self._warm_cache()
            corrupted = cache.inject_tag_corruption(random.Random(seed),
                                                    count=3)
            assert corrupted > 0
            assert all(contents_invariants(cache).values())

    def test_injector_fires_each_event_once(self):
        plan = build_plan(1, "ecache-storm", horizon=400)
        machine = Machine(MachineConfig())
        machine.load_program(fault_program("sum"))
        machine.set_fault_hook(FaultInjector(plan))
        machine.run(50_000)
        assert machine.halted
        summary = machine.pipeline.fault_hook.summary()
        assert summary["events_applied"] == summary["events_planned"]
        assert machine.ecache.fault_forced_events > 0
        # forced misses are consumed, never left armed past the run
        assert machine.ecache.fault_forced_misses == 0

    def test_fault_hook_is_off_by_default(self):
        machine = Machine(MachineConfig())
        assert machine.pipeline.fault_hook is None


# --------------------------------------------- differential checker: +
class TestDifferentialChecker:
    def test_golden_cycle_counts_are_stable(self):
        for workload, cycles in GOLDEN_CYCLES.items():
            assert golden_run(workload).stats.cycles == cycles

    @pytest.mark.parametrize("seed", sorted(PINNED_VERDICTS))
    def test_pinned_campaign_verdicts(self, seed):
        fault_class, status, exceptions = PINNED_VERDICTS[seed]
        assert fault_class == FAULT_CLASSES[seed % len(FAULT_CLASSES)]
        report = differential_for_seed(seed, fault_class, max_events=3)
        assert report.status == status, report.violations
        assert report.exceptions_taken == exceptions
        assert report.handler_count == exceptions
        assert 0 <= report.faulted_cycles - report.golden_cycles
        assert (report.faulted_cycles
                <= report.golden_cycles + report.cycle_budget)

    def test_every_class_has_a_workload(self):
        assert set(CLASS_WORKLOADS) == set(FAULT_CLASSES)
        for workload in set(CLASS_WORKLOADS.values()):
            assert workload in GOLDEN_CYCLES


# --------------------------------------------- differential checker: -
class _Saboteur(FaultInjector):
    """An injector whose fault escapes the fault model: it corrupts
    architectural state directly.  The checker must not absorb it."""

    def __init__(self, plan, corrupt_at):
        super().__init__(plan)
        self.corrupt_at = corrupt_at
        self._done = False

    def on_cycle(self, pipeline):
        super().on_cycle(pipeline)
        # >= not ==: the bulk-stall fast path may jump the cycle counter
        if not self._done and pipeline.stats.cycles >= self.corrupt_at:
            self._done = True
            pipeline.regs.write(20, 0xBAD)


class _Wedger(FaultInjector):
    """An injector that wedges the pipeline: the late-miss/termination
    bound must flag the run instead of spinning forever."""

    def on_cycle(self, pipeline):
        super().on_cycle(pipeline)
        pipeline._stall_left = max(pipeline._stall_left, 4)


class TestCheckerCatchesViolations:
    def test_state_divergence_is_caught(self, monkeypatch):
        monkeypatch.setattr(
            "repro.faults.invariants.FaultInjector",
            lambda plan: _Saboteur(plan, corrupt_at=300))
        plan = build_plan(0, "icache-valid", horizon=407)
        report = run_differential(plan, "sum")
        assert report.status == "violated"
        kinds = {v["kind"] for v in report.violations}
        assert "state-divergence" in kinds
        assert any("r20" in v["detail"] for v in report.violations)

    def test_non_termination_is_caught(self, monkeypatch):
        monkeypatch.setattr("repro.faults.invariants.FaultInjector",
                            _Wedger)
        plan = build_plan(0, "icache-valid", horizon=407)
        report = run_differential(plan, "sum")
        assert report.status == "violated"
        assert {v["kind"] for v in report.violations} == {"no-termination"}

    def test_squashed_commit_is_caught(self):
        # Audit-level negative: a writeback implementation that lets a
        # squashed instruction commit must be flagged.
        from repro.core.pipeline import Flight
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import Funct, Opcode

        machine = Machine(MachineConfig())
        pipeline = machine.pipeline
        audit = WritebackAudit(pipeline)
        flight = Flight(0x40, Instruction(Opcode.COMPUTE, funct=Funct.ADD))
        flight.squashed = True
        flight.dest = 20
        flight.result = 0xBEEF

        def leaky_writeback(fl):
            if fl is not None and fl.dest:
                pipeline.regs.write(fl.dest, fl.result)

        audit._original = leaky_writeback
        pipeline._writeback(flight)
        assert audit.violations == [
            {"pc": 0x40, "register": 20, "before": 0, "after": 0xBEEF}]

    def test_honest_writeback_passes_audit(self):
        machine = Machine(MachineConfig())
        machine.load_program(fault_program("sum"))
        audit = WritebackAudit(machine.pipeline)
        machine.run(50_000)
        assert machine.halted
        assert audit.violations == []


# ------------------------------------------------------ campaign driver
class TestCampaign:
    def test_serial_campaign_report(self, tmp_path):
        from repro.faults.campaign import run_campaign

        output = tmp_path / "campaign.json"
        payload = run_campaign(seeds=4, quick=True, parallel=False,
                               output=output)
        assert payload["summary"]["runs"] == 4
        assert payload["summary"]["unhandled_jobs"] == 0
        assert payload["summary"]["violated"] == 0
        on_disk = json.loads(output.read_text())
        assert on_disk["schema"] == 1
        assert set(on_disk["classes"]) == set(FAULT_CLASSES[:4])
        for row in on_disk["harness"].values():
            assert row["status"] == "ok"

    def test_campaign_jobs_grid(self):
        from repro.faults.campaign import campaign_jobs
        from repro.harness.runner import resolve

        jobs = campaign_jobs(16, quick=True)
        ids = [j.id for j in jobs]
        assert len(set(ids)) == len(ids) == 16
        classes = {j.params["fault_class"] for j in jobs}
        assert classes == set(FAULT_CLASSES)
        for job in jobs:
            assert callable(resolve(job.fn))
            assert job.params["max_events"] == 3
