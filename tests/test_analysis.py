"""Tests for the analysis/experiment machinery (on small subsets, so the
full-suite benchmarks stay in benchmarks/)."""

import pytest

from repro.analysis.area import (
    fsm_area_fraction,
    icache_fraction,
    icache_size_tradeoff,
    transistor_budget,
)
from repro.analysis.branch_schemes import evaluate_scheme, table1_rows
from repro.analysis.common import (
    conditional_plans_by_index,
    profiled_result,
    run_measured,
    workload_branch_counts,
)
from repro.analysis.cpi import measure, scaled_memory_config
from repro.analysis.prediction import (
    branch_cache,
    static_btfn,
    static_profile,
)
from repro.analysis.quick_compare import classify_branches
from repro.analysis.reporting import format_table
from repro.analysis.vax import VaxEstimator, compare_workload
from repro.coproc.schemes import evaluate_schemes, mix_from_machine, schemes
from repro.lang.parser import parse_program
from repro.reorg.delay_slots import MIPSX_SCHEME, BranchScheme
from repro.traces.capture import BranchEvent
from repro.workloads import get


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("xy", 3)], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        assert all(len(line) == len(lines[2]) for line in lines[2:4])


class TestCommon:
    def test_profiled_result_is_cached(self):
        a = profiled_result("fib")
        b = profiled_result("fib")
        assert a is b

    def test_branch_counts_consistent_with_plans(self):
        counts = dict(workload_branch_counts("fib"))
        plans = conditional_plans_by_index(profiled_result("fib"))
        # branch indices count every branch-format op (including the
        # always-taken `br` pseudo-jumps); only the truly conditional ones
        # carry plans, and every plan's index must exist in the profile
        assert set(plans) <= set(counts)
        assert plans, "fib has at least one conditional branch"
        for plan in plans.values():
            assert plan.conditional

    def test_run_measured_reuses_profiled_build(self):
        machine = run_measured("fib")
        assert machine.halted
        assert machine.console.values == [610]


class TestBranchSchemes:
    def test_single_workload_evaluation(self):
        evaluation = evaluate_scheme(MIPSX_SCHEME, ["fib"])
        assert evaluation.executions > 0
        assert 1.0 <= evaluation.cycles_per_branch <= 3.0

    def test_rows_cover_all_six_schemes(self):
        rows = table1_rows(["fib"])
        assert len(rows) == 6
        names = [name for name, _ in rows]
        assert "2-slot squash optional" in names

    def test_no_squash_never_cheaper_than_optional(self):
        rows = dict(table1_rows(["sieve", "fib"]))
        assert rows["2-slot squash optional"] <= rows["2-slot no squash"]
        assert rows["1-slot squash optional"] <= rows["1-slot no squash"]


class TestPrediction:
    EVENTS = [
        BranchEvent(pc=10, taken=True, target=5),    # backward taken
        BranchEvent(pc=10, taken=True, target=5),
        BranchEvent(pc=10, taken=False, target=5),
        BranchEvent(pc=20, taken=False, target=30),  # forward not taken
        BranchEvent(pc=20, taken=True, target=30),
    ]

    def test_btfn(self):
        result = static_btfn(self.EVENTS)
        # wrong on: pc10 third (backward predicted taken, was not) and
        # pc20 second (forward predicted not-taken, was taken)
        assert result.mispredictions == 2

    def test_profile(self):
        result = static_profile(self.EVENTS)
        # majority: pc10 taken (wrong once), pc20 tie -> taken (wrong once)
        assert result.mispredictions == 2

    def test_branch_cache_capacity(self):
        events = []
        for round_ in range(3):
            for pc in range(40):
                events.append(BranchEvent(pc=pc, taken=True, target=0))
        big = branch_cache(events, entries=64)
        small = branch_cache(events, entries=4)
        assert big.mispredictions < small.mispredictions
        # with capacity, only the cold first round mispredicts
        assert big.mispredictions == 40

    def test_not_taken_branch_evicted(self):
        events = [BranchEvent(1, True, 0), BranchEvent(1, False, 0),
                  BranchEvent(1, False, 0)]
        result = branch_cache(events, entries=8)
        # miss, then hit-but-wrong, then correctly predicted not-taken
        assert result.mispredictions == 2


class TestQuickCompare:
    def test_classification_totals(self):
        stats = classify_branches("fib")
        classified = (stats.equality + stats.sign_test
                      + stats.near_sign_test + stats.ordered_reg)
        assert classified == stats.total
        assert 0.0 <= stats.quick_fraction <= 1.0
        assert stats.quick_fraction_strict <= stats.quick_fraction


class TestCpi:
    def test_measure_decomposition(self):
        breakdown = measure("fib", scaled_memory_config())
        assert breakdown.cpi == pytest.approx(
            breakdown.base_cpi + breakdown.memory_overhead_cpi)
        assert breakdown.sustained_mips == pytest.approx(
            20.0 / breakdown.cpi)
        assert breakdown.peak_bandwidth_mwords == 40.0

    def test_scaled_config_shape(self):
        config = scaled_memory_config(icache_words=48, ecache_words=128)
        assert config.icache.total_words == 48
        assert config.ecache.size_words == 128


class TestVax:
    def test_estimator_is_a_correct_interpreter(self):
        """The VAX model re-executes SPL and must compute the same
        answers (console trail) as the compiled code."""
        workload = get("sieve")
        tree = parse_program(workload.source)
        measurement = VaxEstimator(tree).run()
        assert measurement.console == [303]
        assert measurement.instructions > 0
        assert measurement.cycles > measurement.instructions  # multi-cycle

    def test_comparison_shape(self):
        comparison = compare_workload("fib")
        assert comparison.path_length_ratio > 1.0
        assert comparison.speedup > 3.0
        assert comparison.vax.console == [610]

    def test_fp_workload_rejected(self):
        with pytest.raises(ValueError):
            compare_workload("fp_dot")


class TestArea:
    def test_budget_matches_paper_facts(self):
        budget = transistor_budget()
        assert 120_000 < budget.total < 190_000
        assert 0.6 < icache_fraction(budget) < 0.72
        assert fsm_area_fraction(budget) < 0.002

    def test_budget_scales_with_cache(self):
        from repro.core import MachineConfig

        small = MachineConfig()
        small.icache.sets = 2
        assert transistor_budget(small).total < transistor_budget().total

    def test_size_tradeoff_fits_flag(self):
        trace = list(range(2000)) * 3
        points = icache_size_tradeoff(trace, sizes=(256, 512, 1024))
        by_words = {p.words: p for p in points}
        assert by_words[512].fits_paper_die
        assert not by_words[1024].fits_paper_die


class TestCoprocSchemes:
    def test_four_schemes(self):
        assert len(schemes()) == 4
        names = [s.name for s in schemes()]
        assert "address-line interface (final)" in names

    def test_final_scheme_is_reference(self):
        machine = run_measured("fp_dot")
        mix = mix_from_machine("fp_dot", machine)
        outcomes = evaluate_schemes(mix)
        final = [o for o in outcomes
                 if o.scheme.name.startswith("address-line")][0]
        assert final.relative_performance == pytest.approx(1.0)
        non_cached = [o for o in outcomes if not o.scheme.cacheable][0]
        assert non_cached.relative_performance < final.relative_performance

    def test_overheads_scale_with_fp_intensity(self):
        machine = run_measured("fp_dot")
        mix = mix_from_machine("fp_dot", machine)
        lighter = type(mix)(name="lighter", instructions=mix.instructions,
                            base_cycles=mix.base_cycles,
                            coproc_ops=mix.coproc_ops // 4,
                            fp_memory_ops=mix.fp_memory_ops // 4)
        heavy = evaluate_schemes(mix)[2]      # non-cached
        light = evaluate_schemes(lighter)[2]
        assert heavy.overhead_fraction > light.overhead_fraction
