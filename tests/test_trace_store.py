"""Tests for the binary trace store and the array-backed collector.

Covers the capture-once/replay-many substrate: ``.npz`` round-trips,
content-addressed key invalidation, the collector's memory accounting and
spill-to-disk path, and the 32-bit masking on bulk memory image loads.
"""

import numpy as np
import pytest

import repro.core  # noqa: F401  -- resolves the core<->ecache import cycle
from repro.ecache.memory import Memory, MemoryFault
from repro.traces.capture import TraceCollector
from repro.traces.store import CapturedTrace, TraceStore, descriptor_key


class TestCapturedTrace:
    def test_npz_round_trip(self, tmp_path):
        trace = CapturedTrace(
            arrays={"addresses": np.arange(100, dtype=np.int64),
                    "is_store": np.array([0, 1, 1], dtype=np.int8)},
            meta={"kind": "test", "length": 100, "nested": {"a": [1, 2]}})
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = CapturedTrace.load(path)
        assert loaded.meta == trace.meta
        assert set(loaded.arrays) == {"addresses", "is_store"}
        for name in trace.arrays:
            np.testing.assert_array_equal(loaded[name], trace[name])
            assert loaded[name].dtype == trace[name].dtype

    def test_save_is_atomic_on_failure(self, tmp_path):
        # nothing but the final .npz may remain after a successful save
        trace = CapturedTrace(arrays={"a": np.zeros(4, dtype=np.int64)})
        path = tmp_path / "sub" / "trace.npz"
        trace.save(path)
        assert [p.name for p in path.parent.iterdir()] == ["trace.npz"]

    def test_nbytes_sums_arrays(self):
        trace = CapturedTrace(
            arrays={"a": np.zeros(10, dtype=np.int64),
                    "b": np.zeros(10, dtype=np.int8)})
        assert trace.nbytes() == 10 * 8 + 10


class TestDescriptorKey:
    def test_key_is_order_independent(self):
        assert (descriptor_key({"a": 1, "b": "x"})
                == descriptor_key({"b": "x", "a": 1}))

    def test_key_changes_with_any_field(self):
        base = {"kind": "synthetic-fetch", "length": 1000, "seed": 7}
        key = descriptor_key(base)
        for field, value in (("length", 1001), ("seed", 8),
                             ("kind", "synthetic-data")):
            assert descriptor_key(dict(base, **{field: value})) != key

    def test_key_is_stable_and_filename_safe(self):
        key = descriptor_key({"kind": "x"})
        assert key == descriptor_key({"kind": "x"})
        assert len(key) == 24
        assert all(c in "0123456789abcdef" for c in key)


class TestTraceStore:
    def _descriptor(self):
        return {"kind": "unit-test", "n": 5}

    def _capture(self, calls):
        def capture():
            calls.append(1)
            return CapturedTrace(arrays={"a": np.arange(5, dtype=np.int64)},
                                 meta={"kind": "unit-test"})
        return capture

    def test_miss_captures_then_hit_skips(self, tmp_path):
        store = TraceStore(root=tmp_path)
        calls = []
        trace, elapsed, hit = store.get_or_capture(
            self._descriptor(), self._capture(calls))
        assert not hit and calls == [1] and elapsed >= 0.0
        trace2, elapsed2, hit2 = store.get_or_capture(
            self._descriptor(), self._capture(calls))
        assert hit2 and calls == [1] and elapsed2 == 0.0
        np.testing.assert_array_equal(trace["a"], trace2["a"])

    def test_reuse_false_recaptures(self, tmp_path):
        store = TraceStore(root=tmp_path)
        calls = []
        store.get_or_capture(self._descriptor(), self._capture(calls))
        store.get_or_capture(self._descriptor(), self._capture(calls),
                             reuse=False)
        assert calls == [1, 1]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = TraceStore(root=tmp_path)
        calls = []
        store.get_or_capture(self._descriptor(), self._capture(calls))
        store.path_for(self._descriptor()).write_bytes(b"not an npz")
        assert store.get(self._descriptor()) is None
        _, _, hit = store.get_or_capture(self._descriptor(),
                                         self._capture(calls))
        assert not hit and calls == [1, 1]
        # the re-capture repaired the entry
        assert store.get(self._descriptor()) is not None

    def test_different_descriptors_do_not_collide(self, tmp_path):
        store = TraceStore(root=tmp_path)
        store.put({"n": 1},
                  CapturedTrace(arrays={"a": np.array([1], dtype=np.int64)}))
        store.put({"n": 2},
                  CapturedTrace(arrays={"a": np.array([2], dtype=np.int64)}))
        assert store.get({"n": 1})["a"][0] == 1
        assert store.get({"n": 2})["a"][0] == 2


class TestTraceStoreIntegrity:
    def _descriptor(self):
        return {"kind": "integrity-test", "n": 3}

    def _put_one(self, store):
        store.put(self._descriptor(),
                  CapturedTrace(arrays={"a": np.arange(3, dtype=np.int64)}))

    def test_put_writes_sha256_sidecar(self, tmp_path):
        import hashlib

        store = TraceStore(root=tmp_path)
        self._put_one(store)
        payload = store.path_for(self._descriptor()).read_bytes()
        sidecar = store.digest_path_for(self._descriptor())
        assert sidecar.exists()
        assert sidecar.read_text().strip() == (
            hashlib.sha256(payload).hexdigest())

    def test_truncated_payload_is_a_counted_miss(self, tmp_path, caplog):
        store = TraceStore(root=tmp_path)
        self._put_one(store)
        path = store.path_for(self._descriptor())
        path.write_bytes(path.read_bytes()[:-16])  # truncate
        with caplog.at_level("WARNING", logger="repro.traces.store"):
            assert store.get(self._descriptor()) is None
        assert store.integrity_failures == 1
        assert store.misses == 1
        assert any("sha256 mismatch" in r.message for r in caplog.records)

    def test_missing_sidecar_is_a_counted_miss(self, tmp_path, caplog):
        store = TraceStore(root=tmp_path)
        self._put_one(store)
        store.digest_path_for(self._descriptor()).unlink()
        with caplog.at_level("WARNING", logger="repro.traces.store"):
            assert store.get(self._descriptor()) is None
        assert store.integrity_failures == 1
        assert any("no sha256 sidecar" in r.message for r in caplog.records)

    def test_counters_track_hits_and_misses(self, tmp_path):
        store = TraceStore(root=tmp_path)
        assert store.get(self._descriptor()) is None   # cold miss
        self._put_one(store)
        assert store.get(self._descriptor()) is not None
        assert (store.hits, store.misses, store.integrity_failures) \
            == (1, 1, 0)

    def test_recapture_repairs_a_corrupt_entry(self, tmp_path):
        store = TraceStore(root=tmp_path)
        self._put_one(store)
        store.path_for(self._descriptor()).write_bytes(b"garbage")
        trace, _, hit = store.get_or_capture(
            self._descriptor(),
            lambda: CapturedTrace(
                arrays={"a": np.arange(3, dtype=np.int64)}))
        assert not hit
        assert store.get(self._descriptor()) is not None

    def test_put_releases_its_lockfile(self, tmp_path):
        store = TraceStore(root=tmp_path)
        self._put_one(store)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert not any(name.endswith(".lock") for name in leftovers)
        assert not any(".tmp" in name for name in leftovers)

    def test_stale_lock_is_broken(self, tmp_path):
        import os
        import time

        store = TraceStore(root=tmp_path)
        lock = store._lock_path(store.path_for(self._descriptor()))
        lock.write_text("12345")
        old = time.time() - store.LOCK_STALE_SECONDS - 10
        os.utime(lock, (old, old))
        self._put_one(store)                     # must not time out
        assert store.get(self._descriptor()) is not None
        assert not lock.exists()

    def test_held_lock_times_out(self, tmp_path):
        import os

        store = TraceStore(root=tmp_path)
        store.LOCK_TIMEOUT_SECONDS = 0.2
        lock = store._lock_path(store.path_for(self._descriptor()))
        # our own (live) pid: genuinely held, not breakable as dead
        lock.write_text(str(os.getpid()))
        with pytest.raises(TimeoutError, match="could not acquire"):
            self._put_one(store)

    def test_dead_holder_lock_is_broken_immediately(self, tmp_path):
        import multiprocessing
        import time

        worker = multiprocessing.Process(target=lambda: None)
        worker.start()
        worker.join()                            # pid now provably dead
        store = TraceStore(root=tmp_path)
        store.LOCK_TIMEOUT_SECONDS = 30.0
        lock = store._lock_path(store.path_for(self._descriptor()))
        lock.write_text(str(worker.pid))         # fresh mtime, dead pid
        start = time.monotonic()
        self._put_one(store)                     # must not wait for age-out
        assert time.monotonic() - start < store.LOCK_STALE_SECONDS / 2
        assert store.get(self._descriptor()) is not None
        assert not lock.exists()

    def test_kill9_mid_put_leaves_recoverable_store(self, tmp_path):
        # SIGKILL a writer between the payload write and the rename: the
        # next producer must break the dead lock, rewrite the entry, and
        # leave no stale debris behind.
        import multiprocessing
        import os
        import signal

        descriptor = self._descriptor()

        def doomed_put():
            store = TraceStore(root=tmp_path)
            original = os.replace

            def die(*args, **kwargs):
                os.kill(os.getpid(), signal.SIGKILL)
                return original(*args, **kwargs)  # pragma: no cover

            os.replace = die
            store.put(descriptor, CapturedTrace(
                arrays={"a": np.arange(3, dtype=np.int64)}))

        worker = multiprocessing.Process(target=doomed_put)
        worker.start()
        worker.join()
        assert worker.exitcode == -signal.SIGKILL
        store = TraceStore(root=tmp_path)
        lock = store._lock_path(store.path_for(descriptor))
        assert lock.exists()                     # the crash orphaned it
        assert store.get(descriptor) is None     # no entry, not garbage
        self._put_one(store)                     # dead lock broken, rewritten
        assert store.get(descriptor) is not None
        assert not lock.exists()
        store.TMP_STALE_SECONDS = 0.0
        assert store.get({"kind": "other"}) is None  # miss sweeps debris
        assert not any(".tmp" in p.name for p in tmp_path.iterdir())

    def test_orphaned_tmp_is_aged_out_on_miss(self, tmp_path):
        import os
        import time

        store = TraceStore(root=tmp_path)
        old_tmp = tmp_path / "dead-writer.npz.tmp"
        old_tmp.write_bytes(b"partial")
        ancient = time.time() - store.TMP_STALE_SECONDS - 10
        os.utime(old_tmp, (ancient, ancient))
        fresh_tmp = tmp_path / "live-writer.npz.tmp"
        fresh_tmp.write_bytes(b"in flight")
        assert store.get(self._descriptor()) is None   # a miss sweeps
        assert not old_tmp.exists()
        assert fresh_tmp.exists()                # live writer untouched


class TestCollectorMemory:
    def _feed(self, collector, events):
        for i in range(events):
            collector.on_fetch(i)
            collector.on_data(i, i * 3, i % 2 == 0)
            collector.on_ecache(i % 3, i * 3)

    def test_approx_bytes_grows_with_capture(self):
        collector = TraceCollector(ecache=True)
        before = collector.approx_bytes()
        self._feed(collector, 1000)
        after = collector.approx_bytes()
        # 8B fetch + 8B+1B data + 1B+8B ecache per event
        assert after - before == 1000 * 26

    def test_spill_keeps_streams_identical(self):
        reference = TraceCollector(ecache=True)
        spilling = TraceCollector(ecache=True, max_bytes=4096)
        events = 3 * 4096  # several spill checks past the cap
        self._feed(reference, events)
        self._feed(spilling, events)
        assert spilling._spill_dir is not None  # the cap actually tripped
        np.testing.assert_array_equal(spilling.fetch_array(),
                                      reference.fetch_array())
        for got, want in zip(spilling.data_arrays(),
                             reference.data_arrays()):
            np.testing.assert_array_equal(got, want)
        for got, want in zip(spilling.ecache_arrays(),
                             reference.ecache_arrays()):
            np.testing.assert_array_equal(got, want)
        # accounting still sees the spilled bytes
        assert spilling.approx_bytes() == reference.approx_bytes()

    def test_spilled_collector_keeps_appending(self):
        collector = TraceCollector(ecache=True, max_bytes=1024)
        self._feed(collector, 4096)
        self._feed(collector, 100)  # appends after a spill must not raise
        assert len(collector.fetch_array()) == 4196


class TestMemoryLoadImage:
    def test_values_are_masked_to_32_bits(self):
        memory = Memory(64)
        memory.load_image({0: 1 << 35 | 7, 1: -1 & 0xFFFFFFFFFF})
        assert memory.read(0) == 7
        assert memory.read(1) == 0xFFFFFFFF

    def test_out_of_range_image_loads_nothing(self):
        memory = Memory(16)
        with pytest.raises(MemoryFault):
            memory.load_image({0: 1, 99: 2})
        assert len(memory) == 0  # bounds-checked before any word lands
