"""Unit and property tests for instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, Opcode, Funct, SpecialReg, decode, encode
from repro.isa import instruction as I
from repro.isa.encoding import DecodeError, EncodingError
from repro.isa.opcodes import BRANCH_OPCODES, MEMORY_OPCODES, Format, format_of


class TestFieldPlacement:
    def test_opcode_in_top_bits(self):
        word = encode(I.ld(3, 4, 100))
        assert (word >> 27) == int(Opcode.LD)

    def test_src_fields_shared_across_formats(self):
        for instr in [I.ld(3, 4, 0), I.beq(4, 3, 0), I.add(9, 4, 3)]:
            word = encode(instr)
            assert (word >> 22) & 0x1F == 4
            assert (word >> 17) & 0x1F == 3

    def test_squash_bit_is_bit_zero(self):
        assert encode(I.beq(1, 2, 4, squash=True)) & 1 == 1
        assert encode(I.beq(1, 2, 4, squash=False)) & 1 == 0

    def test_nop_is_all_zero_fields(self):
        assert encode(I.nop()) == 0

    def test_zero_word_decodes_to_nop(self):
        assert decode(0).is_nop


class TestRoundTrips:
    CASES = [
        I.nop(),
        I.halt(),
        I.add(5, 6, 7),
        I.sub(1, 2, 3),
        I.and_(31, 30, 29),
        I.or_(1, 0, 2),
        I.xor(9, 9, 9),
        I.not_(4, 5),
        I.sll(3, 4, 31),
        I.srl(3, 4, 1),
        I.sra(3, 4, 16),
        I.rotl(3, 4, 7),
        I.mstep(8, 9, 10),
        I.dstep(8, 9, 10),
        I.movfrs(7, SpecialReg.PSW),
        I.movtos(SpecialReg.MD, 6),
        I.movfrs(1, SpecialReg.PC3),
        I.trap(),
        I.jpc(),
        I.jpcrs(),
        I.ld(1, 2, -65536),
        I.st(1, 2, 65535),
        I.ldf(15, 2, 44),
        I.stf(0, 31, -1),
        I.addi(10, 0, -32768),
        I.jspci(2, 0, 4096),
        I.cop(0, 0x1234),
        I.movtoc(5, 0, 0x29),
        I.movfrc(6, 0, 0x51),
        I.beq(1, 2, -4, squash=True),
        I.bne(1, 2, 4),
        I.blt(3, 4, 100, squash=True),
        I.ble(3, 4, -100),
        I.bgt(5, 6, 32767),
        I.bge(5, 6, -32768),
    ]

    @pytest.mark.parametrize("instr", CASES, ids=lambda i: str(i))
    def test_round_trip(self, instr):
        assert decode(encode(instr)) == instr


class TestRangeChecks:
    def test_memory_offset_overflow(self):
        with pytest.raises(EncodingError):
            encode(I.ld(1, 2, 1 << 16))

    def test_memory_offset_underflow(self):
        with pytest.raises(EncodingError):
            encode(I.ld(1, 2, -(1 << 16) - 1))

    def test_branch_disp_overflow(self):
        with pytest.raises(EncodingError):
            encode(I.beq(1, 2, 1 << 15))

    def test_undefined_opcode_raises(self):
        with pytest.raises(DecodeError):
            decode(31 << 27)

    def test_undefined_funct_raises(self):
        with pytest.raises(DecodeError):
            decode(0x7F << 5)  # COMPUTE with funct 127


class TestFormats:
    def test_format_partition(self):
        for opcode in Opcode:
            fmt = format_of(opcode)
            if opcode in BRANCH_OPCODES:
                assert fmt is Format.BRANCH
            elif opcode in MEMORY_OPCODES:
                assert fmt is Format.MEMORY
            else:
                assert fmt is Format.COMPUTE

    def test_branch_inverse_is_involution(self):
        from repro.isa.opcodes import BRANCH_INVERSE

        for opcode, inverse in BRANCH_INVERSE.items():
            assert BRANCH_INVERSE[inverse] == opcode


# ---------------------------------------------------------------- property
regs = st.integers(min_value=0, max_value=31)


@given(rb=regs, rd=regs, off=st.integers(-(1 << 16), (1 << 16) - 1))
def test_memory_format_roundtrip(rb, rd, off):
    instr = I.ld(rd, rb, off)
    assert decode(encode(instr)) == instr


@given(r1=regs, r2=regs, disp=st.integers(-(1 << 15), (1 << 15) - 1),
       squash=st.booleans(),
       opcode=st.sampled_from(sorted(BRANCH_OPCODES)))
def test_branch_format_roundtrip(r1, r2, disp, squash, opcode):
    instr = I.branch(opcode, r1, r2, disp, squash)
    assert decode(encode(instr)) == instr


@given(rd=regs, r1=regs, r2=regs,
       funct=st.sampled_from([Funct.ADD, Funct.SUB, Funct.AND, Funct.OR,
                              Funct.XOR, Funct.MSTEP, Funct.DSTEP]))
def test_compute_format_roundtrip(rd, r1, r2, funct):
    instr = Instruction(Opcode.COMPUTE, src1=r1, src2=r2, dst=rd, funct=funct)
    assert decode(encode(instr)) == instr


@given(word=st.integers(0, 0xFFFFFFFF))
def test_decode_never_crashes_or_reencodes_wrong(word):
    """Any word either fails loudly or round-trips exactly."""
    try:
        instr = decode(word)
    except DecodeError:
        return
    assert encode(instr) == word


class TestInstructionQueries:
    def test_writes_register_for_loads(self):
        assert I.ld(7, 1, 0).writes_register() == 7
        assert I.ld(0, 1, 0).writes_register() is None

    def test_store_writes_nothing(self):
        assert I.st(7, 1, 0).writes_register() is None

    def test_branch_reads_both_sources(self):
        assert set(I.beq(3, 4, 1).reads_registers()) == {3, 4}

    def test_shift_reads_one_source(self):
        assert I.sll(1, 2, 3).reads_registers() == (2,)

    def test_jspci_is_jump_and_writes_link(self):
        instr = I.jspci(2, 0, 100)
        assert instr.is_jump and not instr.is_branch
        assert instr.writes_register() == 2

    def test_movfrc_has_load_semantics(self):
        instr = I.movfrc(5, 0, 9)
        assert instr.writes_register() == 5
        assert instr.is_coprocessor

    def test_memory_access_classification(self):
        assert I.ld(1, 2, 0).is_memory_access
        assert I.stf(1, 2, 0).is_memory_access
        assert not I.cop(0, 9).is_memory_access
        assert not I.addi(1, 2, 3).is_memory_access

    def test_str_forms_are_parseable_mnemonics(self):
        assert str(I.nop()) == "nop"
        assert str(I.beq(0, 0, 4, squash=True)).startswith("beqsq")
        assert "ld" in str(I.ld(10, 1, 4))
