"""Tests for the code reorganizer: CFG construction, load padding,
delay-slot filling under every scheme, and semantic preservation against
the golden (naive-semantics) model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import parse
from repro.asm.unit import Op
from repro.core import Machine, perfect_memory_config
from repro.core.golden import GoldenSimulator
from repro.reorg import (
    MIPSX_SCHEME,
    TABLE1_SCHEMES,
    BranchScheme,
    SlotFill,
    build_cfg,
    profile_and_reorganize,
    reorganize,
    verify_unit,
)


def run_pipeline(unit, slots=2):
    config = perfect_memory_config()
    config.branch_delay_slots = slots
    machine = Machine(config)
    machine.load_program(unit.assemble())
    machine.run(2_000_000)
    assert machine.halted
    return machine


def run_naive(source):
    sim = GoldenSimulator()
    sim.load_program(parse(source).assemble())
    sim.run(2_000_000)
    return sim


def check_equivalence(source, scheme=MIPSX_SCHEME, regs=()):
    """Golden(naive) and pipeline(reorganized) must agree on final state.

    Console output is always compared; ``regs`` lists additional register
    numbers to compare.  Registers holding *addresses* (``la``/``ra``/sp)
    legitimately differ: reorganization moves code and data.
    """
    golden = run_naive(source)
    result = reorganize(parse(source), scheme)
    machine = run_pipeline(result.unit, slots=scheme.slots)
    for register in regs:
        assert machine.regs[register] == golden.regs[register], (
            f"r{register} differs: pipeline={machine.regs[register]:#x} "
            f"golden={golden.regs[register]:#x}")
    assert machine.console.values == golden.console.values
    return result, machine


class TestCfg:
    def test_blocks_split_at_labels_and_branches(self):
        unit = parse(
            """
            _start:
                li t0, 1
                beq t0, r0, skip
                li t1, 2
            skip:
                halt
            """
        )
        cfg = build_cfg(unit)
        assert len(cfg.blocks) == 3
        assert cfg.by_label["_start"] is cfg.blocks[0]
        assert cfg.by_label["skip"] is cfg.blocks[2]

    def test_terminator_detection(self):
        cfg = build_cfg(parse("a: nop\nbr a"))
        assert cfg.blocks[0].terminator is not None
        assert len(cfg.blocks[0].body) == 1

    def test_data_items_preserved(self):
        unit = parse("_start: halt\nv: .word 42\nbuf: .space 2")
        cfg = build_cfg(unit)
        from repro.reorg.cfg import emit

        out = emit(cfg)
        program = out.assemble()
        assert program.image[program.symbols["v"]] == 42

    def test_fall_through(self):
        cfg = build_cfg(parse("a: nop\nbeq t0, r0, a\nb: nop\nbr b"))
        assert cfg.blocks[0].falls_through()       # conditional
        assert not cfg.blocks[1].falls_through()   # br = always taken


class TestLoadPadding:
    def test_nop_inserted_for_load_use(self):
        result = reorganize(parse(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
                add t2, t1, t1
                halt
            v: .word 7
            """
        ))
        assert result.stats.pad.nops_inserted == 1
        assert not verify_unit(result.unit)

    def test_independent_op_scheduled_into_gap(self):
        result = reorganize(parse(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
                add t2, t1, t1
                addi t3, r0, 9
                halt
            v: .word 7
            """
        ))
        assert result.stats.pad.scheduled == 1
        assert result.stats.pad.nops_inserted == 0

    def test_scheduling_preserves_semantics(self):
        check_equivalence(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
                add t2, t1, t1
                addi t3, r0, 9
                add t4, t2, t3
                li a0, 0x3FFFF0
                st t4, 0(a0)
                halt
            v: .word 7
            """
        )

    def test_cross_block_load_use_padded(self):
        result = reorganize(parse(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
            next:
                add t2, t1, t1
                halt
            v: .word 3
            """
        ))
        assert result.stats.pad.nops_inserted == 1
        check = verify_unit(result.unit)
        assert not check

    def test_no_pad_when_distance_sufficient(self):
        result = reorganize(parse(
            """
            _start:
                la t0, v
                ld t1, 0(t0)
                li t3, 1
                add t2, t1, t1
                halt
            v: .word 3
            """
        ))
        assert result.stats.pad.load_use_pairs == 0


class TestMoveFromAbove:
    def test_independent_suffix_moves_into_slots(self):
        result = reorganize(parse(
            """
            _start:
                li t0, 1
                li t1, 2
                li t2, 3
                beq t0, t0, away
                halt
            away:
                halt
            """
        ))
        # t1/t2 loads are independent of the condition (t0) -> both move
        assert result.stats.fill.filled_above == 2
        assert result.stats.fill.filled_nop == 0

    def test_condition_producer_does_not_move(self):
        result = reorganize(parse(
            """
            _start:
                li t1, 2
                li t0, 1
                beq t0, r0, away
                halt
            away:
                halt
            """
        ))
        # li t0 writes the branch source: it must stay above the branch
        plans = [p for p in result.plans if p.conditional]
        assert plans[0].fills[0] is not SlotFill.ABOVE or \
            result.stats.fill.filled_above < 2

    def test_moved_code_is_equivalent(self):
        check_equivalence(
            """
            _start:
                li t0, 5
                li t1, 7
                li t2, 9
                beq r0, r0, out
                li t3, 11      ; dead in naive semantics (skipped)
            out:
                add t4, t1, t2
                li a0, 0x3FFFF0
                st t4, 0(a0)
                halt
            """
        )


class TestSquashFill:
    LOOP = """
    _start:
        li t0, 0
        li t1, 10
    loop:
        add t0, t0, t1
        addi t1, t1, -1
        bgt t1, r0, loop
        li a0, 0x3FFFF0
        st t0, 0(a0)
        halt
    """

    def test_backward_branch_filled_from_target(self):
        result = reorganize(parse(self.LOOP))
        plan = [p for p in result.plans if p.conditional][0]
        assert plan.predicted_taken
        assert plan.fills == [SlotFill.TARGET, SlotFill.TARGET]

    def test_squash_bit_set_on_filled_branch(self):
        result = reorganize(parse(self.LOOP))
        branch_ops = [item for item in result.unit.items
                      if isinstance(item, Op) and item.instr.is_branch
                      and item.instr.src1 != 0]
        assert branch_ops[0].instr.squash

    def test_loop_semantics_preserved(self):
        _, machine = check_equivalence(self.LOOP)
        assert machine.console.values == [55]

    def test_squash_wastes_only_final_iteration(self):
        result = reorganize(parse(self.LOOP))
        machine = run_pipeline(result.unit)
        # slots squashed only when the loop finally falls through
        assert machine.stats.branch_squashes == 1
        assert machine.stats.squashed >= 2

    def test_forward_branch_target_fill_dominates_nops(self):
        """A squashed target fill costs a cycle only when the branch goes
        the wrong way; a no-op always does -- so even predicted-not-taken
        branches take target fills over no-ops (never FALL fills on the
        real hardware, which lacks squash-if-go)."""
        result = reorganize(parse(
            """
            _start:
                li t0, 1
                beq t0, r0, rare
                li t1, 2
                halt
            rare:
                li t2, 3
                li t3, 4
                halt
            """
        ))
        plan = [p for p in result.plans if p.conditional][0]
        assert not plan.predicted_taken
        assert SlotFill.FALL not in plan.fills
        assert SlotFill.TARGET in plan.fills
        # semantics preserved either way
        machine = run_pipeline(result.unit)
        assert machine.regs[11] == 2   # fall-through path ran
        assert machine.regs[12] == 0   # squashed copies had no effect

    def test_unconditional_jump_filled_without_squash(self):
        result = reorganize(parse(
            """
            _start:
                br out
                halt
            out:
                li t0, 1
                li t1, 2
                halt
            """
        ))
        jump_plans = [p for p in result.plans if not p.conditional]
        assert jump_plans[0].fills == [SlotFill.TARGET, SlotFill.TARGET]
        branch_ops = [item for item in result.unit.items
                      if isinstance(item, Op) and item.instr.is_branch]
        assert not branch_ops[0].instr.squash  # always-taken: no squash bit

    def test_call_filled_from_function_head(self):
        source = """
        _start:
            li  a0, 20
            call double
            mov s0, rv
            li a1, 0x3FFFF0
            st s0, 0(a1)
            halt
        double:
            add rv, a0, a0
            ret
        """
        result, machine = check_equivalence(source)
        assert machine.console.values == [40]

    def test_nested_function_calls(self):
        check_equivalence(
            """
            _start:
                li  sp, 0x1000
                li  a0, 4
                call fact
                li a1, 0x3FFFF0
                st rv, 0(a1)
                halt
            fact:
                addi sp, sp, -2
                st ra, 0(sp)
                st a0, 1(sp)
                li rv, 1
                ble a0, r0, fdone
                addi a0, a0, -1
                call fact
                ld a0, 1(sp)
                mov t0, rv
                add rv, r0, r0
                add rv, rv, t0
                add t1, a0, r0
                ld t2, 1(sp)
                nop
                add rv, rv, r0
                ; rv = fact(a0-1); multiply by (a0) via repeated add
                mov t3, rv
                li rv, 0
            mulloop:
                add rv, rv, t3
                addi t2, t2, -1
                bgt t2, r0, mulloop
            fdone:
                ld ra, 0(sp)
                addi sp, sp, 2
                ret
            """
        )


class TestSchemes:
    @pytest.mark.parametrize("scheme", TABLE1_SCHEMES,
                             ids=lambda s: s.name)
    def test_all_schemes_produce_verified_units(self, scheme):
        result = reorganize(parse(TestSquashFill.LOOP), scheme)
        assert not verify_unit(result.unit, scheme.slots)
        assert all(len(p.fills) == scheme.slots for p in result.plans)

    @pytest.mark.parametrize("scheme", [
        BranchScheme(2, "none", name="2-none"),
        BranchScheme(2, "optional", squash_if_go=False, name="2-opt-hw"),
        BranchScheme(1, "none", name="1-none"),
        BranchScheme(1, "optional", squash_if_go=False, name="1-opt-hw"),
    ], ids=lambda s: s.name)
    def test_hardware_schemes_run_correctly(self, scheme):
        _, machine = check_equivalence(TestSquashFill.LOOP, scheme)
        assert machine.console.values == [55]

    def test_no_squash_scheme_never_sets_squash_bit(self):
        result = reorganize(parse(TestSquashFill.LOOP),
                            BranchScheme(2, "none"))
        for item in result.unit.items:
            if isinstance(item, Op) and item.instr.is_branch:
                assert not item.instr.squash

    def test_always_squash_skips_move_from_above(self):
        source = """
        _start:
            li t0, 1
            li t1, 2
            li t2, 3
        loop:
            addi t0, t0, 1
            blt t0, t2, loop
            halt
        """
        optional = reorganize(parse(source), BranchScheme(2, "optional"))
        always = reorganize(parse(source), BranchScheme(2, "always"))
        conditional_always = [p for p in always.plans if p.conditional][0]
        assert SlotFill.ABOVE not in conditional_always.fills

    def test_one_slot_quick_compare_padding(self):
        # condition produced directly before the branch: needs a pad
        source = """
        _start:
            li t0, 5
        loop:
            addi t0, t0, -1
            bgt t0, r0, loop
            halt
        """
        scheme = BranchScheme(1, "optional", squash_if_go=False)
        result = reorganize(parse(source), scheme)
        assert result.stats.quick_compare_nops >= 1
        machine = run_pipeline(result.unit, slots=1)
        assert machine.regs[10] == 0

    def test_one_slot_load_condition_padding(self):
        source = """
        _start:
            la t0, v
            ld t1, 0(t0)
            beq t1, r0, out
            nop
        out:
            halt
        v: .word 0
        """
        scheme = BranchScheme(1, "optional", squash_if_go=False)
        result = reorganize(parse(source), scheme)
        machine = run_pipeline(result.unit, slots=1)  # must not raise


class TestProfiledReorganization:
    def test_profile_flips_forward_branch_prediction(self):
        # forward branch that is almost always taken: static heuristic says
        # not-taken, the profile should correct it
        source = """
        _start:
            li s0, 20
        loop:
            addi s0, s0, -1
            beq s0, r0, done    ; forward, taken once... mostly not taken
            br loop
        done:
            li t0, 1
            li t1, 2
            halt
        """
        result = profile_and_reorganize(parse(source))
        machine = run_pipeline(result.unit)
        assert machine.regs[26] == 0

    def test_profiled_code_still_equivalent(self):
        source = TestSquashFill.LOOP
        golden = run_naive(source)
        result = profile_and_reorganize(parse(source))
        machine = run_pipeline(result.unit)
        assert machine.console.values == golden.console.values


# ---------------------------------------------------------------- property
_OPS = ["add", "sub", "and", "or", "xor"]


def _random_program(draw):
    """Generate a terminating naive program: straight-line arithmetic with
    loads/stores and forward branches, plus one bounded countdown loop."""
    lines = ["_start:", "    la gp, buf", "    li s0, %d" % draw(
        st.integers(2, 6)), "loop:"]
    n_instrs = draw(st.integers(3, 14))
    n_forward = 0
    for i in range(n_instrs):
        kind = draw(st.integers(0, 9))
        rd = f"t{draw(st.integers(0, 7))}"
        r1 = f"t{draw(st.integers(0, 7))}"
        r2 = f"t{draw(st.integers(0, 7))}"
        if kind <= 4:
            lines.append(f"    {_OPS[kind]} {rd}, {r1}, {r2}")
        elif kind == 5:
            lines.append(f"    addi {rd}, {r1}, {draw(st.integers(-50, 50))}")
        elif kind == 6:
            lines.append(f"    ld {rd}, {draw(st.integers(0, 7))}(gp)")
        elif kind == 7:
            lines.append(f"    st {r1}, {draw(st.integers(0, 7))}(gp)")
        elif kind == 8:
            lines.append(f"    sll {rd}, {r1}, {draw(st.integers(0, 3))}")
        else:
            label = f"fwd{n_forward}"
            n_forward += 1
            condition = draw(st.sampled_from(["beq", "bne", "blt", "bge"]))
            lines.append(f"    {condition} {r1}, {r2}, {label}")
            lines.append(f"    addi {rd}, {rd}, 1")
            lines.append(f"{label}:")
    lines += [
        "    addi s0, s0, -1",
        "    bgt s0, r0, loop",
        "    halt",
        "buf: .space 8",
    ]
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_reorganized_random_programs_match_golden(data):
    """THE reorganizer correctness property: for random naive programs,
    the reorganized code on the cycle-accurate pipeline produces exactly
    the architectural state the golden model produces on the naive code."""
    source = _random_program(data.draw)
    golden = run_naive(source)
    result = reorganize(parse(source))
    assert not verify_unit(result.unit)
    machine = run_pipeline(result.unit)
    # data registers: t0-t7, s0, rv (gp holds an address and may differ)
    for register in list(range(10, 18)) + [26, 3]:
        assert machine.regs[register] == golden.regs[register]
    # memory buffer contents must match too (each image has its own layout)
    naive_buf = parse(source).assemble().symbols["buf"]
    reorg_buf = result.unit.assemble().symbols["buf"]
    for offset in range(8):
        assert (machine.memory.system.read(reorg_buf + offset)
                == golden.memory.system.read(naive_buf + offset))


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_programs_under_one_slot_scheme(data):
    source = _random_program(data.draw)
    golden = run_naive(source)
    scheme = BranchScheme(1, "optional", squash_if_go=False)
    result = reorganize(parse(source), scheme)
    machine = run_pipeline(result.unit, slots=1)
    for register in list(range(10, 18)) + [26, 3]:
        assert machine.regs[register] == golden.regs[register]


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_programs_no_squash_scheme(data):
    source = _random_program(data.draw)
    golden = run_naive(source)
    result = reorganize(parse(source), BranchScheme(2, "none"))
    machine = run_pipeline(result.unit)
    for register in list(range(10, 18)) + [26, 3]:
        assert machine.regs[register] == golden.regs[register]
