"""Tests for the instruction-level golden simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.coproc import Fpu, FpuOp, float_to_word, fpu_op
from repro.core.golden import GoldenError, GoldenSimulator, run_golden


def run(source, max_instructions=1_000_000):
    sim = GoldenSimulator()
    sim.load_program(assemble(source))
    sim.run(max_instructions)
    return sim


class TestNaiveSemantics:
    def test_branch_takes_effect_immediately(self):
        """Golden = naive: no delay slots at all."""
        sim = run("""
        _start:
            li t0, 1
            beq t0, t0, over
            li t1, 99     ; must NOT execute (no slots in naive code)
        over:
            halt
        """)
        assert sim.regs[11] == 0

    def test_load_result_immediately_usable(self):
        sim = run("""
        _start:
            la t0, v
            ld t1, 0(t0)
            add t2, t1, t1   ; immediate use: fine in naive semantics
            halt
        v: .word 21
        """)
        assert sim.regs[12] == 42

    def test_jspci_link_is_next_instruction(self):
        sim = run("""
        _start:
            call f
            li t0, 7      ; return lands here directly (no slots)
            halt
        f:  ret
        """)
        assert sim.regs[10] == 7

    def test_instruction_counting(self):
        sim = run("_start: nop\nnop\nnop\nhalt")
        assert sim.instructions == 4

    def test_console_and_memory(self):
        sim = run("""
        _start:
            li t0, 5
            la t1, cell
            st t0, 0(t1)
            li a0, 0x3FFFF0
            st t0, 0(a0)
            halt
        cell: .space 1
        """)
        assert sim.console.values == [5]

    def test_runaway_raises(self):
        sim = GoldenSimulator()
        sim.load_program(assemble("_start: br _start"))
        with pytest.raises(GoldenError):
            sim.run(1000)

    def test_md_register_ops(self):
        sim = run("""
        _start:
            li t0, 6
            movtos md, t0
            movfrs t1, md
            mstep t2, r0, t0   ; md bit0 = 0 -> t2 = 0, md -> 3
            mstep t3, r0, t0   ; md bit0 = 1 -> t3 = 6
            halt
        """)
        assert sim.regs[11] == 6
        assert sim.regs[12] == 0
        assert sim.regs[13] == 6

    def test_fpu_via_golden(self):
        a, b = float_to_word(2.0), float_to_word(0.5)
        source = f"""
        _start:
            la t0, data
            ldf f0, 0(t0)
            ldf f1, 1(t0)
            cop {fpu_op(FpuOp.FMUL, 0, 1)}(r0)
            movfrc t1, {fpu_op(FpuOp.MFC_RAW, 0)}(r0)
            li a0, 0x3FFFF0
            st t1, 0(a0)
            halt
        data: .word {a}, {b}
        """
        sim = GoldenSimulator()
        sim.coprocessors.attach(Fpu())
        sim.load_program(assemble(source))
        sim.run(1000)
        assert sim.console.values == [float_to_word(1.0)]

    def test_ldf_without_fpu_raises(self):
        sim = GoldenSimulator()
        sim.load_program(assemble("_start: ldf f0, 0(r0)\nhalt"))
        with pytest.raises(GoldenError):
            sim.run(100)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(-(1 << 31), (1 << 31) - 1),
       b=st.integers(-(1 << 31), (1 << 31) - 1),
       shamt=st.integers(0, 31))
def test_golden_matches_pipeline_on_straightline_alu(a, b, shamt):
    """The two simulators must agree instruction-for-instruction on
    arithmetic (the golden model is the semantic oracle)."""
    from repro.core import Machine, perfect_memory_config

    source = f"""
    _start:
        li t0, {a}
        li t1, {b}
        add t2, t0, t1
        sub t3, t0, t1
        and t4, t0, t1
        or  t5, t0, t1
        xor t6, t0, t1
        sll t7, t0, {shamt}
        srl t8, t0, {shamt}
        sra t9, t0, {shamt}
        not s0, t0
        halt
    """
    golden = run_golden(assemble(source))
    machine = Machine(perfect_memory_config())
    machine.load_program(assemble(source))
    machine.run(1000)
    for register in range(10, 27):
        assert machine.regs[register] == golden.regs[register]
