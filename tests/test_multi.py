"""Tests for the shared-memory multiprocessor (repro.multi).

MIPS-X has no atomic read-modify-write, so the synchronization tests use
classic sequential-consistency algorithms (Peterson's lock, flag
handoffs), exactly what 1987-era shared-memory software would have run.
"""

import pytest

from repro.asm import assemble
from repro.core import MachineConfig, perfect_memory_config
from repro.multi import MultiMachine

PETERSON = """
; two CPUs increment a shared counter ITER times under Peterson's lock;
; per-CPU identity arrives in gp
_start:
    li  s0, 50
    li  s1, 1
    sub s1, s1, gp     ; the other cpu's id
    la  t0, flag
    la  t3, turn
outer:
    add t1, t0, gp
    li  t2, 1
    st  t2, 0(t1)      ; flag[me] = 1
    st  s1, 0(t3)      ; turn = other
spin:
    add t4, t0, s1
    ld  t5, 0(t4)      ; flag[other]
    ld  t6, 0(t3)      ; turn
    nop
    beq t5, r0, enter
    nop
    nop
    bne t6, s1, enter
    nop
    nop
    br  spin
    nop
    nop
enter:
    la  t7, counter
    ld  t8, 0(t7)
    nop
    addi t8, t8, 1
    st  t8, 0(t7)
    st  r0, 0(t1)      ; flag[me] = 0
    addi s0, s0, -1
    bgt s0, r0, outer
    nop
    nop
    halt
flag: .space 2
turn: .space 1
counter: .word 0
"""


def run_peterson(config, **kwargs):
    program = assemble(PETERSON)
    system = MultiMachine(2, config, **kwargs)
    system.load_program(program)
    system.run(5_000_000)
    assert system.all_halted
    return system, system.memory.system.read(program.symbols["counter"])


class TestMutualExclusion:
    def test_peterson_no_lost_updates_ideal_memory(self):
        _, counter = run_peterson(perfect_memory_config())
        assert counter == 100

    def test_peterson_no_lost_updates_with_caches(self):
        system, counter = run_peterson(MachineConfig())
        assert counter == 100
        # caches were actively invalidated by the write-through broadcast
        assert system.bus.invalidations > 0

    def test_peterson_holds_under_bus_latency(self):
        """Mutual exclusion is a *correctness* property: stretching bus
        occupancy reshuffles the interleaving but must not lose
        updates."""
        system, counter = run_peterson(MachineConfig(), bus_latency=4)
        assert counter == 100
        assert system.bus.contention_cycles > 0

    def test_without_lock_updates_are_lost(self):
        """The control experiment: racing increments lose updates, which
        is exactly why the lock is needed (and proves the CPUs really do
        interleave)."""
        source = """
        _start:
            li  s0, 200
            la  t7, counter
        loop:
            ld  t8, 0(t7)
            nop
            addi t8, t8, 1
            st  t8, 0(t7)
            addi s0, s0, -1
            bgt s0, r0, loop
            nop
            nop
            halt
        counter: .word 0
        """
        program = assemble(source)
        system = MultiMachine(2, perfect_memory_config())
        system.load_program(program)
        system.run(5_000_000)
        counter = system.memory.system.read(program.symbols["counter"])
        assert counter < 400  # updates were lost in the race


class TestFlagHandoff:
    def test_producer_consumer(self):
        """CPU 0 produces a value and raises a flag; CPU 1 spins, then
        consumes and prints it."""
        source = """
        _start:
            beq gp, r0, producer
            nop
            nop
        consumer:
            la  t0, flag
        spin:
            ld  t1, 0(t0)
            nop
            beq t1, r0, spin
            nop
            nop
            la  t2, value
            ld  t3, 0(t2)
            li  a0, 0x3FFFF0
            st  t3, 0(a0)
            halt
        producer:
            li  t4, 777
            la  t5, value
            st  t4, 0(t5)
            li  t6, 1
            la  t7, flag
            st  t6, 0(t7)
            halt
        flag:  .word 0
        value: .word 0
        """
        program = assemble(source)
        system = MultiMachine(2, MachineConfig())
        system.load_program(program)
        system.run(5_000_000)
        assert system.all_halted
        assert system.console.values == [777]


class TestParallelSpeedup:
    SUM_SOURCE = """
    ; each of NCPU nodes sums its strided share of data[0..N) into
    ; partial[gp]; every node then spins until all done-flags are up and
    ; node 0 combines and prints
    _start:
        li   s0, 0          ; accumulator
        mov  t0, gp         ; index = cpu id
        li   s2, {n}
    sumloop:
        la   t1, data
        add  t1, t1, t0
        ld   t2, 0(t1)
        nop
        add  s0, s0, t2
        addi t0, t0, {ncpu}
        blt  t0, s2, sumloop
        nop
        nop
        la   t3, partial
        add  t3, t3, gp
        st   s0, 0(t3)
        la   t4, done
        add  t4, t4, gp
        li   t5, 1
        st   t5, 0(t4)
        bne  gp, r0, finish    ; only node 0 combines
        nop
        nop
        li   t6, 0             ; wait for all flags
    waitloop:
        la   t7, done
        add  t7, t7, t6
        ld   t8, 0(t7)
        nop
        beq  t8, r0, waitloop
        nop
        nop
        addi t6, t6, 1
        li   t9, {ncpu}
        blt  t6, t9, waitloop
        nop
        nop
        li   s1, 0
        li   t6, 0
    combine:
        la   t7, partial
        add  t7, t7, t6
        ld   t8, 0(t7)
        nop
        add  s1, s1, t8
        addi t6, t6, 1
        blt  t6, t9, combine
        nop
        nop
        li   a0, 0x3FFFF0
        st   s1, 0(a0)
    finish:
        halt
    partial: .space {ncpu}
    done:    .space {ncpu}
    data:    .word {data}
    """

    def _run(self, ncpu, n=64):
        values = [(3 * i + 1) % 23 for i in range(n)]
        source = self.SUM_SOURCE.format(
            n=n, ncpu=ncpu, data=", ".join(map(str, values)))
        program = assemble(source)
        system = MultiMachine(ncpu, perfect_memory_config())
        system.load_program(program)
        system.run(5_000_000)
        assert system.all_halted
        assert system.console.values == [sum(values)]
        return system.cycles

    def test_parallel_sum_is_correct_on_1_2_4_nodes(self):
        for ncpu in (1, 2, 4):
            self._run(ncpu)

    def test_parallel_sum_speeds_up(self):
        single = self._run(1, n=128)
        quad = self._run(4, n=128)
        assert quad < single  # real speedup from real parallelism
        assert quad < 0.6 * single


class TestBusModel:
    def test_bus_contention_is_counted(self):
        source = """
        _start:
            li  s0, 30
            la  t0, buffer
        loop:
            add t1, t0, gp
            sll t2, s0, 4
            add t1, t1, t2
            ld  t3, 0(t1)     ; scattered loads: Ecache misses -> bus
            nop
            addi s0, s0, -1
            bgt s0, r0, loop
            nop
            nop
            halt
        buffer: .space 1024
        """
        config = MachineConfig()
        config.ecache.size_words = 64
        config.ecache.line_words = 1
        system = MultiMachine(4, config)
        system.load_program(assemble(source))
        system.run(5_000_000)
        assert system.all_halted
        assert system.bus.acquisitions > 0
        assert system.bus.contention_cycles > 0

    def test_node_count_validation(self):
        with pytest.raises(ValueError):
            MultiMachine(0)
        with pytest.raises(ValueError):
            MultiMachine(17)

    def test_per_node_identity_in_gp(self):
        source = """
        _start:
            li  a0, 0x3FFFF0
            st  gp, 0(a0)
            halt
        """
        system = MultiMachine(3, perfect_memory_config())
        system.load_program(assemble(source))
        system.run(100_000)
        assert sorted(system.console.values) == [0, 1, 2]

    def test_memory_must_hold_the_node_stacks(self):
        """config.memory_words has to leave room for the per-node stacks
        below the conventional stack top -- a clear error, not a silent
        out-of-range store at runtime."""
        from repro.lang.codegen import STACK_TOP

        config = MachineConfig()
        config.memory_words = STACK_TOP // 2
        with pytest.raises(ValueError, match="memory_words"):
            MultiMachine(4, config)

    def test_bus_latency_validation(self):
        with pytest.raises(ValueError):
            MultiMachine(2, bus_latency=-1)

    def test_bus_latency_zero_is_the_plain_bus(self):
        """bus_latency=0 must be behavior-identical to the pre-knob bus:
        an owner releases as soon as its stall drains."""
        plain, counter_plain = run_peterson(MachineConfig())
        knob, counter_knob = run_peterson(MachineConfig(), bus_latency=0)
        assert counter_plain == counter_knob == 100
        assert plain.cycles == knob.cycles
        assert (plain.bus.contention_cycles == knob.bus.contention_cycles)


class TestSequentialConsistency:
    DEKKER = """
    ; the classic store-buffering litmus: each node raises its own flag,
    ; then reads the other's.  Under sequential consistency at least one
    ; node must observe the other's store -- (0, 0) is forbidden.
    _start:
        la  t0, x
        add t0, t0, gp     ; &x[me]
        li  t1, 1
        st  t1, 0(t0)      ; x[me] := 1
        la  t2, x
        li  t3, 1
        sub t3, t3, gp
        add t2, t2, t3     ; &x[other]
        ld  t4, 0(t2)
        nop
        li  a0, 0x3FFFF0
        st  t4, 0(a0)
        halt
    x: .space 2
    """

    def test_store_buffering_outcome_is_forbidden(self):
        system = MultiMachine(2, perfect_memory_config())
        system.load_program(assemble(self.DEKKER))
        system.run(100_000)
        assert system.all_halted
        assert sorted(system.console.values) != [0, 0]
        # stronger: a store lands in the shared image within its global
        # cycle, so two lockstep nodes that both store before loading
        # each observe the other's write
        assert system.console.values == [1, 1]


class TestParallelWorkloads:
    """The SPL parallel suite on real multiprocessors (reduced sizes)."""

    @pytest.mark.parametrize("name", ["psieve", "pintmm", "pring"])
    @pytest.mark.parametrize("ncpu", [1, 2, 4])
    def test_self_checking_result_on_n_nodes(self, name, ncpu):
        from repro.workloads.parallel import (QUICK_SIZES, expected_console,
                                              parallel_program)

        size = QUICK_SIZES[name]
        system = MultiMachine(ncpu, MachineConfig())
        system.load_program(parallel_program(name, ncpu, size))
        system.run(20_000_000)
        assert system.all_halted
        assert (system.console.values
                == expected_console(name, ncpu, size))

    def test_psieve_speeds_up_on_4_nodes(self):
        from repro.harness.experiments import multi_scaling_point

        single = multi_scaling_point("psieve", 1, size=240)
        quad = multi_scaling_point("psieve", 4, size=240)
        assert single["result_ok"] and quad["result_ok"]
        assert quad["cycles"] * 1.2 < single["cycles"]

    def test_single_node_timing_is_unchanged_by_the_bus(self):
        """speedup(N=1) == 1.0 by construction: one node can never
        contend, so the multi wrapper must add zero cycles over the
        node's own run."""
        from repro.harness.experiments import multi_scaling_point

        point = multi_scaling_point("pring", 1, size=8)
        assert point["cycles"] == point["node_cycles"][0]
        assert point["bus"]["contention_cycles"] == 0


class TestMultiBenchSection:
    def _jobs(self):
        from repro.harness.runner import Job

        return [
            Job(id=f"multi/psieve-n{n:02d}-bus0-inv",
                fn="repro.harness.experiments:multi_scaling_point",
                params={"workload": "psieve", "nodes": n, "size": 120},
                timeout=120.0,
                sweep="multi-scaling")
            for n in (1, 2)
        ]

    def test_serial_and_parallel_sections_are_byte_identical(self):
        """The ``multi`` BENCH section carries no wall-clock fields, so
        fanning the sweep across worker processes must aggregate to the
        same bytes as running it serially."""
        import json

        from repro.harness.bench import build_multi_section
        from repro.harness.runner import Runner

        runner = Runner(max_workers=2)
        jobs = self._jobs()
        serial = build_multi_section(runner.run(jobs, parallel=False))
        parallel = build_multi_section(runner.run(jobs, parallel=True))
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(parallel, sort_keys=True))
        assert serial["ok"] == 2 and not serial["failures"]
        curve = serial["curves"]["psieve/bus0/inv"]
        assert curve["nodes"] == [1, 2]
        assert curve["speedup"][0] == 1.0

    def test_check_multi_gate_failure_modes(self, tmp_path):
        """The --multi gate reports named failures, never KeyErrors."""
        import copy
        import json

        from repro.tools.check_results import check_multi_file

        rows = {
            f"multi/psieve-n{n:02d}-bus0-inv": {
                "workload": "psieve", "nodes": n, "bus_latency": 0,
                "invalidation": True, "size": 120, "cycles": cycles,
                "node_cycles": [cycles] * n, "instructions": 100,
                "bus": {"acquisitions": n, "contention_cycles": n - 1,
                        "invalidations": 0},
                "result": [30], "result_ok": True,
            }
            for n, cycles in ((1, 1000), (2, 700), (4, 500))
        }
        good = {"multi": {
            "schema": 1, "jobs": 3, "ok": 3, "failures": [],
            "rows": rows,
            "curves": {"psieve/bus0/inv": {
                "workload": "psieve", "bus_latency": 0,
                "invalidation": True, "nodes": [1, 2, 4],
                "cycles": [1000, 700, 500],
                "speedup": [1.0, 1.428571, 2.0],
                "acquisitions": [1, 2, 4],
                "contention_cycles": [0, 1, 3],
                "invalidations": [0, 0, 0],
            }},
        }}

        def verdict(mutate):
            payload = copy.deepcopy(good)
            mutate(payload)
            path = tmp_path / "bench.json"
            path.write_text(json.dumps(payload))
            return check_multi_file(path)

        assert verdict(lambda p: None) == []
        assert verdict(lambda p: p.pop("multi"))
        assert verdict(lambda p: p["multi"].pop("curves"))
        curves = "psieve/bus0/inv"

        def bad_baseline(p):
            p["multi"]["curves"][curves]["speedup"][0] = 1.01

        def contention_drop(p):
            p["multi"]["curves"][curves]["contention_cycles"][2] = 0

        def result_drift(p):
            p["multi"]["rows"]["multi/psieve-n04-bus0-inv"][
                "result"] = [31]

        def failed_check(p):
            p["multi"]["rows"]["multi/psieve-n02-bus0-inv"][
                "result_ok"] = False

        def slow_n4(p):
            p["multi"]["curves"][curves]["speedup"][2] = 1.1

        def job_failure(p):
            p["multi"]["failures"] = ["multi/psieve-n08-bus0-inv"]

        for mutate in (bad_baseline, contention_drop, result_drift,
                       failed_check, slow_n4, job_failure):
            failures = verdict(mutate)
            assert failures, mutate.__name__
            assert all("Error" not in f for f in failures)


class TestMultiObservability:
    def _traced_system(self, metrics=None):
        from repro.workloads.parallel import parallel_program

        system = MultiMachine(2, MachineConfig(), bus_latency=2)
        system.load_program(parallel_program("pring", 2, 8))
        tracers = system.attach_tracers(metrics=metrics)
        system.run(2_000_000)
        assert system.all_halted
        return system, tracers

    def test_one_perfetto_process_per_node(self, tmp_path):
        from repro.telemetry import write_multi_trace

        system, tracers = self._traced_system()
        path = tmp_path / "trace.json"
        write_multi_trace(path, tracers)    # schema-validates internally
        import json

        events = json.loads(path.read_text())["traceEvents"]
        assert {e["pid"] for e in events} == {1, 2}
        names = {(e["pid"], e["args"]["name"]) for e in events
                 if e.get("name") == "process_name"}
        assert names == {(1, "node 0"), (2, "node 1")}
        # the bus-wait track exists in every node's metadata
        threads = {(e["pid"], e["tid"], e["args"]["name"])
                   for e in events if e.get("name") == "thread_name"}
        for pid in (1, 2):
            assert (pid, 9, "Bus wait") in threads

    def test_bus_wait_spans_cover_the_contention(self):
        system, tracers = self._traced_system()
        waits = [(start, end) for tracer in tracers
                 for kind, start, end in tracer.stall_spans
                 if kind == "bus_wait"]
        covered = sum(end - start + 1 for start, end in waits)
        assert covered == system.bus.contention_cycles

    def test_shared_metrics_collects_bus_wait_histogram(self):
        from repro.telemetry import Metrics

        metrics = Metrics()
        system, _ = self._traced_system(metrics=metrics)
        system.metrics(metrics)
        snapshot = metrics.snapshot()
        histogram = snapshot["multi.bus.wait.length"]
        assert histogram["count"] > 0


class TestNodeFaults:
    @pytest.mark.parametrize("fault_class",
                             ["node-icache-valid", "node-ecache-tag"])
    def test_node_fault_is_absorbed(self, fault_class):
        from repro.faults.multi import node_fault_point

        verdict = node_fault_point(0, fault_class, nodes=2, quick=True)
        assert verdict["status"] in ("absorbed", "not-triggered")
        assert not verdict["violations"]
        assert verdict["faulted_cycles"] <= (verdict["golden_cycles"]
                                             + verdict["cycle_budget"])

    def test_unknown_fault_class_raises(self):
        from repro.faults.multi import node_fault_point

        with pytest.raises(ValueError):
            node_fault_point(0, "node-psw-bit", nodes=2, quick=True)


class TestCpuid:
    def test_cpuid_compiles_to_gp_read(self):
        from repro.lang import compile_spl

        compilation = compile_spl(
            "program p;\nbegin\n    write(cpuid());\nend.")
        assert "mov" in compilation.asm_text
        assert "gp" in compilation.asm_text

    def test_cpuid_rejects_arguments(self):
        from repro.lang import compile_spl
        from repro.lang.symbols import SemanticError

        with pytest.raises(SemanticError):
            compile_spl("program p;\nbegin\n    write(cpuid(1));\nend.")

    def test_node_stack_words_must_be_a_power_of_two(self):
        from repro.lang import compile_spl
        from repro.lang.codegen import CompileError

        with pytest.raises(CompileError):
            compile_spl("program p;\nbegin\n    write(1);\nend.",
                        node_stack_words=100)

    def test_uniprocessor_sees_id_zero_and_full_stack(self):
        """gp is 0 on a plain Machine, so the per-node prologue leaves
        the uniprocessor layout untouched."""
        from repro.core import Machine
        from repro.lang import compile_spl

        program = compile_spl(
            "program p;\nbegin\n    write(cpuid());\nend.",
            node_stack_words=4096).program()
        machine = Machine(MachineConfig())
        machine.load_program(program)
        machine.run(100_000)
        assert machine.halted
        assert machine.console.values == [0]
