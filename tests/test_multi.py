"""Tests for the shared-memory multiprocessor (repro.multi).

MIPS-X has no atomic read-modify-write, so the synchronization tests use
classic sequential-consistency algorithms (Peterson's lock, flag
handoffs), exactly what 1987-era shared-memory software would have run.
"""

import pytest

from repro.asm import assemble
from repro.core import MachineConfig, perfect_memory_config
from repro.multi import MultiMachine

PETERSON = """
; two CPUs increment a shared counter ITER times under Peterson's lock;
; per-CPU identity arrives in gp
_start:
    li  s0, 50
    li  s1, 1
    sub s1, s1, gp     ; the other cpu's id
    la  t0, flag
    la  t3, turn
outer:
    add t1, t0, gp
    li  t2, 1
    st  t2, 0(t1)      ; flag[me] = 1
    st  s1, 0(t3)      ; turn = other
spin:
    add t4, t0, s1
    ld  t5, 0(t4)      ; flag[other]
    ld  t6, 0(t3)      ; turn
    nop
    beq t5, r0, enter
    nop
    nop
    bne t6, s1, enter
    nop
    nop
    br  spin
    nop
    nop
enter:
    la  t7, counter
    ld  t8, 0(t7)
    nop
    addi t8, t8, 1
    st  t8, 0(t7)
    st  r0, 0(t1)      ; flag[me] = 0
    addi s0, s0, -1
    bgt s0, r0, outer
    nop
    nop
    halt
flag: .space 2
turn: .space 1
counter: .word 0
"""


def run_peterson(config):
    program = assemble(PETERSON)
    system = MultiMachine(2, config)
    system.load_program(program)
    system.run(5_000_000)
    assert system.all_halted
    return system, system.memory.system.read(program.symbols["counter"])


class TestMutualExclusion:
    def test_peterson_no_lost_updates_ideal_memory(self):
        _, counter = run_peterson(perfect_memory_config())
        assert counter == 100

    def test_peterson_no_lost_updates_with_caches(self):
        system, counter = run_peterson(MachineConfig())
        assert counter == 100
        # caches were actively invalidated by the write-through broadcast
        assert system.bus.invalidations > 0

    def test_without_lock_updates_are_lost(self):
        """The control experiment: racing increments lose updates, which
        is exactly why the lock is needed (and proves the CPUs really do
        interleave)."""
        source = """
        _start:
            li  s0, 200
            la  t7, counter
        loop:
            ld  t8, 0(t7)
            nop
            addi t8, t8, 1
            st  t8, 0(t7)
            addi s0, s0, -1
            bgt s0, r0, loop
            nop
            nop
            halt
        counter: .word 0
        """
        program = assemble(source)
        system = MultiMachine(2, perfect_memory_config())
        system.load_program(program)
        system.run(5_000_000)
        counter = system.memory.system.read(program.symbols["counter"])
        assert counter < 400  # updates were lost in the race


class TestFlagHandoff:
    def test_producer_consumer(self):
        """CPU 0 produces a value and raises a flag; CPU 1 spins, then
        consumes and prints it."""
        source = """
        _start:
            beq gp, r0, producer
            nop
            nop
        consumer:
            la  t0, flag
        spin:
            ld  t1, 0(t0)
            nop
            beq t1, r0, spin
            nop
            nop
            la  t2, value
            ld  t3, 0(t2)
            li  a0, 0x3FFFF0
            st  t3, 0(a0)
            halt
        producer:
            li  t4, 777
            la  t5, value
            st  t4, 0(t5)
            li  t6, 1
            la  t7, flag
            st  t6, 0(t7)
            halt
        flag:  .word 0
        value: .word 0
        """
        program = assemble(source)
        system = MultiMachine(2, MachineConfig())
        system.load_program(program)
        system.run(5_000_000)
        assert system.all_halted
        assert system.console.values == [777]


class TestParallelSpeedup:
    SUM_SOURCE = """
    ; each of NCPU nodes sums its strided share of data[0..N) into
    ; partial[gp]; every node then spins until all done-flags are up and
    ; node 0 combines and prints
    _start:
        li   s0, 0          ; accumulator
        mov  t0, gp         ; index = cpu id
        li   s2, {n}
    sumloop:
        la   t1, data
        add  t1, t1, t0
        ld   t2, 0(t1)
        nop
        add  s0, s0, t2
        addi t0, t0, {ncpu}
        blt  t0, s2, sumloop
        nop
        nop
        la   t3, partial
        add  t3, t3, gp
        st   s0, 0(t3)
        la   t4, done
        add  t4, t4, gp
        li   t5, 1
        st   t5, 0(t4)
        bne  gp, r0, finish    ; only node 0 combines
        nop
        nop
        li   t6, 0             ; wait for all flags
    waitloop:
        la   t7, done
        add  t7, t7, t6
        ld   t8, 0(t7)
        nop
        beq  t8, r0, waitloop
        nop
        nop
        addi t6, t6, 1
        li   t9, {ncpu}
        blt  t6, t9, waitloop
        nop
        nop
        li   s1, 0
        li   t6, 0
    combine:
        la   t7, partial
        add  t7, t7, t6
        ld   t8, 0(t7)
        nop
        add  s1, s1, t8
        addi t6, t6, 1
        blt  t6, t9, combine
        nop
        nop
        li   a0, 0x3FFFF0
        st   s1, 0(a0)
    finish:
        halt
    partial: .space {ncpu}
    done:    .space {ncpu}
    data:    .word {data}
    """

    def _run(self, ncpu, n=64):
        values = [(3 * i + 1) % 23 for i in range(n)]
        source = self.SUM_SOURCE.format(
            n=n, ncpu=ncpu, data=", ".join(map(str, values)))
        program = assemble(source)
        system = MultiMachine(ncpu, perfect_memory_config())
        system.load_program(program)
        system.run(5_000_000)
        assert system.all_halted
        assert system.console.values == [sum(values)]
        return system.cycles

    def test_parallel_sum_is_correct_on_1_2_4_nodes(self):
        for ncpu in (1, 2, 4):
            self._run(ncpu)

    def test_parallel_sum_speeds_up(self):
        single = self._run(1, n=128)
        quad = self._run(4, n=128)
        assert quad < single  # real speedup from real parallelism
        assert quad < 0.6 * single


class TestBusModel:
    def test_bus_contention_is_counted(self):
        source = """
        _start:
            li  s0, 30
            la  t0, buffer
        loop:
            add t1, t0, gp
            sll t2, s0, 4
            add t1, t1, t2
            ld  t3, 0(t1)     ; scattered loads: Ecache misses -> bus
            nop
            addi s0, s0, -1
            bgt s0, r0, loop
            nop
            nop
            halt
        buffer: .space 1024
        """
        config = MachineConfig()
        config.ecache.size_words = 64
        config.ecache.line_words = 1
        system = MultiMachine(4, config)
        system.load_program(assemble(source))
        system.run(5_000_000)
        assert system.all_halted
        assert system.bus.acquisitions > 0
        assert system.bus.contention_cycles > 0

    def test_node_count_validation(self):
        with pytest.raises(ValueError):
            MultiMachine(0)
        with pytest.raises(ValueError):
            MultiMachine(17)

    def test_per_node_identity_in_gp(self):
        source = """
        _start:
            li  a0, 0x3FFFF0
            st  gp, 0(a0)
            halt
        """
        system = MultiMachine(3, perfect_memory_config())
        system.load_program(assemble(source))
        system.run(100_000)
        assert sorted(system.console.values) == [0, 1, 2]
