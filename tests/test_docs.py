"""The documentation stays true: anchors import, generated docs current.

* every Implementation symbol in ``docs/GLOSSARY.md`` imports, and its
  ``file.py:line`` anchor points into the symbol's actual source span --
  a refactor that moves or renames an implementation fails here until
  the glossary is updated;
* ``docs/API.md`` matches what ``repro.tools.gen_api_docs`` generates
  (the same gate CI runs with ``--check``);
* ``docs/OBSERVABILITY.md`` documents every name in the metric catalog;
* README.md and DESIGN.md link all three documents.
"""

import importlib
import inspect
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
GLOSSARY = REPO_ROOT / "docs" / "GLOSSARY.md"
OBSERVABILITY = REPO_ROOT / "docs" / "OBSERVABILITY.md"
API = REPO_ROOT / "docs" / "API.md"

#: | term | usage | `repro.mod.Symbol` | `src/repro/mod.py:NN` |
_ROW = re.compile(
    r"^\|[^|]+\|[^|]+\| `(?P<symbol>repro\.[\w.]+)` "
    r"\| `(?P<file>src/repro/[\w/]+\.py):(?P<line>\d+)` \|$")


def glossary_rows():
    """Parsed (symbol, file, line) triples from the glossary table."""
    rows = []
    for line in GLOSSARY.read_text().splitlines():
        match = _ROW.match(line.strip())
        if match:
            rows.append((match["symbol"], match["file"],
                         int(match["line"])))
    return rows


def _resolve(dotted: str):
    """Import the longest module prefix, then getattr the rest."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        for attr in parts[split:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(dotted)


class TestGlossary:
    def test_table_parsed(self):
        assert len(glossary_rows()) >= 12

    @pytest.mark.parametrize(
        "symbol,file,line", glossary_rows(),
        ids=[row[0] for row in glossary_rows()])
    def test_anchor_is_honest(self, symbol, file, line):
        obj = _resolve(symbol)                     # ImportError = stale
        target = inspect.unwrap(obj)
        source_file = pathlib.Path(inspect.getsourcefile(target))
        assert source_file == REPO_ROOT / file, (
            f"{symbol} lives in {source_file}, glossary says {file}")
        _, start = inspect.getsourcelines(target)
        length = len(inspect.getsource(target).splitlines())
        assert start <= line < start + length, (
            f"{symbol} spans {file}:{start}..{start + length - 1}, "
            f"glossary anchors {line} -- update docs/GLOSSARY.md")


class TestGeneratedApiDocs:
    def test_api_md_is_current(self):
        from repro.tools.gen_api_docs import generate

        assert API.exists(), "docs/API.md missing -- run gen_api_docs"
        assert API.read_text() == generate(), (
            "docs/API.md is stale -- regenerate with "
            "`PYTHONPATH=src python -m repro.tools.gen_api_docs`")

    def test_lint_scoped_packages_are_fully_documented(self):
        from repro.tools.gen_api_docs import generate

        for block in generate().split("\n## ")[1:]:
            module = block.split("`")[1]
            if module.startswith(("repro.telemetry", "repro.harness")):
                assert "*undocumented*" not in block, (
                    f"{module} has undocumented public members -- "
                    "ruff D1xx will fail CI")


class TestObservabilityCatalog:
    def test_every_catalogued_metric_is_documented(self):
        from repro.telemetry import CATALOG

        text = OBSERVABILITY.read_text()
        missing = [spec.name for spec in CATALOG
                   if f"`{spec.name}`" not in text]
        assert not missing, (
            f"docs/OBSERVABILITY.md is missing catalog rows: {missing}")

    def test_catalog_table_has_no_stale_rows(self):
        from repro.telemetry import CATALOG_BY_NAME

        text = OBSERVABILITY.read_text()
        documented = re.findall(r"^\| `([\w.]+)` \|", text, re.M)
        stale = [name for name in documented
                 if name not in CATALOG_BY_NAME]
        assert not stale, (
            f"docs/OBSERVABILITY.md documents uncatalogued names: {stale}")


class TestDocLinks:
    @pytest.mark.parametrize("source,targets", [
        ("README.md", ["docs/OBSERVABILITY.md", "docs/GLOSSARY.md",
                       "docs/API.md", "DESIGN.md", "EXPERIMENTS.md"]),
        ("DESIGN.md", ["docs/OBSERVABILITY.md", "docs/GLOSSARY.md",
                       "docs/API.md"]),
    ])
    def test_docs_are_linked(self, source, targets):
        text = (REPO_ROOT / source).read_text()
        for target in targets:
            assert f"({target})" in text, f"{source} must link {target}"
            assert (REPO_ROOT / target).exists()
