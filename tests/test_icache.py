"""Tests for the on-chip instruction cache: organization, sub-block
placement, double fetch-back, replacement, and live-pipeline timing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core import IcacheConfig, Machine, MachineConfig
from repro.icache import Icache, contents_invariants, simulate


def paper_config(**overrides) -> IcacheConfig:
    return IcacheConfig(**overrides)


class TestGeometry:
    def test_paper_organization_totals(self):
        config = paper_config()
        assert config.total_words == 512
        assert config.tags == 32
        assert config.valid_bits == 512

    def test_first_access_misses_then_hits(self):
        cache = Icache(paper_config())
        assert not cache.fetch(100).hit
        assert cache.fetch(100).hit

    def test_double_fetchback_covers_next_word(self):
        cache = Icache(paper_config(fetchback=2))
        result = cache.fetch(100)
        assert result.fill_addresses == [100, 101]
        assert cache.fetch(101).hit

    def test_single_fetchback_does_not_cover_next_word(self):
        cache = Icache(paper_config(fetchback=1))
        cache.fetch(100)
        assert not cache.fetch(101).hit

    def test_subblock_fill_keeps_other_words_invalid(self):
        cache = Icache(paper_config())
        cache.fetch(0)  # fills words 0, 1 of block 0
        assert cache.lookup(0) and cache.lookup(1)
        assert not cache.lookup(2)
        assert not cache.lookup(15)

    def test_subblock_miss_same_tag_does_not_allocate(self):
        cache = Icache(paper_config())
        cache.fetch(0)
        allocations = cache.stats.tag_allocations
        cache.fetch(4)  # same block, different word
        assert cache.stats.tag_allocations == allocations

    def test_fetchback_across_block_boundary(self):
        cache = Icache(paper_config())
        cache.fetch(15)  # last word of block 0; next word is block 1
        assert cache.lookup(15)
        assert cache.lookup(16)
        assert cache.stats.tag_allocations == 2

    def test_set_mapping(self):
        """Blocks map to sets by block address modulo the number of sets."""
        cache = Icache(paper_config())
        # addresses 0 and 4*16=64 share set 0; fill 8 ways + 1 to evict
        addresses = [k * 4 * 16 for k in range(9)]
        for address in addresses:
            cache.fetch(address)
        assert not cache.fetch(addresses[0]).hit  # LRU victim was block 0

    def test_mode_bit_in_tag(self):
        cache = Icache(paper_config())
        cache.fetch(100, system_mode=True)
        assert not cache.fetch(100, system_mode=False).hit


class TestReplacement:
    def _fill_set_zero(self, cache):
        stride = cache.config.sets * cache.config.block_words
        for k in range(cache.config.ways):
            cache.fetch(k * stride)
        return stride

    def test_lru_evicts_least_recently_used(self):
        cache = Icache(paper_config(replacement="lru"))
        stride = self._fill_set_zero(cache)
        cache.fetch(0)                      # make way for block 0 most recent
        cache.fetch(cache.config.ways * stride)  # evicts block 1*stride
        assert cache.fetch(0).hit
        assert not cache.fetch(stride).hit

    def test_fifo_ignores_recency(self):
        cache = Icache(paper_config(replacement="fifo"))
        stride = self._fill_set_zero(cache)
        cache.fetch(0)                      # touch; FIFO does not care
        cache.fetch(cache.config.ways * stride)  # evicts block 0 (oldest)
        assert not cache.fetch(0).hit

    def test_random_is_deterministic_across_runs(self):
        addresses = [(k * 7919) % 4096 for k in range(2000)]
        a = simulate(paper_config(replacement="random"), addresses)
        b = simulate(paper_config(replacement="random"), addresses)
        assert a.misses == b.misses


class TestTraceSimulation:
    def test_sequential_code_misses_once_per_fetchback(self):
        stats = simulate(paper_config(), range(256))
        assert stats.misses == 128  # every other word missed (fetchback 2)
        assert stats.miss_rate == pytest.approx(0.5)

    def test_small_loop_runs_entirely_from_cache(self):
        trace = list(range(20)) * 50
        stats = simulate(paper_config(), trace)
        assert stats.misses == 10  # only the cold fills
        assert stats.miss_rate < 0.02

    def test_loop_larger_than_cache_thrashes(self):
        trace = list(range(2048)) * 4
        stats = simulate(paper_config(), trace)
        assert stats.miss_rate > 0.4

    def test_double_fetchback_halves_sequential_misses(self):
        trace = list(range(400))
        single = simulate(paper_config(fetchback=1), trace)
        double = simulate(paper_config(fetchback=2), trace)
        assert double.misses == single.misses / 2

    def test_average_fetch_cost_formula(self):
        stats = simulate(paper_config(), range(256))
        assert stats.average_fetch_cost(2) == pytest.approx(1 + 0.5 * 2)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 8191), min_size=1, max_size=400))
    def test_structural_invariants_hold(self, addresses):
        cache = Icache(paper_config())
        cache.simulate_trace(addresses)
        assert all(contents_invariants(cache).values())

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 8191), min_size=1, max_size=300))
    def test_repeat_fetch_always_hits(self, addresses):
        """Immediately refetching the same address must hit (inclusion of
        the just-filled word)."""
        cache = Icache(paper_config())
        for address in addresses:
            cache.fetch(address)
            assert cache.fetch(address).hit

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 4095), min_size=1, max_size=300),
           st.sampled_from(["lru", "fifo", "random"]))
    def test_miss_count_bounded_by_accesses(self, addresses, policy):
        stats = simulate(paper_config(replacement=policy), addresses)
        assert 0 <= stats.misses <= stats.accesses
        assert stats.words_filled >= stats.misses


class TestLivePipelineTiming:
    def _machine(self, source, **icache_overrides):
        config = MachineConfig()
        config.icache = IcacheConfig(**icache_overrides)
        config.ecache.enabled = False  # isolate Icache timing
        machine = Machine(config)
        machine.load_program(assemble(source))
        machine.run()
        assert machine.halted
        return machine

    def test_each_miss_stalls_two_cycles(self):
        source = "nop\n" * 20 + "halt"
        machine = self._machine(source)
        stats = machine.stats
        assert stats.icache_stall_cycles == machine.icache.stats.misses * 2
        # 21 program words plus the two fetches that trail the halt before
        # it resolves -> 23 sequential fetches -> 12 double-fetch misses
        assert machine.icache.stats.misses == 12

    def test_warm_loop_has_no_stalls_after_first_pass(self):
        source = """
        _start:
            li t0, 50
        loop:
            addi t0, t0, -1
            bgt t0, r0, loop
            nop
            nop
            halt
        """
        machine = self._machine(source)
        # cold misses only: the loop body is 4 words + prologue/halt
        assert machine.icache.stats.misses <= 6

    def test_disabled_cache_pays_per_fetch(self):
        source = "nop\nnop\nnop\nhalt"
        machine = self._machine(source, enabled=False, miss_cycles=2)
        stats = machine.stats
        assert stats.icache_stall_cycles == 2 * stats.fetched

    def test_cache_miss_fsm_sequences_recorded(self):
        machine = self._machine("nop\nnop\nnop\nhalt")
        fsm = machine.pipeline.miss_fsm
        assert fsm.miss_sequences == machine.icache.stats.misses
        assert fsm.stall_cycles == machine.stats.icache_stall_cycles
