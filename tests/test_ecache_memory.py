"""Tests for the external cache, main memory, MMIO devices, and the
late-miss stall behaviour seen from the pipeline."""

import pytest

from repro.asm import assemble
from repro.core import EcacheConfig, Machine, MachineConfig
from repro.ecache import Ecache, Memory, MemoryFault, MemorySystem


class TestMemory:
    def test_default_zero(self):
        assert Memory(1024).read(5) == 0

    def test_write_read(self):
        memory = Memory(1024)
        memory.write(10, 0xABCD)
        assert memory.read(10) == 0xABCD

    def test_values_wrap_to_32_bits(self):
        memory = Memory(1024)
        memory.write(0, 1 << 40)
        assert memory.read(0) == 0

    def test_out_of_range_faults(self):
        memory = Memory(16)
        with pytest.raises(MemoryFault):
            memory.read(16)
        with pytest.raises(MemoryFault):
            memory.write(-1, 0)


class TestMemorySystem:
    def _system(self):
        return MemorySystem(size_words=1 << 20, mmio_base=0x3FF00)

    def test_console_word_port(self):
        memsys = self._system()
        memsys.write(0x3FF00 + MemorySystem.CONSOLE_OFFSET, 42, True)
        assert memsys.console.values == [42]

    def test_console_char_port(self):
        memsys = self._system()
        base = 0x3FF00 + MemorySystem.CONSOLE_OFFSET + 1
        for ch in "hi":
            memsys.write(base, ord(ch), True)
        assert memsys.console.text == "hi"

    def test_icu_read_clears(self):
        memsys = self._system()
        memsys.icu.post(0x5)
        address = 0x3FF00 + MemorySystem.ICU_OFFSET
        assert memsys.read(address, True) == 0x5
        assert memsys.read(address, True) == 0

    def test_icu_peek_does_not_clear(self):
        memsys = self._system()
        memsys.icu.post(0x5)
        address = 0x3FF00 + MemorySystem.ICU_OFFSET + 1
        assert memsys.read(address, True) == 0x5
        assert memsys.read(address, True) == 0x5

    def test_unknown_mmio_address_faults(self):
        memsys = self._system()
        with pytest.raises(MemoryFault):
            memsys.read(0x3FF00 + 0x55, True)

    def test_write_listeners(self):
        memsys = self._system()
        seen = []
        memsys.write_listeners.append(
            lambda addr, mode: seen.append((addr, mode)))
        memsys.write(123, 7, True)
        assert seen == [(123, True)]


class TestEcacheTiming:
    def _cache(self, **overrides):
        return Ecache(EcacheConfig(**overrides))

    def test_read_miss_then_hit(self):
        cache = self._cache(miss_penalty=8)
        assert cache.read(100, True) == 8
        assert cache.read(100, True) == 0

    def test_line_granularity(self):
        cache = self._cache(line_words=4)
        cache.read(100, True)
        assert cache.read(101, True) == 0  # same 4-word line (100..103)
        assert cache.read(103, True) == 0
        assert cache.read(96, True) == 8   # previous line

    def test_write_through_never_stalls(self):
        cache = self._cache(write_through=True)
        assert cache.write(100, True) == 0
        assert cache.stats.write_misses == 1

    def test_write_back_allocates(self):
        cache = self._cache(write_through=False, miss_penalty=8)
        assert cache.write(100, True) == 8
        assert cache.read(100, True) == 0

    def test_direct_mapped_conflict(self):
        cache = self._cache(size_words=1024, line_words=4, miss_penalty=8)
        assert cache.read(0, True) == 8
        assert cache.read(1024, True) == 8  # conflicts with line 0
        assert cache.read(0, True) == 8

    def test_mode_bit_in_tag(self):
        cache = self._cache(miss_penalty=8)
        cache.read(100, True)
        assert cache.read(100, False) == 8

    def test_disabled_cache_is_free(self):
        cache = self._cache(enabled=False)
        assert cache.read(100, True) == 0
        assert cache.stats.accesses == 0

    def test_flush(self):
        cache = self._cache(miss_penalty=8)
        cache.read(100, True)
        cache.flush()
        assert cache.read(100, True) == 8

    def test_miss_rate_accounting(self):
        cache = self._cache(miss_penalty=8, line_words=1, size_words=16)
        for address in range(32):
            cache.read(address, True)
        assert cache.stats.miss_rate == 1.0


class TestLateMissFromPipeline:
    def _machine(self, source, penalty=8):
        config = MachineConfig()
        config.icache.enabled = False
        config.icache.miss_cycles = 0  # isolate data-side timing
        config.ecache = EcacheConfig(miss_penalty=penalty, line_words=1)
        machine = Machine(config)
        machine.load_program(assemble(source))
        machine.run()
        assert machine.halted
        return machine

    def test_load_miss_stalls_for_penalty(self):
        source = """
        _start:
            la t0, v
            ld t1, 0(t0)
            nop
            halt
        v: .word 5
        """
        machine = self._machine(source, penalty=8)
        assert machine.stats.data_stall_cycles == 8
        assert machine.regs[11] == 5

    def test_second_load_same_line_hits(self):
        source = """
        _start:
            la t0, v
            ld t1, 0(t0)
            ld t2, 0(t0)
            nop
            halt
        v: .word 5
        """
        machine = self._machine(source, penalty=8)
        assert machine.stats.data_stall_cycles == 8

    def test_write_through_store_does_not_stall(self):
        source = """
        _start:
            la t0, v
            li t1, 9
            st t1, 0(t0)
            halt
        v: .space 1
        """
        machine = self._machine(source, penalty=8)
        assert machine.stats.data_stall_cycles == 0

    def test_mmio_bypasses_ecache(self):
        source = """
        _start:
            li t0, 0x3FFFF0
            li t1, 11
            st t1, 0(t0)
            halt
        """
        machine = self._machine(source, penalty=8)
        assert machine.stats.data_stall_cycles == 0
        assert machine.console.values == [11]

    def test_late_miss_freezes_whole_pipe(self):
        """Cycle count = ideal cycles + exactly the stall cycles (both the
        data-side late misses and the instruction fetch-backs, which also
        go through the shared external cache)."""
        source = """
        _start:
            la t0, v
            ld t1, 0(t0)
            nop
            halt
        v: .word 5
        """
        fast = self._machine(source, penalty=0)
        slow = self._machine(source, penalty=10)
        assert slow.stats.data_stall_cycles == 10
        assert slow.stats.cycles == (fast.stats.cycles
                                     + slow.stats.data_stall_cycles
                                     + slow.stats.icache_stall_cycles)
