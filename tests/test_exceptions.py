"""Exception handling: halted pipeline, PC chain, trap-on-overflow,
interrupts, and the three-jump restart sequence.

The return convention (see repro.core.pipeline): the handler reloads the
PC chain and executes ``jpc; jpc; jpcrs``.  Each jump redirects to the next
chain entry while the following jumps ride in its delay slots -- the
paper's "three special jumps using the contents of the PC chain" -- and
the *last* jump restores the PSW, so PC-chain shifting stays disabled
until every chain entry has been consumed.
"""


from repro.asm import assemble
from repro.core import Machine, PswBit, perfect_memory_config


def machine_for(source: str) -> Machine:
    machine = Machine(perfect_memory_config())
    machine.load_program(assemble(source))
    return machine


# PSW value with system mode + shift enable + trap-on-overflow:
PSW_SYS_TE = (1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN) | (1 << PswBit.TE)
# PSW value with system mode + shift enable + interrupts enabled:
PSW_SYS_IE = (1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN) | (1 << PswBit.IE)


OVERFLOW_PROGRAM = f"""
; exception vector: count the trap, clear TE in PSWold, restart
.org 0
    br handler
    nop
    nop

.org 0x40
handler:
    la   s0, trapcount
    ld   s1, 0(s0)
    nop
    addi s1, s1, 1
    st   s1, 0(s0)
    ; clear the TE bit in PSWold so the re-executed add does not re-trap
    movfrs t0, pswold
    li    t1, {1 << PswBit.TE}
    not   t1, t1
    and   t0, t0, t1
    movtos pswold, t0
    jpc
    jpc
    jpcrs

.org 0x100
_start:
    li   t9, {PSW_SYS_TE}
    movtos psw, t9
    li   t2, 0x7FFFFFFF
    li   t3, 1
    add  t4, t2, t3      ; overflows -> trap
    li   t5, 123         ; proof that execution continues afterwards
    halt

trapcount: .word 0
"""


class TestOverflowTrap:
    def test_trap_taken_and_restarted(self):
        machine = machine_for(OVERFLOW_PROGRAM)
        machine.run()
        assert machine.halted
        program = assemble(OVERFLOW_PROGRAM)
        assert machine.memory.system.read(program.symbols["trapcount"]) == 1
        # after restart the add completed with the wrapped value
        assert machine.regs[14] == 0x80000000  # t4 wrapped (TE cleared)
        assert machine.regs[15] == 123
        assert machine.stats.exceptions == 1

    def test_overflow_ignored_when_te_clear(self):
        machine = machine_for(
            """
            _start:
                li t2, 0x7FFFFFFF
                li t3, 1
                add t4, t2, t3
                halt
            """
        )
        machine.run()
        assert machine.stats.exceptions == 0
        assert machine.regs[14] == 0x80000000

    def test_cause_bits_set(self):
        source = f"""
        .org 0
            movfrs s4, psw     ; capture the PSW inside the handler
            halt
        .org 0x100
        _start:
            li t9, {PSW_SYS_TE}
            movtos psw, t9
            li t2, 0x7FFFFFFF
            add t4, t2, t2
            halt
        """
        machine = machine_for(source)
        machine.run()
        assert machine.regs[30] & (1 << PswBit.CAUSE_OVF)
        assert machine.regs[30] & (1 << PswBit.MODE)
        assert not machine.regs[30] & (1 << PswBit.SHIFT_EN)

    def test_faulting_instruction_does_not_write(self):
        source = f"""
        .org 0
            mov s4, t4        ; t4 at handler entry
            halt
        .org 0x100
        _start:
            li t9, {PSW_SYS_TE}
            movtos psw, t9
            li t4, 55
            li t2, 0x7FFFFFFF
            add t4, t2, t2    ; traps; must NOT update t4
            halt
        """
        machine = machine_for(source)
        machine.run()
        assert machine.regs[30] == 55

    def test_addi_never_traps(self):
        """Address arithmetic is exempt from the overflow trap."""
        source = f"""
        _start:
            li t9, {PSW_SYS_TE}
            movtos psw, t9
            li t2, 0x7FFFFFFF
            addi t3, t2, 1
            halt
        """
        machine = machine_for(source)
        machine.run()
        assert machine.stats.exceptions == 0
        assert machine.regs[13] == 0x80000000


class TestSoftwareTrap:
    def test_trap_vectors_to_zero(self):
        source = """
        .org 0
            li s0, 42
            halt
        .org 0x100
        _start:
            trap
            nop
            nop
            li s1, 9   ; never reached
            halt
        """
        machine = machine_for(source)
        machine.run()
        assert machine.regs[26] == 42
        assert machine.regs[27] == 0
        assert machine.stats.exceptions == 1

    def test_trap_cause_bit(self):
        source = """
        .org 0
            movfrs s4, psw
            halt
        .org 0x100
        _start:
            trap
        """
        machine = machine_for(source)
        machine.run()
        assert machine.regs[30] & (1 << PswBit.CAUSE_TRAP)


class TestPcChain:
    def test_chain_freezes_with_uncompleted_pcs(self):
        source = f"""
        .org 0
            movfrs s0, pc1
            movfrs s1, pc2
            movfrs s2, pc3
            halt
        .org 0x100
        _start:
            li t9, {PSW_SYS_TE}
            movtos psw, t9
            li t2, 0x7FFFFFFF
            nop                  ; pc = 0x105 (li is 1 word here)
            add t4, t2, t2       ; faulting pc
            nop
            nop
            halt
        """
        machine = machine_for(source)
        machine.run()
        program = assemble(source)
        fault_pc = None
        for address, instr in program.listing.items():
            if str(instr).startswith("add t4"):
                fault_pc = address
        # chain = [MEM pc, ALU pc (faulter), RF pc]
        assert machine.regs[26] == fault_pc - 1
        assert machine.regs[27] == fault_pc
        assert machine.regs[28] == fault_pc + 1

    def test_full_restart_reexecutes_three_instructions(self):
        machine = machine_for(OVERFLOW_PROGRAM)
        machine.run()
        # the instructions around the fault completed exactly once each:
        assert machine.regs[12] == 0x7FFFFFFF  # t2
        assert machine.regs[13] == 1           # t3


class TestInterrupts:
    INTERRUPT_PROGRAM = f"""
    .org 0
        br handler
        nop
        nop
    .org 0x40
    handler:
        la  s0, flag
        li  s1, 1
        st  s1, 0(s0)
        jpc
        jpc
        jpcrs
    .org 0x100
    _start:
        li t9, {PSW_SYS_IE}
        movtos psw, t9
        la t0, flag
    spin:
        ld t1, 0(t0)
        nop
        beq t1, r0, spin
        nop
        nop
        li rv, 7
        halt
    flag: .word 0
    """

    def test_interrupt_breaks_spin_loop(self):
        machine = machine_for(self.INTERRUPT_PROGRAM)
        for _ in range(60):
            machine.step()
        machine.post_interrupt(cause_bits=0x4)
        machine.run(max_cycles=100_000)
        assert machine.halted
        assert machine.regs[3] == 7
        assert machine.stats.interrupts == 1

    def test_masked_interrupt_not_taken(self):
        source = """
        _start:
            li t0, 100
        loop:
            addi t0, t0, -1
            bgt t0, r0, loop
            nop
            nop
            halt
        """
        machine = machine_for(source)
        for _ in range(20):
            machine.step()
        machine.post_interrupt()  # IE is clear at reset
        machine.run()
        assert machine.halted
        assert machine.stats.interrupts == 0

    def test_nmi_taken_even_when_masked(self):
        source = """
        .org 0
            li s0, 5
            halt
        .org 0x100
        _start:
            br _start
            nop
            nop
        """
        machine = machine_for(source)
        for _ in range(30):
            machine.step()
        machine.post_interrupt(nmi=True)
        machine.run(max_cycles=10_000)
        assert machine.halted
        assert machine.regs[26] == 5
        psw = machine.pipeline.psw_old  # PSW at handler was exception PSW?
        assert machine.stats.interrupts == 1

    def test_icu_reports_cause(self):
        source = """
        .org 0
            li  t0, 0x3FFFE0
            ld  s0, 0(t0)    ; read-and-clear pending causes from the ICU
            nop
            halt
        .org 0x100
        _start:
            br _start
            nop
            nop
        """
        machine = machine_for(source)
        for _ in range(30):
            machine.step()
        machine.post_interrupt(cause_bits=0x9, nmi=True)
        machine.run(max_cycles=10_000)
        assert machine.regs[26] == 0x9
        assert machine.memory.icu.pending == 0


class TestAddressSpaces:
    def test_fetch_uses_mode_selected_space(self):
        """The same address runs different code in system vs user space."""
        system_program = assemble("_start: li rv, 1\nhalt")
        user_program = assemble("_start: li rv, 2\nhalt")
        machine = Machine(perfect_memory_config())
        machine.memory.system.load_image(system_program.image)
        machine.memory.user.load_image(user_program.image)
        machine.pipeline.reset(system_program.entry)
        machine.run()
        assert machine.regs[3] == 1

    def test_data_spaces_are_separate(self):
        machine = Machine(perfect_memory_config())
        machine.memory.system.write(100, 11)
        machine.memory.user.write(100, 22)
        assert machine.memory.read(100, system_mode=True) == 11
        assert machine.memory.read(100, system_mode=False) == 22


class TestSquashExceptionSharing:
    """The paper's point: exceptions and branch squashing share hardware."""

    def test_squash_fsm_used_for_both(self):
        source = """
        .org 0
            halt
        .org 0x100
        _start:
            li t0, 1
            bnesq t0, t0, away    ; wrong-way squash
            nop
            nop
            trap                  ; exception
        away: halt
        """
        machine = machine_for(source)
        machine.run()
        fsm = machine.pipeline.squash_fsm
        assert fsm.transitions >= 2  # entered BRANCH_SQUASH and EXCEPTION
        assert machine.stats.branch_squashes == 1
        assert machine.stats.exceptions == 1
