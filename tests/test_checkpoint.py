"""Tests for checkpoint/restore (:mod:`repro.checkpoint`).

The contract under test, end to end:

* snapshots are taken only at **quiescent cycle boundaries** (nothing
  transient in flight), and a run sliced by snapshot/restore finishes
  **bit-identical** to an uninterrupted run -- same registers, PSW/MD,
  cache arrays and LRU state, memory, coprocessors, stats, console;
* the JSON payload survives a serialization round trip (what lands on
  disk is what restores);
* the :class:`~repro.checkpoint.store.SnapshotStore` generation ladder
  is durable (sha256 sidecars, atomic writes, pid-stamped locks) and
  **rejects** truncated, bit-flipped, mis-versioned, and wrong-config
  snapshots with named errors, falling back to older generations;
* the :func:`~repro.checkpoint.run.run_with_checkpoints` watchdog
  resumes a killed run from the latest valid generation, and the resumed
  run's metrics/console match an unkilled reference -- proven here with
  a real SIGKILL mid-run;
* the fuzz oracle's checkpoint pair finds no divergence.
"""

import dataclasses
import json
import multiprocessing
import signal

import pytest

from repro.checkpoint import (FORMAT, SnapshotConfigError, SnapshotFormatError,
                              SnapshotIntegrityError, SnapshotStore,
                              drain_machine, machine_state, restore_machine,
                              run_with_checkpoints)
from repro.checkpoint.store import state_cycles
from repro.core.config import MachineConfig
from repro.core.processor import Machine
from repro.fuzz.oracle import _machine_signature
from repro.workloads import cached_program


def _fresh(name="sieve", **overrides):
    machine = Machine(MachineConfig(**overrides))
    machine.load_program(cached_program(name))
    return machine


def _run_to_completion(machine, budget=10_000_000):
    machine.run(budget)
    assert machine.halted, "workload did not halt within budget"
    return machine


# ------------------------------------------------------------- quiescence
class TestQuiescence:
    def test_halted_machine_is_quiescent(self):
        machine = _run_to_completion(_fresh())
        assert machine.pipeline.quiescent

    def test_drain_reaches_quiescence_mid_run(self):
        machine = _fresh()
        machine.run(10_000)
        drained = drain_machine(machine)
        assert machine.pipeline.quiescent
        assert drained >= 0

    def test_snapshot_refuses_nothing_after_drain(self):
        # machine_state drains internally; the state it captures must
        # describe a quiescent machine (drain cycles are real cycles)
        machine = _fresh()
        machine.run(10_000)
        state = machine_state(machine)
        assert state["format"] == FORMAT
        assert state_cycles(state) >= 10_000


# ------------------------------------------------------------- round trip
class TestRoundTrip:
    @pytest.mark.parametrize("jit", [False, True],
                             ids=["interp", "jit"])
    def test_half_run_snapshot_finishes_bit_identical(self, jit):
        straight = _run_to_completion(_fresh(jit=jit))
        total = straight.stats.cycles

        first = _fresh(jit=jit)
        first.run(total // 2)
        # force the same JSON round trip the store performs
        state = json.loads(json.dumps(machine_state(first)))

        second = _fresh(jit=jit)
        restore_machine(second, state)
        _run_to_completion(second)

        assert _machine_signature(second) == _machine_signature(straight)
        assert list(second.console.values) == list(straight.console.values)

    def test_snapshot_is_pure_json(self):
        machine = _fresh()
        machine.run(5_000)
        state = machine_state(machine)
        json.dumps(state)   # raises on any non-JSON value

    def test_multi_machine_round_trip(self):
        from repro.checkpoint import multi_state, restore_multi
        from repro.multi.system import MultiMachine
        from repro.workloads.parallel import parallel_program

        def build():
            multi = MultiMachine(2)
            multi.load_program(parallel_program("psieve", 2))
            return multi

        straight = build()
        straight.run(10_000_000)
        assert straight.all_halted
        total = straight.cycles

        first = build()
        first.run(total // 2)
        state = json.loads(json.dumps(multi_state(first)))
        second = build()
        restore_multi(second, state)
        second.run(10_000_000)
        assert second.all_halted

        for left, right in zip(straight.machines, second.machines):
            assert _machine_signature(right) == _machine_signature(left)
        assert dataclasses.asdict(second.bus) == dataclasses.asdict(
            straight.bus)
        assert second.cycles == straight.cycles


# ---------------------------------------------------------------- store
class TestStore:
    def _laddered_store(self, tmp_path):
        """A store holding two generations of a sieve run."""
        store = SnapshotStore(root=tmp_path / "ckpt")
        machine = _fresh()
        machine.run(2_000)
        store.save("t", machine_state(machine))
        machine.run(4_000)
        store.save("t", machine_state(machine))
        return store, machine

    def test_generation_files_and_sidecars(self, tmp_path):
        store, _machine = self._laddered_store(tmp_path)
        generations = store.generations("t")
        assert len(generations) == 2
        for path in generations:
            assert path.name.startswith("gen-")
            assert path.with_suffix(".json.sha256").exists()
        # sorted oldest -> newest by embedded cycle count
        assert [p.name for p in generations] == sorted(
            p.name for p in generations)

    def test_load_latest_returns_newest(self, tmp_path):
        store, machine = self._laddered_store(tmp_path)
        state, newest = store.load_latest("t")
        assert newest == store.generations("t")[-1]
        assert state_cycles(state) == machine.stats.cycles

    def test_prune_keeps_newest(self, tmp_path):
        store, machine = self._laddered_store(tmp_path)
        machine.run(6_000)
        store.save("t", machine_state(machine))
        store.prune("t", keep=2)
        assert len(store.generations("t")) == 2
        state, _path = store.load_latest("t")
        assert state_cycles(state) == machine.stats.cycles

    def test_dead_pid_lock_is_broken(self, tmp_path):
        store = SnapshotStore(root=tmp_path / "ckpt")
        machine = _fresh()
        machine.run(2_000)
        # simulate a crashed writer: lock stamped with a dead pid
        child = multiprocessing.Process(target=_noop)
        child.start()
        child.join()
        run_dir = store.run_dir("t")
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / ".lock").write_text(str(child.pid))
        store.save("t", machine_state(machine))   # must not dead-lock
        state, _path = store.load_latest("t")
        assert state is not None
        assert not (run_dir / ".lock").exists()


def _noop():
    pass


# ------------------------------------------------------------- rejection
class TestRejection:
    def _saved(self, tmp_path):
        store = SnapshotStore(root=tmp_path / "ckpt")
        machine = _fresh()
        machine.run(2_000)
        older = store.save("t", machine_state(machine))
        machine.run(4_000)
        newer = store.save("t", machine_state(machine))
        return store, older, newer

    def test_truncated_snapshot_rejected_with_fallback(self, tmp_path):
        store, older, newer = self._saved(tmp_path)
        data = newer.read_bytes()
        newer.write_bytes(data[:len(data) // 2])
        with pytest.raises(SnapshotIntegrityError):
            store.load(newer)
        state, fallback = store.load_latest("t")
        assert fallback == older
        assert state_cycles(state) == state_cycles(
            json.loads(older.read_text()))
        assert store.fallbacks >= 1

    def test_flipped_byte_rejected(self, tmp_path):
        store, _older, newer = self._saved(tmp_path)
        data = bytearray(newer.read_bytes())
        data[len(data) // 2] ^= 0x01
        newer.write_bytes(bytes(data))
        with pytest.raises(SnapshotIntegrityError):
            store.load(newer)
        state, _path = store.load_latest("t")
        assert state is not None

    def test_missing_sidecar_rejected(self, tmp_path):
        store, _older, newer = self._saved(tmp_path)
        newer.with_suffix(".json.sha256").unlink()
        with pytest.raises(SnapshotIntegrityError):
            store.load(newer)

    def test_future_format_rejected(self, tmp_path):
        store, _older, newer = self._saved(tmp_path)
        state = json.loads(newer.read_text())
        state["format"] = FORMAT + 999
        forged = store.save("t2", state)   # re-saved: checksum *valid*
        with pytest.raises(SnapshotFormatError):
            store.load(forged)
        # the ladder has no valid generation left -- clean miss, no crash
        assert store.load_latest("t2") == (None, None)
        assert store.fallbacks >= 1

    def test_wrong_config_rejected(self, tmp_path):
        store, _older, newer = self._saved(tmp_path)
        state = store.load(newer)
        other = MachineConfig(
            icache=dataclasses.replace(MachineConfig().icache, ways=4))
        machine = Machine(other)
        machine.load_program(cached_program("sieve"))
        with pytest.raises(SnapshotConfigError):
            restore_machine(machine, state)


# -------------------------------------------------------------- watchdog
class TestWatchdog:
    def test_periodic_snapshots_and_clean_finish(self, tmp_path):
        store = SnapshotStore(root=tmp_path / "ckpt")
        machine = _fresh()
        stats = run_with_checkpoints(machine, store, run_id="w",
                                     max_cycles=10_000_000,
                                     every_cycles=20_000, keep=100)
        assert machine.halted
        assert stats.snapshots >= 3
        assert stats.resumes == 0
        assert stats.bytes_written > 0
        metrics = stats.as_metrics()
        assert metrics["checkpoint.snapshots"] == stats.snapshots

    def test_resume_from_latest_is_bit_identical(self, tmp_path):
        straight = _run_to_completion(_fresh())

        store = SnapshotStore(root=tmp_path / "ckpt")
        partial = _fresh()
        run_with_checkpoints(partial, store, run_id="w",
                             max_cycles=40_000, every_cycles=20_000)
        assert not partial.halted

        resumed = _fresh()
        stats = run_with_checkpoints(resumed, store, run_id="w",
                                     max_cycles=10_000_000,
                                     every_cycles=20_000)
        assert stats.restores == 1
        assert stats.resumes == 1
        assert resumed.halted
        assert _machine_signature(resumed) == _machine_signature(straight)

    def test_resume_false_starts_cold(self, tmp_path):
        store = SnapshotStore(root=tmp_path / "ckpt")
        machine = _fresh()
        run_with_checkpoints(machine, store, run_id="w",
                             max_cycles=40_000, every_cycles=20_000)
        cold = _fresh()
        stats = run_with_checkpoints(cold, store, run_id="w",
                                     max_cycles=40_000,
                                     every_cycles=20_000, resume=False)
        assert stats.restores == 0


# ------------------------------------------------------ kill -9 recovery
class TestKillResume:
    def test_sigkilled_run_resumes_and_matches_reference(self, tmp_path):
        from repro.checkpoint.campaign import (_chaos_reference,
                                               checkpoint_point)

        store_root = str(tmp_path / "ckpt")
        worker = multiprocessing.Process(
            target=checkpoint_point,
            kwargs=dict(workload="sieve", run_id="kill",
                        store_root=store_root, every_cycles=2_000,
                        kill_at_snapshot=1))
        worker.start()
        worker.join(timeout=120)
        assert worker.exitcode == -signal.SIGKILL

        # generations survived the kill; the rerun resumes warm
        payload = checkpoint_point(workload="sieve", run_id="kill",
                                   store_root=store_root,
                                   every_cycles=2_000)
        assert payload["checkpoint"]["checkpoint.resumes"] == 1
        reference = _chaos_reference("sieve")
        assert payload["metrics"] == reference["metrics"]
        assert payload["console"] == reference["console"]


# ------------------------------------------------------------ fuzz oracle
class TestOracleIntegration:
    def test_checkpoint_pair_finds_no_divergence(self):
        from repro.fuzz.gen import GenConfig, generate_program
        from repro.fuzz.oracle import (_programs_for,
                                       check_checkpoint_equivalence,
                                       run_pipeline)

        generated = generate_program(7, GenConfig(mode="isa", quick=True))
        _naive, reorganized = _programs_for(generated)
        reference = run_pipeline(reorganized, generated)
        report = check_checkpoint_equivalence(reorganized, generated,
                                              reference)
        assert report is None


# ------------------------------------------------------------------- CLI
class TestCli:
    def test_workload_run_with_checkpointing(self, capsys):
        from repro.tools import cli

        run_id = "pytest-cli"
        try:
            cli.main(["workload", "sieve", "--checkpoint-every", "40000",
                      "--checkpoint-id", run_id])
            out = capsys.readouterr().out
            assert "checkpoint:" in out
            assert "snapshot(s)" in out
        finally:
            SnapshotStore().delete_run(run_id)
