"""The observability layer: registry, harvest, tracer, export, gate.

Five claims are pinned here, mirroring ``tests/test_decode_memo.py``'s
equivalence style for the zero-overhead argument:

* the ``Metrics`` registry is strict -- uncatalogued names and kind
  mismatches are bugs, not silent new time series;
* ``collect_machine`` reports only catalogued names, covers every
  counter the components keep, and is a pure read (harvesting twice,
  or not at all, never changes a run's architectural results);
* attaching a :class:`~repro.telemetry.tracer.CycleTracer` is
  architecturally invisible: a traced run retires the same cycles,
  stats, and register state as an untraced one, while the ring buffers
  stay bounded;
* the Perfetto export validates against its own schema checker and the
  checker rejects malformed events;
* harness aggregation is deterministic -- a parallel sweep and a serial
  sweep build byte-identical ``METRICS_summary.json`` payloads -- and
  ``check_results.py --metrics-file`` catches every tampering mode
  (bent analysis CPI, hand-edited gauges, broken counter identities,
  missing sections).
"""

import dataclasses
import json

import pytest

from repro.core import Machine
from repro.telemetry import (CATALOG, CATALOG_BY_NAME, CycleTracer, Metrics,
                             check_counter_consistency,
                             derived_from_counters, merge_counter_snapshots,
                             trace_events, validate_trace_events, write_trace)
from repro.workloads import get


def _machine(config=None) -> Machine:
    from repro.analysis.cpi import scaled_memory_config

    machine = Machine(config or scaled_memory_config())
    machine.load_program(get("fib").program())
    return machine


# --------------------------------------------------------------- registry
class TestRegistryStrictness:
    def test_uncatalogued_name_is_rejected(self):
        with pytest.raises(KeyError, match="not in the catalog"):
            Metrics().counter("pipeline.totally_made_up")

    def test_kind_mismatch_is_rejected(self):
        with pytest.raises(TypeError, match="catalogued as a counter"):
            Metrics().gauge("pipeline.cycles")

    def test_non_strict_allows_scratch_names(self):
        scratch = Metrics(strict=False)
        scratch.counter("scratch.anything").inc()
        assert scratch.snapshot()["scratch.anything"] == 1

    def test_catalog_names_are_unique_and_kinded(self):
        assert len(CATALOG) == len(CATALOG_BY_NAME)
        assert {spec.kind for spec in CATALOG} <= {
            "counter", "gauge", "histogram"}


# ---------------------------------------------------------------- harvest
class TestCollectMachine:
    def test_snapshot_names_are_all_catalogued(self):
        machine = _machine()
        machine.run()
        snapshot = machine.metrics().snapshot()
        assert snapshot
        for name in snapshot:
            assert name in CATALOG_BY_NAME, name

    def test_every_catalogued_counter_is_reported(self):
        machine = _machine()
        machine.run()
        snapshot = machine.metrics().snapshot()
        # multi.* counters come from the MultiMachine harvest
        # (collect_multi), checkpoint.* from the checkpoint watchdog
        # (CheckpointStats.as_metrics), service.* from the job server
        # (ServiceServer.metrics) -- not from a single machine
        counters = {spec.name for spec in CATALOG
                    if spec.kind == "counter"
                    and not spec.name.startswith(("multi.",
                                                  "checkpoint.",
                                                  "service."))}
        assert counters <= set(snapshot)

    def test_collect_multi_reports_every_catalogued_counter(self):
        from repro.multi import MultiMachine
        from repro.workloads.parallel import parallel_program

        system = MultiMachine(2)
        system.load_program(parallel_program("pring", 2, 8))
        system.run(2_000_000)
        assert system.all_halted
        snapshot = system.metrics().snapshot()
        # checkpoint.* counters are the watchdog's and service.* the
        # job server's, not the system's
        counters = {spec.name for spec in CATALOG
                    if spec.kind == "counter"
                    and not spec.name.startswith(("checkpoint.",
                                                  "service."))}
        assert counters <= set(snapshot)
        for name in snapshot:
            assert name in CATALOG_BY_NAME, name
        assert snapshot["multi.nodes"] == 2
        assert snapshot["multi.cycles"] == system.cycles
        assert (snapshot["multi.bus.acquisitions"]
                == system.bus.acquisitions)

    def test_harvest_is_a_pure_read(self):
        machine = _machine()
        machine.run()
        stats_before = dataclasses.asdict(machine.stats)
        first = machine.metrics().snapshot()
        second = machine.metrics().snapshot()
        assert first == second
        assert dataclasses.asdict(machine.stats) == stats_before

    def test_counter_cpi_equals_analysis_cpi(self):
        from repro.analysis.cpi import measure_with_metrics, \
            scaled_memory_config

        breakdown, metrics = measure_with_metrics(
            "fib", scaled_memory_config())
        snapshot = metrics.snapshot()
        counters = {k: v for k, v in snapshot.items()
                    if isinstance(v, int)}
        assert check_counter_consistency(counters, breakdown.cpi) == []
        assert snapshot["pipeline.cpi"] == pytest.approx(breakdown.cpi)


# ----------------------------------------------------------------- tracer
class TestTracerInvisibility:
    def test_traced_run_is_architecturally_identical(self):
        untraced = _machine()
        untraced.run()

        traced = _machine()
        tracer = CycleTracer(traced)
        tracer.run()

        assert traced.halted and untraced.halted
        assert dataclasses.asdict(traced.stats) == dataclasses.asdict(
            untraced.stats)
        assert list(traced.regs) == list(untraced.regs)

    def test_untraced_machine_has_no_tracer_state(self):
        # the zero-overhead contract: a machine nobody traces carries no
        # telemetry hook beyond the (None) trace sink it always had
        machine = _machine()
        assert machine.pipeline.trace is None
        machine.run()
        assert machine.pipeline.trace is None

    def test_ring_buffers_respect_capacity(self):
        machine = _machine()
        tracer = CycleTracer(machine, capacity=16)
        tracer.run()
        assert machine.halted
        assert len(tracer.records) <= 16
        assert len(tracer.stall_spans) <= 16
        assert machine.stats.retired > 16     # it genuinely wrapped

    def test_minimum_lifetime_is_the_pipe_depth(self):
        machine = _machine()
        metrics = Metrics()
        tracer = CycleTracer(machine, metrics=metrics)
        tracer.run()
        lifetimes = [record.lifetime for record in tracer.records
                     if record.lifetime]
        assert lifetimes and min(lifetimes) >= 5   # IF..WB, Figure 1

    def test_stall_spans_match_stall_counters(self):
        machine = _machine()
        tracer = CycleTracer(machine)
        tracer.run()
        by_kind = {"icache_miss": 0, "ecache_late_miss": 0}
        for kind, start, end in tracer.stall_spans:
            by_kind[kind] += end - start + 1
        assert by_kind["icache_miss"] == machine.stats.icache_stall_cycles
        assert by_kind["ecache_late_miss"] == \
            machine.stats.data_stall_cycles


# ---------------------------------------------------------------- perfetto
class TestPerfettoExport:
    @pytest.fixture(scope="class")
    def payload(self):
        machine = _machine()
        tracer = CycleTracer(machine)
        tracer.run()
        return trace_events(tracer)

    def test_schema_is_valid(self, payload):
        assert validate_trace_events(payload) == []

    def test_tracks_cover_stages_and_stalls(self, payload):
        tids = {event["tid"] for event in payload["traceEvents"]}
        assert {1, 2, 3, 4, 5} <= tids       # the five pipestages
        assert 6 in tids                     # fib cold-misses the Icache

    def test_validator_rejects_malformed_events(self, payload):
        broken = json.loads(json.dumps(payload))
        del broken["traceEvents"][0]["ph"]
        broken["traceEvents"][1]["ts"] = "yesterday"
        problems = validate_trace_events(broken)
        assert any("ph" in problem for problem in problems)
        assert any("ts" in problem for problem in problems)
        assert validate_trace_events({"traceEvents": []})

    def test_write_trace_roundtrips(self, tmp_path):
        machine = _machine()
        tracer = CycleTracer(machine, capacity=256)
        tracer.run()
        out = tmp_path / "trace.json"
        write_trace(out, tracer)
        loaded = json.loads(out.read_text())
        assert validate_trace_events(loaded) == []
        names = {event["name"] for event in loaded["traceEvents"]}
        assert "process_name" in names       # metadata made it through


# ------------------------------------------------- aggregation determinism
def _cpi_results(parallel: bool):
    from repro.harness.runner import Job, Runner
    from repro.harness.experiments import _POINT_FNS

    jobs = [Job(id=f"cpi/{name}", fn=_POINT_FNS["workload-cpi"],
                params={"name": name}, sweep="workload-cpi")
            for name in ("fib", "listops")]
    return Runner(max_workers=2).run(jobs, parallel=parallel)


class TestAggregationDeterminism:
    def test_serial_and_parallel_summaries_are_byte_identical(self):
        from repro.harness.bench import build_metrics_summary

        serial = build_metrics_summary(_cpi_results(parallel=False))
        parallel = build_metrics_summary(_cpi_results(parallel=True))
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)
        assert serial["workloads"] == ["fib", "listops"]
        assert check_metrics_payload_clean(serial)

    def test_totals_are_sums_and_gauges_rederive(self):
        from repro.harness.bench import build_metrics_summary

        summary = build_metrics_summary(_cpi_results(parallel=False))
        snapshots = list(summary["per_workload"].values())
        assert summary["totals"] == merge_counter_snapshots(snapshots)
        assert summary["derived"] == derived_from_counters(
            summary["totals"])


def check_metrics_payload_clean(summary) -> bool:
    """True when ``check_metrics_file`` passes the payload verbatim."""
    import pathlib
    import tempfile

    from repro.tools.check_results import check_metrics_file

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "METRICS_summary.json"
        path.write_text(json.dumps(summary))
        return check_metrics_file(path) == []


# -------------------------------------------------- check_results failures
class TestMetricsFileGate:
    @pytest.fixture(scope="class")
    def summary(self):
        from repro.harness.bench import build_metrics_summary

        return build_metrics_summary(_cpi_results(parallel=False))

    def _check(self, tmp_path, payload):
        from repro.tools.check_results import check_metrics_file

        path = tmp_path / "METRICS_summary.json"
        path.write_text(json.dumps(payload))
        return check_metrics_file(path)

    def test_clean_summary_passes(self, tmp_path, summary):
        assert self._check(tmp_path, summary) == []

    def test_missing_file_and_bad_json_fail(self, tmp_path):
        from repro.tools.check_results import check_metrics_file

        assert check_metrics_file(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert any("not valid JSON" in msg
                   for msg in check_metrics_file(bad))

    def test_bent_analysis_cpi_fails_the_identity(self, tmp_path, summary):
        tampered = json.loads(json.dumps(summary))
        tampered["analysis"]["fib"]["cpi"] += 0.1
        failures = self._check(tmp_path, tampered)
        assert any("fib" in msg and "cpi" in msg.lower()
                   for msg in failures)

    def test_hand_edited_gauge_fails(self, tmp_path, summary):
        tampered = json.loads(json.dumps(summary))
        tampered["derived"]["pipeline.cpi"] = 1.0
        failures = self._check(tmp_path, tampered)
        assert any("derived" in msg for msg in failures)

    def test_broken_counter_identity_fails(self, tmp_path, summary):
        tampered = json.loads(json.dumps(summary))
        tampered["totals"]["ecache.late_miss.retries"] += 5
        failures = self._check(tmp_path, tampered)
        assert any("late" in msg for msg in failures)

    def test_missing_section_is_named(self, tmp_path, summary):
        tampered = json.loads(json.dumps(summary))
        del tampered["totals"]
        failures = self._check(tmp_path, tampered)
        assert any("'totals'" in msg for msg in failures)
