"""Decode-memoization equivalence: the cache must be invisible.

``MachineConfig.decode_cache`` memoizes instruction decode per
``(mode, pc)``.  These tests pin the safety argument:

* on randomized looped programs, a machine with the cache on and one
  with it off produce **identical** :class:`PipelineStats` and register
  state, and both agree with the instruction-level golden simulator;
* self-modifying code (a store into the instruction stream) invalidates
  the memo, so patched instructions take effect exactly as they do with
  the cache off.

Random programs are seeded: every run tests the same programs.
"""

import dataclasses
import random

import pytest

from repro.asm import assemble
from repro.core import Machine, MachineConfig
from repro.core.golden import GoldenSimulator
from repro.isa import encode

SCRATCH_WORDS = 16

#: three-register ops whose pipeline and naive semantics agree
_THREE_REG = ("add", "sub", "and", "or", "xor")
_SHIFTS = ("sll", "srl", "sra")


def random_loop_program(seed: int, body_ops: int = 40,
                        iterations: int = 6) -> str:
    """A seeded straight-line body run ``iterations`` times.

    Only constructs where pipeline semantics (delay slots, bypassing)
    and naive golden semantics coincide: arithmetic over t0-t7, stores
    and loads to a private scratch block (a nop after every load keeps
    the consumer out of the load delay slot), and a counted backward
    branch whose delay slots hold nops.
    """
    rng = random.Random(seed)
    temps = [f"t{i}" for i in range(8)]
    lines = ["_start:", "        la t8, scratch", "        li s1, 1",
             f"        li s0, {iterations}"]
    for reg in temps:
        lines.append(f"        li {reg}, {rng.randint(-40000, 40000)}")
    lines.append("loop:")
    for _ in range(body_ops):
        kind = rng.random()
        if kind < 0.6:
            op = rng.choice(_THREE_REG)
            rd, r1, r2 = (rng.choice(temps) for _ in range(3))
            lines.append(f"        {op} {rd}, {r1}, {r2}")
        elif kind < 0.75:
            op = rng.choice(_SHIFTS)
            rd, rs = rng.choice(temps), rng.choice(temps)
            lines.append(f"        {op} {rd}, {rs}, {rng.randint(0, 31)}")
        elif kind < 0.9:
            reg = rng.choice(temps)
            off = rng.randrange(SCRATCH_WORDS)
            lines.append(f"        st {reg}, {off}(t8)")
        else:
            reg = rng.choice(temps)
            off = rng.randrange(SCRATCH_WORDS)
            lines.append(f"        ld {reg}, {off}(t8)")
            lines.append("        nop")
    lines += ["        sub s0, s0, s1",
              "        bne s0, r0, loop",
              "        nop",
              "        nop",
              "        halt",
              f"scratch: .space {SCRATCH_WORDS}"]
    return "\n".join(lines)


def run_machine(program, decode_cache: bool) -> Machine:
    machine = Machine(MachineConfig(decode_cache=decode_cache))
    machine.load_program(program)
    machine.run()
    assert machine.halted
    return machine


@pytest.mark.parametrize("seed", [0, 1, 2, 0xC0FFEE, 0xBADCAFE])
def test_decode_cache_is_cycle_invisible(seed):
    program = assemble(random_loop_program(seed))
    cached = run_machine(program, decode_cache=True)
    uncached = run_machine(program, decode_cache=False)

    assert list(cached.regs) == list(uncached.regs)
    assert dataclasses.asdict(cached.stats) == dataclasses.asdict(
        uncached.stats)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_decode_cache_matches_golden(seed):
    program = assemble(random_loop_program(seed))
    cached = run_machine(program, decode_cache=True)

    golden = GoldenSimulator()
    golden.load_program(program)
    golden.run()
    # t0-t7 carry the randomized dataflow; s0 the loop counter.
    assert list(cached.regs)[10:18] == list(golden.regs)[10:18]
    assert cached.regs[26] == golden.regs[26]


def _self_modifying_source() -> str:
    # The loop body starts as "li t3, 11"; iteration 1 stores the encoded
    # word for "li t3, 44" over it, so iteration 2 must decode the
    # patched instruction: t5 ends at 11 + 44.  A stale memo would
    # replay 11 + 11.
    patched = encode(assemble("_start: li t3, 44").listing[0])
    return f"""
    _start:
        la t0, target
        la t1, newword
        ld t2, 0(t1)
        nop
        li s1, 1
        li s0, 2
        li t5, 0
    loop:
    target:
        li t3, 11
        add t5, t5, t3
        st t2, 0(t0)
        sub s0, s0, s1
        bne s0, r0, loop
        nop
        nop
        halt
    newword: .word {patched}
    """


def test_store_to_code_invalidates_memo():
    program = assemble(_self_modifying_source())
    cached = run_machine(program, decode_cache=True)
    uncached = run_machine(program, decode_cache=False)

    assert cached.regs[15] == 11 + 44            # t5: patch took effect
    assert list(cached.regs) == list(uncached.regs)
    assert dataclasses.asdict(cached.stats) == dataclasses.asdict(
        uncached.stats)
