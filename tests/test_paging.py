"""Demand paging: the restartability demonstration.

"All instructions are restartable so MIPS-X will support a dynamic, paged
virtual memory system."  These tests boot a tiny pager: data accesses to
non-resident pages trap (CAUSE_PGFLT), the handler reads the faulting
address from the off-chip MMU, maps the page, and returns -- the faulting
load or store re-executes transparently.
"""


from repro.asm import assemble
from repro.core import Machine, PswBit, perfect_memory_config
from repro.ecache.memory import MmuDevice

MMU_BASE = 0x3FFF00 + 0xD0

PAGER = f"""
.org 0
    br handler
    nop
    nop
.org 0x40
handler:
    ; save registers a real pager would
    st   t0, pager_save0
    st   t1, pager_save1
    ; which cause?  (a full OS would dispatch; we only get page faults)
    li   t0, {MMU_BASE}
    ld   t1, 0(t0)        ; faulting word address
    nop
    st   t1, 0(t0)        ; map the page containing it
    ; count the fault
    ld   t1, pager_faults
    nop
    addi t1, t1, 1
    st   t1, pager_faults
    ld   t0, pager_save0
    ld   t1, pager_save1
    jpc
    jpc
    jpcrs
pager_save0:  .word 0
pager_save1:  .word 0
pager_faults: .word 0
"""


def boot(body: str) -> Machine:
    """Pager at the vector; the program body at 0x100 turns paging on."""
    source = PAGER + f"""
    .org 0x100
    _start:
        li   t9, {MMU_BASE + 2}
        li   t8, 1
        st   t8, 0(t9)        ; enable paging (all pages non-resident)
    """ + body
    machine = Machine(perfect_memory_config())
    program = assemble(source)
    machine.load_program(program)
    # code/stack pages are not demand-paged in this demo: pre-map the
    # low pages the program itself lives in... data accesses to the
    # program's own words still page-fault unless touched lazily, which
    # is the point; pre-map nothing and let everything fault on demand.
    machine._test_program = program
    return machine


class TestDemandPaging:
    def test_faulting_load_restarts(self):
        machine = boot("""
            la   t0, value
            ld   t1, 0(t0)     ; page fault -> handler maps -> re-executes
            nop
            li   a0, 0x3FFFF0
            st   t1, 0(a0)     ; MMIO: never paged
            halt
        value: .word 1234
        """)
        machine.run(100_000)
        assert machine.halted
        assert machine.console.values == [1234]
        assert machine.stats.page_faults == 1
        assert machine.memory.mmu.faults == 1

    def test_faulting_store_restarts(self):
        machine = boot("""
            la   t0, cell
            li   t1, 77
            st   t1, 0(t0)     ; page fault on a store
            ld   t2, 0(t0)     ; now resident: no second fault
            nop
            li   a0, 0x3FFFF0
            st   t2, 0(a0)
            halt
        cell: .space 1
        """)
        machine.run(100_000)
        assert machine.console.values == [77]
        assert machine.stats.page_faults == 1

    def test_one_fault_per_page(self):
        pages = 5
        stride = MmuDevice.PAGE_WORDS
        machine = boot(f"""
            li   t0, 0x4000        ; array spans {pages} pages
            li   t1, {pages}
            li   t2, 0
        loop:
            st   t2, 0(t0)         ; first touch of each page faults
            ld   t3, 0(t0)
            nop
            add  t2, t3, t2
            addi t2, t2, 1
            addi t0, t0, {stride}
            addi t1, t1, -1
            bgt  t1, r0, loop
            nop
            nop
            li   a0, 0x3FFFF0
            st   t2, 0(a0)
            halt
        """)
        machine.run(1_000_000)
        assert machine.halted
        assert machine.stats.page_faults == pages
        # the loop's arithmetic survived all the restarts:
        # t2' = (t2 + t2) + 1 each iteration -> 2^pages - 1
        assert machine.console.values == [2 ** pages - 1]

    def test_cause_bit_distinguishes_page_faults(self):
        source = PAGER.replace(
            "    ld   t1, 0(t0)        ; faulting word address",
            "    movfrs s4, psw\n"
            "    ld   t1, 0(t0)        ; faulting word address")
        machine = Machine(perfect_memory_config())
        machine.load_program(assemble(source + f"""
        .org 0x100
        _start:
            li   t9, {MMU_BASE + 2}
            li   t8, 1
            st   t8, 0(t9)
            ld   t0, 0x5000(r0)
            nop
            halt
        """))
        machine.run(100_000)
        assert machine.halted
        assert machine.regs[30] & (1 << PswBit.CAUSE_PGFLT)

    def test_eviction_refaults(self):
        machine = boot(f"""
            la   t0, cell
            li   t1, 5
            st   t1, 0(t0)         ; fault 1 (maps the page)
            li   t9, {MMU_BASE + 1}
            st   t0, 0(t9)         ; evict the page again
            ld   t2, 0(t0)         ; fault 2
            nop
            li   a0, 0x3FFFF0
            st   t2, 0(a0)
            halt
        cell: .space 1
        """)
        machine.run(100_000)
        assert machine.console.values == [5]
        assert machine.stats.page_faults == 2

    def test_paging_disabled_never_faults(self):
        machine = Machine(perfect_memory_config())
        machine.load_program(assemble("""
        _start:
            ld t0, 0x5000(r0)
            nop
            halt
        """))
        machine.run(10_000)
        assert machine.stats.page_faults == 0

    def test_workload_under_demand_paging(self):
        """A full compiled workload runs correctly with every data page
        demand-paged -- the strongest restartability statement."""
        from repro.workloads import get

        program = get("sieve").reorganize().unit.assemble(base=0x400)
        pager = assemble(PAGER)
        machine = Machine(perfect_memory_config())
        machine.memory.system.load_image(program.image)
        machine.memory.system.load_image(pager.image)
        machine.memory.mmu.enabled = True
        machine.pipeline.reset(program.entry)
        machine.run(30_000_000)
        assert machine.halted
        assert machine.console.values == [303]
        assert machine.stats.page_faults > 0
        # one fault per touched page, not per access (page 0 is pinned)
        assert machine.stats.page_faults == len(
            machine.memory.mmu.resident - machine.memory.mmu.PINNED)
