"""Tests for the two control FSMs (Figures 3 and 4) and the PSW/PC units."""

from repro.core import (
    CacheMissFsm,
    MissState,
    PcChain,
    PcUnit,
    Psw,
    PswBit,
    SquashFsm,
    SquashState,
)


class TestSquashFsm:
    def test_starts_normal(self):
        fsm = SquashFsm()
        assert fsm.state is SquashState.NORMAL
        assert not fsm.squash_line and not fsm.exception_line

    def test_branch_wrong_asserts_squash_only(self):
        fsm = SquashFsm()
        fsm.step(exception=False, branch_wrong=True)
        assert fsm.state is SquashState.BRANCH_SQUASH
        assert fsm.squash_line and not fsm.exception_line

    def test_exception_asserts_both_lines(self):
        fsm = SquashFsm()
        fsm.step(exception=True, branch_wrong=False)
        assert fsm.state is SquashState.EXCEPTION
        assert fsm.squash_line and fsm.exception_line

    def test_exception_wins_over_branch(self):
        fsm = SquashFsm()
        fsm.step(exception=True, branch_wrong=True)
        assert fsm.state is SquashState.EXCEPTION

    def test_returns_to_normal(self):
        fsm = SquashFsm()
        fsm.step(exception=True, branch_wrong=False)
        fsm.step(exception=False, branch_wrong=False)
        assert fsm.state is SquashState.NORMAL

    def test_transition_table_covers_all_states(self):
        rows = SquashFsm.transition_table()
        states = {row[0] for row in rows}
        assert states == {state.value for state in SquashState}


class TestCacheMissFsm:
    def test_idle_initially(self):
        fsm = CacheMissFsm()
        assert not fsm.stalled

    def test_two_cycle_miss_sequence(self):
        fsm = CacheMissFsm()
        fsm.begin_miss(2)
        states = [fsm.state]
        while fsm.tick():
            states.append(fsm.state)
        assert states == [MissState.FETCH_MISS, MissState.FETCH_NEXT]
        assert fsm.stall_cycles == 2

    def test_external_wait_inserts_wait_states(self):
        fsm = CacheMissFsm()
        fsm.begin_miss(2, external_cycles=3)
        states = [fsm.state]
        while fsm.tick():
            states.append(fsm.state)
        assert states[0] is MissState.FETCH_MISS
        assert states.count(MissState.WAIT_EXTERNAL) == 3
        assert states[-1] is MissState.FETCH_NEXT
        assert fsm.stall_cycles == 5

    def test_zero_cycle_miss_is_noop(self):
        fsm = CacheMissFsm()
        fsm.begin_miss(0)
        assert not fsm.stalled
        assert fsm.miss_sequences == 0

    def test_nested_miss_rejected(self):
        fsm = CacheMissFsm()
        fsm.begin_miss(2)
        try:
            fsm.begin_miss(2)
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected RuntimeError")

    def test_transition_table_shape(self):
        rows = CacheMissFsm.transition_table()
        assert ("IDLE", "icache miss", "FETCH_MISS") in rows


class TestPsw:
    def test_reset_state(self):
        psw = Psw()
        assert psw.system_mode
        assert psw.shift_enabled
        assert not psw.interrupts_enabled
        assert not psw.trap_on_overflow

    def test_cause_bits_exclusive(self):
        psw = Psw()
        psw.set_cause(PswBit.CAUSE_OVF)
        psw.set_cause(PswBit.CAUSE_INT)
        assert psw.get(PswBit.CAUSE_INT)
        assert not psw.get(PswBit.CAUSE_OVF)
        assert psw.cause_name() == "CAUSE_INT"

    def test_copy_is_independent(self):
        psw = Psw()
        copy = psw.copy()
        psw.interrupts_enabled = True
        assert not copy.interrupts_enabled

    def test_named_setters(self):
        psw = Psw()
        psw.system_mode = False
        psw.trap_on_overflow = True
        assert not psw.system_mode and psw.trap_on_overflow

    def test_repr_is_informative(self):
        assert "sys" in repr(Psw())


class TestPcChain:
    def test_shift_records_three_pcs(self):
        chain = PcChain()
        chain.shift(10, 11, 12)
        assert chain.snapshot() == [10, 11, 12]

    def test_pop_returns_oldest_and_shifts(self):
        chain = PcChain()
        chain.shift(10, 11, 12)
        assert chain.pop() == 10
        assert chain.pop() == 11
        assert chain.pop() == 12

    def test_write_individual_entries(self):
        chain = PcChain()
        for index, value in enumerate([7, 8, 9]):
            chain.write(index, value)
        assert chain.read(0) == 7 and chain.read(2) == 9


class TestPcUnit:
    def test_increments_by_default(self):
        unit = PcUnit(reset_pc=100)
        unit.advance()
        assert unit.fetch_pc == 101

    def test_redirect_wins(self):
        unit = PcUnit(reset_pc=100)
        unit.redirect(500)
        unit.advance()
        assert unit.fetch_pc == 500
        unit.advance()
        assert unit.fetch_pc == 501

    def test_vector_clears_pending_redirect(self):
        unit = PcUnit(reset_pc=100)
        unit.redirect(500)
        unit.vector(0)
        unit.advance()
        assert unit.fetch_pc == 1
