"""Unit + property tests for ALU, funnel shifter, register file, MD register."""

from hypothesis import given, strategies as st

from repro.core.datapath import (
    Alu,
    FunnelShifter,
    MdRegister,
    RegisterFile,
    to_signed,
    to_unsigned,
)

words = st.integers(0, 0xFFFFFFFF)


class TestConversions:
    def test_to_signed_boundaries(self):
        assert to_signed(0) == 0
        assert to_signed(0x7FFFFFFF) == 2**31 - 1
        assert to_signed(0x80000000) == -(2**31)
        assert to_signed(0xFFFFFFFF) == -1

    @given(words)
    def test_roundtrip(self, w):
        assert to_unsigned(to_signed(w)) == w


class TestRegisterFile:
    def test_r0_reads_zero(self):
        regs = RegisterFile()
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_write_read(self):
        regs = RegisterFile()
        regs[5] = 0xDEADBEEF
        assert regs[5] == 0xDEADBEEF

    def test_writes_wrap_to_32_bits(self):
        regs = RegisterFile()
        regs[1] = 1 << 35
        assert regs[1] == 0

    def test_snapshot_is_independent(self):
        regs = RegisterFile()
        regs[3] = 7
        snap = regs.snapshot()
        regs[3] = 9
        assert snap[3] == 7


class TestAlu:
    def test_add_overflow_positive(self):
        out = Alu.add(0x7FFFFFFF, 1)
        assert out.overflow and out.value == 0x80000000

    def test_add_overflow_negative(self):
        out = Alu.add(0x80000000, 0xFFFFFFFF)  # INT_MIN + (-1)
        assert out.overflow

    def test_add_no_overflow(self):
        out = Alu.add(5, 7)
        assert not out.overflow and out.value == 12

    def test_sub_overflow(self):
        out = Alu.sub(0x80000000, 1)
        assert out.overflow

    def test_unsigned_wraparound_without_signed_overflow(self):
        out = Alu.add(0xFFFFFFFF, 1)  # -1 + 1 = 0: wraps, no signed overflow
        assert out.value == 0 and not out.overflow

    @given(a=words, b=words)
    def test_add_matches_python_semantics(self, a, b):
        out = Alu.add(a, b)
        assert out.value == to_unsigned(to_signed(a) + to_signed(b))
        assert out.overflow == (
            not -(1 << 31) <= to_signed(a) + to_signed(b) < (1 << 31))

    @given(a=words, b=words)
    def test_sub_matches_python_semantics(self, a, b):
        out = Alu.sub(a, b)
        assert out.value == to_unsigned(to_signed(a) - to_signed(b))

    @given(a=words, b=words)
    def test_compare_total_order(self, a, b):
        lt = Alu.compare("lt", a, b)
        eq = Alu.compare("eq", a, b)
        gt = Alu.compare("gt", a, b)
        assert [lt, eq, gt].count(True) == 1
        assert Alu.compare("le", a, b) == (lt or eq)
        assert Alu.compare("ge", a, b) == (gt or eq)
        assert Alu.compare("ne", a, b) == (not eq)


class TestFunnelShifter:
    @given(value=words, amount=st.integers(0, 31))
    def test_sll_matches_python(self, value, amount):
        assert FunnelShifter.sll(value, amount) == (value << amount) & 0xFFFFFFFF

    @given(value=words, amount=st.integers(0, 31))
    def test_srl_matches_python(self, value, amount):
        assert FunnelShifter.srl(value, amount) == value >> amount

    @given(value=words, amount=st.integers(0, 31))
    def test_sra_matches_python(self, value, amount):
        assert FunnelShifter.sra(value, amount) == to_unsigned(
            to_signed(value) >> amount)

    @given(value=words, amount=st.integers(0, 31))
    def test_rotl_preserves_bits(self, value, amount):
        rotated = FunnelShifter.rotl(value, amount)
        assert bin(rotated).count("1") == bin(value).count("1")
        assert FunnelShifter.rotl(rotated, (32 - amount) % 32) == value

    @given(high=words, low=words, amount=st.integers(0, 32))
    def test_funnel_window(self, high, low, amount):
        combined = (high << 32) | low
        expected = (combined >> (32 - amount)) & 0xFFFFFFFF if amount else high
        assert FunnelShifter.funnel(high, low, amount) == expected


class TestMdRegister:
    def multiply(self, a: int, b: int) -> int:
        """Full 32-step shift-and-add multiply using mstep."""
        md = MdRegister()
        md.value = b
        acc = 0
        operand = a
        for _ in range(32):
            acc = md.mstep(acc, operand).value
            operand = (operand << 1) & 0xFFFFFFFF
        return acc

    def divide(self, a: int, b: int):
        """Full 32-step restoring divide using dstep (unsigned)."""
        md = MdRegister()
        md.value = a
        remainder = 0
        for _ in range(32):
            remainder = md.dstep(remainder, b).value
        return md.value, remainder  # quotient, remainder

    def test_small_multiply(self):
        assert self.multiply(7, 6) == 42

    def test_multiply_by_zero(self):
        assert self.multiply(12345, 0) == 0

    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
    def test_multiply_matches_python(self, a, b):
        assert self.multiply(a, b) == (a * b) & 0xFFFFFFFF

    @given(a=words, b=words)
    def test_multiply_low_word(self, a, b):
        assert self.multiply(a, b) == (a * b) & 0xFFFFFFFF

    def test_small_divide(self):
        quotient, remainder = self.divide(43, 5)
        assert (quotient, remainder) == (8, 3)

    @given(a=words, b=st.integers(1, 0xFFFFFFFF))
    def test_divide_matches_python(self, a, b):
        quotient, remainder = self.divide(a, b)
        assert quotient == a // b
        assert remainder == a % b
