"""The workload registry: Pascal suite, Lisp-like suite, FP kernels.

These are the programs every experiment runs.  ``get(name)`` returns a
:class:`Workload`; ``run_workload`` compiles (with the reorganizer), loads
and runs one on a fresh machine.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Optional

from repro.asm.assembler import parse as parse_asm
from repro.asm.unit import Program
from repro.coproc.fpu import Fpu
from repro.core.config import MachineConfig
from repro.core.processor import Machine
from repro.lang.compiler import compile_spl
from repro.reorg.delay_slots import MIPSX_SCHEME, BranchScheme
from repro.reorg.reorganizer import ReorgResult, reorganize
from repro.workloads.extra import EXTRA_PROGRAMS, EXTRA_TEXT
from repro.workloads.fp import dot_product_source, saxpy_source
from repro.workloads.lisp import LISP_PROGRAMS
from repro.workloads.parallel import (PARALLEL_PROGRAMS, PARALLEL_WORKLOADS,
                                      expected_console, parallel_program,
                                      parallel_source)
from repro.workloads.stanford import PASCAL_PROGRAMS


@dataclasses.dataclass(frozen=True)
class Workload:
    name: str
    category: str                 #: "pascal" | "lisp" | "fp"
    source: str
    is_assembly: bool = False
    expected: Optional[tuple] = None  #: known console output, if any
    needs_fpu: bool = False

    def reorganize(self, scheme: BranchScheme = MIPSX_SCHEME,
                   profile: Optional[dict] = None) -> ReorgResult:
        """Naive code -> reorganized unit (fresh every call)."""
        if self.is_assembly:
            return reorganize(parse_asm(self.source), scheme, profile=profile)
        compilation = compile_spl(self.source, scheme, profile=profile)
        return compilation.reorg

    def naive_program(self) -> Program:
        if self.is_assembly:
            return parse_asm(self.source).assemble()
        return compile_spl(self.source, scheme=None).naive_program()

    def program(self, scheme: BranchScheme = MIPSX_SCHEME,
                profile: Optional[dict] = None) -> Program:
        return self.reorganize(scheme, profile).unit.assemble()


def _registry() -> Dict[str, Workload]:
    workloads: Dict[str, Workload] = {}
    for name, (source, expected) in PASCAL_PROGRAMS.items():
        workloads[name] = Workload(
            name=name, category="pascal", source=source,
            expected=tuple(expected) if expected else None)
    for name, (source, expected) in LISP_PROGRAMS.items():
        workloads[name] = Workload(
            name=name, category="lisp", source=source,
            expected=tuple(expected) if expected else None)
    for name, (source, expected) in EXTRA_PROGRAMS.items():
        workloads[name] = Workload(
            name=name, category="extra", source=source,
            expected=tuple(expected) if expected is not None else None)
    workloads["fp_dot"] = Workload(
        name="fp_dot", category="fp", source=dot_product_source(),
        is_assembly=True, needs_fpu=True)
    workloads["fp_saxpy"] = Workload(
        name="fp_saxpy", category="fp", source=saxpy_source(),
        is_assembly=True, needs_fpu=True)
    # single-node builds of the parallel suite: correctness coverage on
    # the uniprocessor; the multiprocessor runs them via
    # repro.workloads.parallel.parallel_program at higher node counts
    for name, (source, expected) in PARALLEL_PROGRAMS.items():
        workloads[name] = Workload(
            name=name, category="parallel", source=source,
            expected=tuple(expected))
    return workloads


WORKLOADS: Dict[str, Workload] = _registry()

PASCAL_SUITE: List[str] = [name for name, w in WORKLOADS.items()
                           if w.category == "pascal"]
LISP_SUITE: List[str] = [name for name, w in WORKLOADS.items()
                         if w.category == "lisp"]
FP_SUITE: List[str] = [name for name, w in WORKLOADS.items()
                       if w.category == "fp"]
#: extra correctness workloads, excluded from the calibrated experiment
#: suites (see EXPERIMENTS.md)
EXTRA_SUITE: List[str] = [name for name, w in WORKLOADS.items()
                          if w.category == "extra"]
#: parallel workloads (single-node builds); the multi-scaling sweep runs
#: them at N nodes, and they stay out of the calibrated uniprocessor
#: experiment suites
PARALLEL_SUITE: List[str] = [name for name, w in WORKLOADS.items()
                             if w.category == "parallel"]


def get(name: str) -> Workload:
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; "
                       f"available: {sorted(WORKLOADS)}")
    return WORKLOADS[name]


@functools.lru_cache(maxsize=None)
def cached_program(name: str, slots: int = 2, squash: str = "optional",
                   squash_if_go: bool = False) -> Program:
    """Compiled+reorganized image, cached by (workload, scheme) -- the
    compile step is deterministic, so benchmarks can share it."""
    scheme = BranchScheme(slots, squash, squash_if_go=squash_if_go)
    return get(name).program(scheme)


def run_workload(name: str, config: Optional[MachineConfig] = None,
                 scheme: BranchScheme = MIPSX_SCHEME,
                 max_cycles: int = 30_000_000,
                 trace=None) -> Machine:
    """Compile, reorganize, load, and run one workload to completion."""
    workload = get(name)
    machine = Machine(config)
    if workload.needs_fpu:
        machine.attach_coprocessor(Fpu())
    if trace is not None:
        machine.set_trace(trace)
    machine.load_program(cached_program(
        name, scheme.slots, scheme.squash, scheme.squash_if_go))
    machine.run(max_cycles)
    if not machine.halted:
        raise RuntimeError(f"workload {name} did not halt in {max_cycles} cycles")
    return machine


__all__ = [
    "EXTRA_SUITE",
    "EXTRA_TEXT",
    "FP_SUITE",
    "LISP_SUITE",
    "PARALLEL_SUITE",
    "PARALLEL_WORKLOADS",
    "PASCAL_SUITE",
    "WORKLOADS",
    "Workload",
    "cached_program",
    "expected_console",
    "get",
    "parallel_program",
    "parallel_source",
    "run_workload",
]
