"""Floating-point workloads for the coprocessor interface studies.

The coprocessor design discussion in the paper turned when "traces from
some floating point intensive code" showed a significant fraction of FP
instructions; the non-cached interface would have paid an Icache-miss
penalty on every one of them.  SPL has no floating type, so these workloads
are generated assembly: dense FPU instruction streams (``ldf``/``stf``,
``cop`` arithmetic, compare + ``movfrc`` status reads) over vectors --
close kin to the Linpack-style kernels of the era.
"""

from __future__ import annotations

from typing import List

from repro.coproc.fpu import FpuOp, float_to_word, fpu_op


def dot_product_source(n: int = 64) -> str:
    """Assembly for a dot product of two length-``n`` single vectors.

    The inner loop is 2 ``ldf`` + 1 ``fmul`` + 1 ``fadd`` per element:
    roughly half the executed instructions address the FPU, matching the
    "significant percentage" the paper saw in FP-intensive traces.
    """
    a_words = [float_to_word(0.5 + 0.25 * i) for i in range(n)]
    b_words = [float_to_word(2.0 - 0.015625 * i) for i in range(n)]
    fmul = fpu_op(FpuOp.FMUL, 1, 2)       # f1 <- f1 * f2
    fadd = fpu_op(FpuOp.FADD, 0, 1)       # f0 <- f0 + f1
    mfc = fpu_op(FpuOp.MFC_RAW, 0)        # read f0 bits
    lines: List[str] = [
        "_start:",
        "    la   t0, vec_a",
        "    la   t1, vec_b",
        f"    li   t2, {n}",
        "    movtoc r0, %d(r0)" % fpu_op(FpuOp.MTC_RAW, 0),  # f0 <- 0.0
        "loop:",
        "    ldf  f1, 0(t0)",
        "    ldf  f2, 0(t1)",
        f"    cop  {fmul}(r0)",
        f"    cop  {fadd}(r0)",
        "    addi t0, t0, 1",
        "    addi t1, t1, 1",
        "    addi t2, t2, -1",
        "    bgt  t2, r0, loop",
        f"    movfrc t3, {mfc}(r0)",
        "    li   t4, 0x3FFFF0",
        "    st   t3, 0(t4)",
        "    halt",
        "vec_a: .word " + ", ".join(str(w) for w in a_words),
        "vec_b: .word " + ", ".join(str(w) for w in b_words),
    ]
    return "\n".join(lines) + "\n"


def saxpy_source(n: int = 64) -> str:
    """``y <- a*x + y`` over single-precision vectors, with a final
    FPU-condition branch (fcmp + movfrc status + CPU branch): the paper's
    replacement for the dropped coprocessor-branch instructions."""
    x_words = [float_to_word(1.0 + 0.125 * i) for i in range(n)]
    y_words = [float_to_word(float(n - i)) for i in range(n)]
    a_word = float_to_word(1.5)
    fmul = fpu_op(FpuOp.FMUL, 2, 3)      # f2 <- f2 * f3 (x * a)
    fadd = fpu_op(FpuOp.FADD, 2, 4)      # f2 <- f2 + f4 (+ y)
    fcmp = fpu_op(FpuOp.FCMP, 2, 5)      # compare result against f5
    status = fpu_op(FpuOp.MFC_STATUS)
    lines = [
        "_start:",
        "    la   t0, vec_x",
        "    la   t1, vec_y",
        f"    li   t2, {n}",
        "    la   t3, scalar_a",
        "    ldf  f3, 0(t3)",
        "    li   t9, 0",              # count of results > 100.0
        "    la   t4, hundred",
        "    ldf  f5, 0(t4)",
        "loop:",
        "    ldf  f2, 0(t0)",
        "    ldf  f4, 0(t1)",
        f"    cop  {fmul}(r0)",
        f"    cop  {fadd}(r0)",
        "    stf  f2, 0(t1)",
        f"    cop  {fcmp}(r0)",
        f"    movfrc t5, {status}(r0)",
        "    li   t6, 4",              # STATUS_GT
        "    and  t5, t5, t6",
        "    beq  t5, r0, next",
        "    addi t9, t9, 1",
        "next:",
        "    addi t0, t0, 1",
        "    addi t1, t1, 1",
        "    addi t2, t2, -1",
        "    bgt  t2, r0, loop",
        "    li   t4, 0x3FFFF0",
        "    st   t9, 0(t4)",
        "    halt",
        "scalar_a: .word %d" % a_word,
        "hundred: .word %d" % float_to_word(100.0),
        "vec_x: .word " + ", ".join(str(w) for w in x_words),
        "vec_y: .word " + ", ".join(str(w) for w in y_words),
    ]
    return "\n".join(lines) + "\n"


def expected_dot_product(n: int = 64) -> float:
    """Single-precision reference value for :func:`dot_product_source`."""
    import struct

    def single(value: float) -> float:
        return struct.unpack("<f", struct.pack("<f", value))[0]

    total = 0.0
    for i in range(n):
        a = single(0.5 + 0.25 * i)
        b = single(2.0 - 0.015625 * i)
        total = single(total + single(a * b))
    return total


def expected_saxpy_count(n: int = 64) -> int:
    """Reference count of saxpy results greater than 100.0."""
    import struct

    def single(value: float) -> float:
        return struct.unpack("<f", struct.pack("<f", value))[0]

    a = single(1.5)
    count = 0
    for i in range(n):
        x = single(1.0 + 0.125 * i)
        y = single(float(n - i))
        result = single(single(x * a) + y)
        if result > 100.0:
            count += 1
    return count
