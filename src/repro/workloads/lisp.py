"""Lisp-like workloads: cons-cell list processing in SPL.

The paper attributes the higher Lisp no-op fraction (18.3% vs 15.6% for
Pascal) to "a larger number of jumps and many load-load interlocks caused
by chasing car and cdr chains".  These programs model exactly that: a cons
heap as parallel ``car``/``cdr`` arrays, with list construction, traversal,
reversal, membership, association lookup, and a recursive tree fold --
every inner loop is a dependent load chain (`p := cdr[p]` ...), which the
reorganizer can rarely fill, reproducing the interlock-heavy profile.
"""

LIST_OPS = """
program listops;
var car[4001], cdr[4001], freeptr, resultsum;

func cons(a, d);
var cell;
begin
    cell := freeptr;
    freeptr := freeptr + 1;
    car[cell] := a;
    cdr[cell] := d;
    return cell;
end;

func buildlist(n);
var lst, i;
begin
    lst := 0;  { nil }
    for i := n downto 1 do lst := cons(i, lst);
    return lst;
end;

func sumlist(lst);
var total;
begin
    total := 0;
    while lst <> 0 do begin
        total := total + car[lst];
        lst := cdr[lst];
    end;
    return total;
end;

func reverselist(lst);
var acc;
begin
    acc := 0;
    while lst <> 0 do begin
        acc := cons(car[lst], acc);
        lst := cdr[lst];
    end;
    return acc;
end;

func nth(lst, n);
begin
    while n > 0 do begin
        lst := cdr[lst];
        n := n - 1;
    end;
    return car[lst];
end;

func lengthof(lst);
var n;
begin
    n := 0;
    while lst <> 0 do begin
        n := n + 1;
        lst := cdr[lst];
    end;
    return n;
end;

begin
    freeptr := 1;
    resultsum := buildlist(300);
    write(sumlist(resultsum));          { 300*301/2 = 45150 }
    resultsum := reverselist(resultsum);
    write(car[resultsum]);              { 300 }
    write(nth(resultsum, 10));          { 290 }
    write(lengthof(resultsum));         { 300 }
end.
"""

ASSOC = """
program assoc;
var car[6001], cdr[6001], freeptr, table, hits, probes, k;

func cons(a, d);
var cell;
begin
    cell := freeptr;
    freeptr := freeptr + 1;
    car[cell] := a;
    cdr[cell] := d;
    return cell;
end;

{ an alist of (key . value) pairs; pair cells share the cons heap }
func acons(key, value, alist);
begin
    return cons(cons(key, value), alist);
end;

func assoclookup(key, alist);
begin
    while alist <> 0 do begin
        if car[car[alist]] = key then return cdr[car[alist]];
        alist := cdr[alist];
    end;
    return -1;
end;

begin
    freeptr := 1;
    table := 0;
    for k := 1 to 150 do table := acons(k, k * k, table);
    hits := 0;
    probes := 0;
    for k := 1 to 150 do begin
        probes := probes + 1;
        if assoclookup(k, table) = k * k then hits := hits + 1;
    end;
    write(hits);                        { 150 }
    write(assoclookup(12, table));      { 144 }
    write(assoclookup(999, table));     { -1 }
end.
"""

TREE_FOLD = """
program treefold;
var car[8001], cdr[8001], freeptr;

func cons(a, d);
var cell;
begin
    cell := freeptr;
    freeptr := freeptr + 1;
    car[cell] := a;
    cdr[cell] := d;
    return cell;
end;

{ a balanced binary tree as nested conses: leaf = negative payload,
  node = cons(left, right); fold sums all leaves }
func buildtree(depth, seed);
begin
    if depth = 0 then return -seed;
    return cons(buildtree(depth - 1, seed * 2),
                buildtree(depth - 1, seed * 2 + 1));
end;

func foldtree(t);
begin
    if t < 0 then return -t;
    return foldtree(car[t]) + foldtree(cdr[t]);
end;

begin
    freeptr := 1;
    write(foldtree(buildtree(9, 1)));
end.
"""


#: name -> (source, expected console output)
LISP_PROGRAMS = {
    "listops": (LIST_OPS, [45150, 300, 290, 300]),
    "assoc": (ASSOC, [150, 144, -1]),
    "treefold": (TREE_FOLD, None),  # verified against the golden model
}
