"""Additional workloads beyond the calibrated experiment suites.

These exercise corners the Stanford-style suites do not -- bit
manipulation through the funnel shifter, character output, and a
heavier mixed-recursion program -- and serve as extra end-to-end
correctness fodder.  They are registered with category ``extra`` and
deliberately excluded from the experiment suites, whose numbers are
calibrated in EXPERIMENTS.md.
"""

BITCOUNT = """
program bitcount;
var total, i, x, count;

func popcount(v);
var c;
begin
    c := 0;
    while v <> 0 do begin
        c := c + (v - (v div 2) * 2);   { low bit }
        v := v div 2;
    end;
    return c;
end;

begin
    total := 0;
    x := 1;
    for i := 1 to 24 do begin
        x := (x * 5 + 1) mod 65536;
        total := total + popcount(x);
    end;
    write(total);
    write(popcount(0));
    write(popcount(65535));
end.
"""

STRINGS = """
program strings;
var buf[32], n, i, t;

proc emit(code);
begin
    writec(code);
end;

begin
    { build "MIPS-X" backwards in the buffer, then print it forwards }
    buf[0] := 'X';
    buf[1] := '-';
    buf[2] := 'S';
    buf[3] := 'P';
    buf[4] := 'I';
    buf[5] := 'M';
    n := 6;
    for i := 1 to n do emit(buf[n - i]);
    { then a digit string: print 1987 without div-by-10 helpers }
    emit('1'); emit('9'); emit('8'); emit('7');
end.
"""

GCD_CHAIN = """
program gcdchain;
var total, a, b, k;

func gcd(x, y);
begin
    if y = 0 then return x;
    return gcd(y, x mod y);
end;

begin
    total := 0;
    a := 1071;
    b := 462;
    for k := 1 to 20 do begin
        total := total + gcd(a + k, b + k * 3);
    end;
    write(total);
    write(gcd(270, 192));
end.
"""

NQUEENS_COUNT = """
program nqueens6;
{ smaller n-queens counting variant with explicit column bitsets }
var solutions;

func solve(row, cols, diag1, diag2, n);
var c, count, bit;
begin
    if row = n then return 1;
    count := 0;
    bit := 1;
    c := 0;
    while c < n do begin
        if (cols div bit) mod 2 = 0 then
            if (diag1 div bit) mod 2 = 0 then
                if (diag2 div bit) mod 2 = 0 then
                    count := count + solve(row + 1,
                                           cols + bit,
                                           (diag1 + bit) * 2,
                                           (diag2 + bit) div 2,
                                           n);
        bit := bit * 2;
        c := c + 1;
    end;
    return count;
end;

begin
    solutions := solve(0, 0, 0, 0, 6);
    write(solutions);    { 4 solutions for n = 6 }
end.
"""

LISP_MAPREDUCE = """
program mapreduce;
var car[3001], cdr[3001], freeptr;

func cons(a, d);
var cell;
begin
    cell := freeptr;
    freeptr := freeptr + 1;
    car[cell] := a;
    cdr[cell] := d;
    return cell;
end;

func buildrange(n);
var lst, i;
begin
    lst := 0;
    for i := n downto 1 do lst := cons(i, lst);
    return lst;
end;

{ map: square every element into a fresh list (order preserved) }
func mapsquare(lst);
begin
    if lst = 0 then return 0;
    return cons(car[lst] * car[lst], mapsquare(cdr[lst]));
end;

func reduceadd(lst);
var total;
begin
    total := 0;
    while lst <> 0 do begin
        total := total + car[lst];
        lst := cdr[lst];
    end;
    return total;
end;

func filterodd(lst);
begin
    if lst = 0 then return 0;
    if car[lst] mod 2 = 1 then
        return cons(car[lst], filterodd(cdr[lst]));
    return filterodd(cdr[lst]);
end;

begin
    freeptr := 1;
    write(reduceadd(mapsquare(buildrange(30))));  { sum k^2, k=1..30 }
    write(reduceadd(filterodd(buildrange(30))));  { sum of odd k <= 30 }
end.
"""


def _sum_squares(n):
    return n * (n + 1) * (2 * n + 1) // 6


#: name -> (source, expected console output)
EXTRA_PROGRAMS = {
    "bitcount": (BITCOUNT, None),           # verified against golden
    "strings": (STRINGS, []),               # output is on the char port
    "gcdchain": (GCD_CHAIN, None),
    "nqueens6": (NQUEENS_COUNT, [4]),
    "mapreduce": (LISP_MAPREDUCE,
                  [_sum_squares(30), sum(k for k in range(1, 31) if k % 2)]),
}

#: character-port expectations, keyed by name
EXTRA_TEXT = {
    "strings": "MIPS-X1987",
}
