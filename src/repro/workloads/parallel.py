"""Parallel SPL workloads for the shared-memory multiprocessor.

Three programs, each parameterized by node count and self-checking its
result, written the way 1987-era shared-memory software had to be on a
machine with no atomic read-modify-write (sequential consistency plus
classic algorithms):

* **psieve** -- the sieve of Eratosthenes with static block
  partitioning: every node initialises and later counts its own block,
  node 0 serially finalises the prime prefix ``[2..sqrt(SIZE)]``, then
  all nodes mark composites in their blocks in parallel.  Phases are
  separated by a flag-array barrier (each node writes only its own
  ``arrive`` slot and spins on the others -- SC-safe without atomics).
* **pintmm** -- integer matrix multiply with static row-block
  partitioning and the same barrier; the checksum over the product
  matrix is node-count invariant.
* **pring** -- a producer-consumer ring: node ``i`` produces into ring
  buffer ``i`` and consumes from buffer ``i-1 mod n``, every buffer
  guarded by a 2-process **Peterson lock** between its producer and its
  consumer.  Capacity >= 2 makes the ring deadlock-free (each node
  alternates produce/consume, so at most one slot per node is in excess
  and the buffers can never all be full).  Node 0 writes the summed
  ordering-error count and the checksum delta -- ``[0, 0]`` on success
  for every node count.

All three bake their constants (node count, problem size) into the
generated source and write results to the console **only from node 0
after a barrier**, so the output is deterministic and -- by
construction -- identical across node counts, which is what the
``check_results.py --multi`` bit-equality gate leans on.

Programs are compiled with the multiprocessor prologue
(``node_stack_words``), giving each node a private stack below the
shared stack top; on one node (``cpuid() == 0``) the image degrades to
the plain uniprocessor layout, so the ``ncpu=1`` variants also register
in the ordinary workload suite.
"""

from __future__ import annotations

import functools
from typing import Dict, List

from repro.asm.unit import Program
from repro.lang.codegen import NODE_STACK_WORDS
from repro.lang.compiler import compile_spl

#: the parallel workload names, in registry order
PARALLEL_WORKLOADS = ("psieve", "pintmm", "pring")

#: default problem sizes (psieve: sieve bound; pintmm: matrix dim;
#: pring: items per node)
DEFAULT_SIZES = {"psieve": 600, "pintmm": 12, "pring": 40}

#: reduced sizes for --quick sweeps and CI smoke jobs
QUICK_SIZES = {"psieve": 240, "pintmm": 8, "pring": 16}

#: ring-buffer capacity (>= 2 keeps the ring deadlock-free)
RING_CAPACITY = 4

_BARRIER = """
proc barrier(phase);
var j, v;
begin
    arrive[cpuid()] := phase;
    for j := 0 to {last} do begin
        v := 0;
        while v < phase do v := arrive[j];
    end;
end;
"""


def _sieve_source(ncpu: int, size: int) -> str:
    sqrt = int(size ** 0.5)
    chunk = -(-(size - 1) // ncpu)      # ceil((size-1)/ncpu) numbers/node
    barrier = _BARRIER.format(last=ncpu - 1)
    return f"""
program psieve;
var flags[{size + 1}], arrive[{ncpu}], partial[{ncpu}];
{barrier}
proc worker(me);
var lo, hi, i, p, k, count;
begin
    lo := 2 + me * {chunk};
    hi := lo + {chunk - 1};
    if hi > {size} then hi := {size};
    {{ phase 0: every node initialises its own block }}
    if lo <= hi then
        for i := lo to hi do flags[i] := 1;
    barrier(1);
    {{ phase 1: node 0 serially finalises the prime prefix [2..sqrt] }}
    if me = 0 then
        for p := 2 to {sqrt} do
            if flags[p] = 1 then begin
                k := p * p;
                while k <= {sqrt} do begin
                    flags[k] := 0;
                    k := k + p;
                end;
            end;
    barrier(2);
    {{ phase 2: every node marks composites inside its own block }}
    for p := 2 to {sqrt} do
        if flags[p] = 1 then begin
            k := p * p;
            if k < lo then k := ((lo + p - 1) div p) * p;
            while k <= hi do begin
                flags[k] := 0;
                k := k + p;
            end;
        end;
    barrier(3);
    {{ phase 3: per-node prime counts; node 0 combines and reports }}
    count := 0;
    if lo <= hi then
        for i := lo to hi do
            if flags[i] = 1 then count := count + 1;
    partial[me] := count;
    barrier(4);
    if me = 0 then begin
        count := 0;
        for i := 0 to {ncpu - 1} do count := count + partial[i];
        write(count);
    end;
end;

begin
    worker(cpuid());
end.
"""


def _intmm_source(ncpu: int, dim: int) -> str:
    rows = -(-dim // ncpu)              # ceil(dim/ncpu) rows per node
    barrier = _BARRIER.format(last=ncpu - 1)
    return f"""
program pintmm;
var ima[{dim * dim}], imb[{dim * dim}], imr[{dim * dim}],
    arrive[{ncpu}], partial[{ncpu}];
{barrier}
proc worker(me);
var lo, hi, i, j, k, t, sum;
begin
    lo := me * {rows};
    hi := lo + {rows - 1};
    if hi > {dim - 1} then hi := {dim - 1};
    {{ each node initialises its own row block of both operands }}
    if lo <= hi then
        for i := lo to hi do
            for j := 0 to {dim - 1} do begin
                t := i * {dim} + j;
                ima[t] := (t * 7 + 3) mod 31 - 15;
                imb[t] := (t * 5 + 11) mod 29 - 14;
            end;
    barrier(1);
    {{ row-partitioned product }}
    if lo <= hi then
        for i := lo to hi do
            for j := 0 to {dim - 1} do begin
                sum := 0;
                for k := 0 to {dim - 1} do
                    sum := sum + ima[i * {dim} + k] * imb[k * {dim} + j];
                imr[i * {dim} + j] := sum;
            end;
    barrier(2);
    {{ per-node checksums; node 0 combines and reports }}
    sum := 0;
    if lo <= hi then
        for i := lo to hi do
            for j := 0 to {dim - 1} do
                sum := sum + imr[i * {dim} + j];
    partial[me] := sum;
    barrier(3);
    if me = 0 then begin
        sum := 0;
        for i := 0 to {ncpu - 1} do sum := sum + partial[i];
        write(sum);
    end;
end;

begin
    worker(cpuid());
end.
"""


def _ring_source(ncpu: int, items: int) -> str:
    cap = RING_CAPACITY
    barrier = _BARRIER.format(last=ncpu - 1)
    return f"""
program pring;
var qbuf[{ncpu * cap}], qhead[{ncpu}], qtail[{ncpu}], qcount[{ncpu}],
    pflag[{ncpu * 2}], pturn[{ncpu}],
    arrive[{ncpu}], sums[{ncpu}], errs[{ncpu}];
{barrier}
{{ 2-process Peterson lock per ring buffer: role 0 = producer (the
  buffer's owner node), role 1 = consumer (the next node around) }}
proc lock(b, role);
var other, v;
begin
    other := 1 - role;
    pflag[b * 2 + role] := 1;
    pturn[b] := other;
    v := 1;
    while v = 1 do begin
        v := 0;
        if pflag[b * 2 + other] = 1 then
            if pturn[b] = other then v := 1;
    end;
end;

proc unlock(b, role);
begin
    pflag[b * 2 + role] := 0;
end;

proc produce(b, value);
var done, c;
begin
    done := 0;
    while done = 0 do begin
        lock(b, 0);
        c := qcount[b];
        if c < {cap} then begin
            qbuf[b * {cap} + qhead[b]] := value;
            qhead[b] := qhead[b] + 1;
            if qhead[b] >= {cap} then qhead[b] := 0;
            qcount[b] := c + 1;
            done := 1;
        end;
        unlock(b, 0);
    end;
end;

func consume(b);
var v, c, got;
begin
    got := 0;
    while got = 0 do begin
        lock(b, 1);
        c := qcount[b];
        if c > 0 then begin
            v := qbuf[b * {cap} + qtail[b]];
            qtail[b] := qtail[b] + 1;
            if qtail[b] >= {cap} then qtail[b] := 0;
            qcount[b] := c - 1;
            got := 1;
        end;
        unlock(b, 1);
    end;
    return v;
end;

proc worker(me);
var prev, i, v, sum, err;
begin
    prev := me - 1;
    if prev < 0 then prev := {ncpu - 1};
    sum := 0;
    err := 0;
    barrier(1);
    for i := 1 to {items} do begin
        produce(me, me * 4096 + i);
        v := consume(prev);
        if v <> prev * 4096 + i then err := err + 1;
        sum := sum + v;
    end;
    sums[me] := sum;
    errs[me] := err;
    barrier(2);
    if me = 0 then begin
        err := 0;
        sum := 0;
        for i := 0 to {ncpu - 1} do begin
            err := err + errs[i];
            sum := sum + sums[i];
        end;
        {{ recompute the expected checksum; the report is n-invariant }}
        for i := 0 to {ncpu - 1} do begin
            prev := i * 4096;
            for v := 1 to {items} do sum := sum - prev - v;
        end;
        write(err);
        write(sum);
    end;
end;

begin
    worker(cpuid());
end.
"""


_SOURCES = {"psieve": _sieve_source, "pintmm": _intmm_source,
            "pring": _ring_source}


def parallel_source(name: str, ncpu: int, size: int = None) -> str:
    """Generated SPL source for ``name`` at ``ncpu`` nodes.

    ``size`` overrides the workload's default problem size (sieve
    bound / matrix dimension / items per node).
    """
    if name not in _SOURCES:
        raise KeyError(f"unknown parallel workload {name!r}; "
                       f"available: {sorted(_SOURCES)}")
    if not 1 <= ncpu <= 16:
        raise ValueError("ncpu must be between 1 and 16")
    return _SOURCES[name](ncpu, size or DEFAULT_SIZES[name])


@functools.lru_cache(maxsize=None)
def parallel_program(name: str, ncpu: int, size: int = None) -> Program:
    """Compiled+reorganized image for ``name`` at ``ncpu`` nodes, cached.

    Compiled with the per-node stack prologue
    (:data:`repro.lang.codegen.NODE_STACK_WORDS`) so the image runs on a
    :class:`~repro.multi.system.MultiMachine` of any node count up to
    ``ncpu``'s bake-in.
    """
    source = parallel_source(name, ncpu, size)
    return compile_spl(source,
                       node_stack_words=NODE_STACK_WORDS).program()


def expected_console(name: str, ncpu: int, size: int = None) -> List[int]:
    """Independently computed expected console output.

    Deliberately node-count invariant for all three workloads (pring
    reports error counts and a checksum *delta*), so any run can be
    compared bit-for-bit against the single-node reference.
    """
    if name not in _SOURCES:
        raise KeyError(f"unknown parallel workload {name!r}")
    size = size or DEFAULT_SIZES[name]
    if name == "psieve":
        flags = [True] * (size + 1)
        for p in range(2, int(size ** 0.5) + 1):
            if flags[p]:
                for k in range(p * p, size + 1, p):
                    flags[k] = False
        return [sum(1 for i in range(2, size + 1) if flags[i])]
    if name == "pintmm":
        dim = size
        a = [((t * 7 + 3) % 31) - 15 for t in range(dim * dim)]
        b = [((t * 5 + 11) % 29) - 14 for t in range(dim * dim)]
        checksum = 0
        for i in range(dim):
            for j in range(dim):
                checksum += sum(a[i * dim + k] * b[k * dim + j]
                                for k in range(dim))
        return [checksum]
    return [0, 0]   # pring: zero ordering errors, zero checksum delta


#: name -> (ncpu=1 source, expected console) for the workload registry
PARALLEL_PROGRAMS: Dict[str, tuple] = {
    name: (parallel_source(name, 1), expected_console(name, 1))
    for name in PARALLEL_WORKLOADS
}
