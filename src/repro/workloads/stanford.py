"""The Pascal workload suite (Stanford-benchmark analogues in SPL).

The paper's evaluation ran "large Pascal benchmarks" from the Stanford
suite through the compiler/simulator system.  These are the classic
members -- permutations, towers of Hanoi, the eight queens, integer matrix
multiply, bubble sort, quicksort, the sieve -- expressed in SPL, sized so a
full cycle-accurate run stays in the hundreds of thousands of cycles.

Each program writes a small, easily checkable result trail to the console,
which the tests verify against independently computed values.
"""

PERM = """
program perm;
var permarray[12], pctr;

proc swap(a, b);
var t;
begin
    t := permarray[a];
    permarray[a] := permarray[b];
    permarray[b] := t;
end;

proc permute(n);
var k;
begin
    pctr := pctr + 1;
    if n <> 1 then begin
        permute(n - 1);
        for k := n - 1 downto 1 do begin
            swap(n, k);
            permute(n - 1);
            swap(n, k);
        end;
    end;
end;

begin
    pctr := 0;
    permute(6);
    write(pctr);   { number of calls: 1 + n * calls(n-1) pattern }
end.
"""

TOWERS = """
program towers;
var stackheight[4], cellspace[19], cellnext[19], freelist, movesdone;

proc makenull(s);
begin
    stackheight[s] := 0;
end;

func getelement();
var temp;
begin
    temp := freelist;
    freelist := cellnext[freelist];
    return temp;
end;

proc push(i, s);
var localel;
begin
    localel := getelement();
    cellnext[localel] := stackheight[s];
    cellspace[localel] := i;
    stackheight[s] := localel;
end;

func pop(s);
var temp, temp1;
begin
    temp := cellspace[stackheight[s]];
    temp1 := cellnext[stackheight[s]];
    cellnext[stackheight[s]] := freelist;
    freelist := stackheight[s];
    stackheight[s] := temp1;
    return temp;
end;

proc initialize(s, n);
var discctr;
begin
    makenull(s);
    for discctr := n downto 1 do push(discctr, s);
end;

proc move(s1, s2);
begin
    push(pop(s1), s2);
    movesdone := movesdone + 1;
end;

proc tower(i, j, k);
var other;
begin
    if k = 1 then move(i, j)
    else begin
        other := 6 - i - j;
        tower(i, other, k - 1);
        move(i, j);
        tower(other, j, k - 1);
    end;
end;

begin
    movesdone := 0;
    freelist := 1;
    { chain the free list: cell k -> k+1 }
    freelist := 1;
    cellnext[1] := 2;  cellnext[2] := 3;  cellnext[3] := 4;
    cellnext[4] := 5;  cellnext[5] := 6;  cellnext[6] := 7;
    cellnext[7] := 8;  cellnext[8] := 9;  cellnext[9] := 10;
    cellnext[10] := 11; cellnext[11] := 12; cellnext[12] := 13;
    cellnext[13] := 14; cellnext[14] := 15; cellnext[15] := 16;
    cellnext[16] := 17; cellnext[17] := 18; cellnext[18] := 0;
    initialize(1, 10);
    tower(1, 2, 10);
    write(movesdone);  { 2^10 - 1 = 1023 }
end.
"""

QUEENS = """
program queens;
var acol[9], updiag[17], downdiag[32], qrow[9], solutions;

proc try(c);
var r;
begin
    for r := 1 to 8 do
        if acol[r] = 1 then
            if updiag[r + c - 1] = 1 then
                if downdiag[r - c + 15] = 1 then begin
                    qrow[c] := r;
                    acol[r] := 0;
                    updiag[r + c - 1] := 0;
                    downdiag[r - c + 15] := 0;
                    if c = 8 then solutions := solutions + 1
                    else try(c + 1);
                    acol[r] := 1;
                    updiag[r + c - 1] := 1;
                    downdiag[r - c + 15] := 1;
                end;
end;

begin
    solutions := 0;
    for solutions := 1 to 8 do acol[solutions] := 1;
    { mark every diagonal free }
    solutions := 0;
    repeat
        solutions := solutions + 1;
        updiag[solutions] := 1;
    until solutions >= 16;
    solutions := 0;
    repeat
        solutions := solutions + 1;
        downdiag[solutions] := 1;
    until solutions >= 31;
    downdiag[0] := 1;
    updiag[0] := 1;
    solutions := 0;
    try(1);
    write(solutions);  { 92 solutions }
end.
"""

INTMM = """
program intmm;
var ima[64], imb[64], imr[64], checksum, r, c;
{ 8x8 integer matrix multiply, row-major; a[i][j] = ima[i*8+j] }

proc initmatrix(which);
var i, j, t;
begin
    t := 1;
    for i := 0 to 7 do
        for j := 0 to 7 do begin
            t := (t * 5 + i + j) mod 31 - 15;
            if which = 0 then ima[i * 8 + j] := t;
            if which = 1 then imb[i * 8 + j] := t;
        end;
end;

proc innerproduct(row, col);
var i, sum;
begin
    sum := 0;
    for i := 0 to 7 do
        sum := sum + ima[row * 8 + i] * imb[i * 8 + col];
    imr[row * 8 + col] := sum;
end;

begin
    initmatrix(0);
    initmatrix(1);
    for r := 0 to 7 do
        for c := 0 to 7 do
            innerproduct(r, c);
    checksum := 0;
    for r := 0 to 63 do
        checksum := checksum + imr[r];
    write(checksum);
end.
"""

BUBBLE = """
program bubble;
var sortlist[181], biggest, littlest, seed;

func rand();
begin
    seed := (seed * 1309 + 13849) mod 65536;
    return seed;
end;

proc initarr(n);
var i, t;
begin
    seed := 74755;
    biggest := 0;
    littlest := 0;
    for i := 1 to n do begin
        t := rand() - 32768;
        sortlist[i] := t;
        if t > biggest then biggest := t;
        if t < littlest then littlest := t;
    end;
end;

begin
    initarr(180);
    { bubble sort }
    biggest := 180;
    while biggest > 1 do begin
        littlest := 1;
        while littlest < biggest do begin
            if sortlist[littlest] > sortlist[littlest + 1] then begin
                seed := sortlist[littlest];
                sortlist[littlest] := sortlist[littlest + 1];
                sortlist[littlest + 1] := seed;
            end;
            littlest := littlest + 1;
        end;
        biggest := biggest - 1;
    end;
    { verify sorted: count inversions (should be 0) and emit checks }
    seed := 0;
    littlest := 1;
    while littlest < 180 do begin
        if sortlist[littlest] > sortlist[littlest + 1] then seed := seed + 1;
        littlest := littlest + 1;
    end;
    write(seed);            { 0 = sorted }
    write(sortlist[1]);     { minimum }
    write(sortlist[180]);   { maximum }
end.
"""

QUICK = """
program quick;
var sortlist[301], seed, inversions;

func rand();
begin
    seed := (seed * 1309 + 13849) mod 65536;
    return seed;
end;

proc initarr(n);
var i;
begin
    seed := 74755;
    for i := 1 to n do sortlist[i] := rand() - 32768;
end;

proc quicksort(l, r);
var i, j, x, w;
begin
    i := l;
    j := r;
    x := sortlist[(l + r) div 2];
    repeat
        while sortlist[i] < x do i := i + 1;
        while x < sortlist[j] do j := j - 1;
        if i <= j then begin
            w := sortlist[i];
            sortlist[i] := sortlist[j];
            sortlist[j] := w;
            i := i + 1;
            j := j - 1;
        end;
    until i > j;
    if l < j then quicksort(l, j);
    if i < r then quicksort(i, r);
end;

begin
    initarr(300);
    quicksort(1, 300);
    inversions := 0;
    seed := 1;
    while seed < 300 do begin
        if sortlist[seed] > sortlist[seed + 1] then
            inversions := inversions + 1;
        seed := seed + 1;
    end;
    write(inversions);      { 0 = sorted }
    write(sortlist[1]);
    write(sortlist[300]);
end.
"""

SIEVE = """
program sieve;
var flags[2001], count, i, prime, k;

begin
    count := 0;
    for i := 2 to 2000 do flags[i] := 1;
    for i := 2 to 2000 do
        if flags[i] = 1 then begin
            count := count + 1;
            prime := i;
            k := i + i;
            while k <= 2000 do begin
                flags[k] := 0;
                k := k + prime;
            end;
        end;
    write(count);   { 303 primes below 2000 }
end.
"""

FIB = """
program fib;

func fib(n);
begin
    if n < 2 then return n;
    return fib(n - 1) + fib(n - 2);
end;

begin
    write(fib(15));  { 610 }
end.
"""

ACKERMANN = """
program ackermann;

func ack(m, n);
begin
    if m = 0 then return n + 1;
    if n = 0 then return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
end;

begin
    write(ack(2, 4));   { 11 }
    write(ack(3, 3));   { 61 }
end.
"""


#: name -> (source, expected console output)
PASCAL_PROGRAMS = {
    "perm": (PERM, [1237]),            # calls of permute for n=6
    "towers": (TOWERS, [1023]),
    "queens": (QUEENS, [92]),
    "intmm": (INTMM, None),            # values verified by the golden model
    "bubble": (BUBBLE, None),
    "quick": (QUICK, None),
    "sieve": (SIEVE, [303]),
    "fib": (FIB, [610]),
    "ackermann": (ACKERMANN, [11, 61]),
}
