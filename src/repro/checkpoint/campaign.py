"""The ``repro checkpoint`` campaign: the standing recovery gates.

Three sections, each a falsifiable claim about the checkpoint layer:

* **equivalence** -- for every named workload (and a band of fuzz
  seeds), run to a mid-point, snapshot, JSON-round-trip, restore into a
  *fresh* machine, finish, and require the full machine signature
  (registers, MD/PSW, memory, console, caches, all pipeline metrics) to
  be bit-identical to an uninterrupted run -- with the JIT both off and
  on.  This is the differential gate the tentpole promises.
* **chaos** -- run a grid of checkpointed simulation jobs under the
  process harness with a :class:`~repro.harness.runner.ChaosMonkey`
  that SIGKILLs doomed workers *right after their first snapshot
  commits*.  The retried worker must resume from the surviving
  generation (``checkpoint.resumes > 0``) and the merged metrics must
  be byte-identical to a serial, uninterrupted reference run.
* **corruption** -- build a two-generation snapshot ladder, then
  truncate the newest, flip a byte under its sha, forge a bad format
  version, and attempt a wrong-config restore.  Each must raise its
  named error, and ``load_latest`` must fall back to the older good
  generation (never load garbage).

Exit semantics follow the other campaigns: 0 = all gates green,
2 = a gate found a real divergence/recovery failure, 1 = the harness
itself misbehaved (a job died in an unclassified way).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import signal
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.processor import Machine
from repro.harness.bench import REPO_ROOT, write_json_atomic
from repro.harness.runner import Job, Runner
from repro.checkpoint.run import CheckpointStats, run_with_checkpoints
from repro.checkpoint.state import (
    FORMAT,
    SnapshotConfigError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    machine_state,
    restore_machine,
)
from repro.checkpoint.store import SnapshotStore, state_cycles

DEFAULT_REPORT = REPO_ROOT / "CHECKPOINT_campaign.json"

#: each chaos job simulates well under a second of work; a minute means
#: a hang, not a slow machine
JOB_TIMEOUT = 120.0

#: named single-core workloads for the equivalence and chaos sections
WORKLOADS = ("sieve", "bubble")


# ------------------------------------------------------------ equivalence
def _equivalence_cases(fuzz_seeds: int) -> List[Dict[str, Any]]:
    cases: List[Dict[str, Any]] = []
    for name in WORKLOADS:
        for jit in (False, True):
            cases.append({"kind": "workload", "name": name, "jit": jit})
    cases.append({"kind": "multi", "name": "psieve", "nodes": 4})
    for seed in range(fuzz_seeds):
        for jit in (False, True):
            cases.append({"kind": "fuzz", "seed": seed,
                          "mode": ("isa", "lang")[seed % 2], "jit": jit})
    return cases


def _workload_program(name: str):
    from repro.workloads import cached_program

    return cached_program(name)


def _check_workload_case(name: str, jit: bool) -> Dict[str, Any]:
    """Snapshot a named workload halfway, restore fresh, finish, and
    compare against the uninterrupted run -- the oracle's signature
    comparison, without the fuzz generator."""
    from repro.fuzz.oracle import _machine_signature

    program = _workload_program(name)
    config = MachineConfig(jit=jit)

    straight = Machine(config)
    straight.load_program(program)
    straight.run(10_000_000)
    if not straight.halted:
        return {"status": "no-halt", "detail": f"{name} never halted"}
    total = straight.stats.cycles

    first = Machine(config)
    first.load_program(program)
    first.run(max(1, total // 2))
    state = json.loads(json.dumps(first.snapshot()))

    second = Machine(config)
    second.load_program(program)
    second.restore(state)
    second.run(10_000_000)
    if not second.halted:
        return {"status": "no-halt", "detail": f"{name} resumed run hung"}

    want = _machine_signature(straight)
    got = _machine_signature(second)
    if want != got:
        keys = [key for key in want if want[key] != got[key]]
        return {"status": "diverged", "detail": f"signature keys {keys}"}
    return {"status": "ok", "cycles": total,
            "snapshot_cycles": state_cycles(state)}


def _check_multi_case(nodes: int) -> Dict[str, Any]:
    """Same round-trip for the parallel sieve on a MultiMachine."""
    from repro.fuzz.oracle import _machine_signature
    from repro.multi.system import MultiMachine
    from repro.workloads.parallel import parallel_program

    program = parallel_program("psieve", nodes)

    def multi_sig(system: MultiMachine) -> Dict[str, Any]:
        return {
            "nodes": [_machine_signature(machine)
                      for machine in system.machines],
            "bus": dataclasses.asdict(system.bus),
            "cycles": system.cycles,
            "console": (list(system.console.values), system.console.text),
        }

    straight = MultiMachine(nodes)
    straight.load_program(program)
    straight.run(10_000_000)
    if not straight.all_halted:
        return {"status": "no-halt", "detail": "psieve never halted"}
    total = straight.cycles

    first = MultiMachine(nodes)
    first.load_program(program)
    while not first.all_halted and first.cycles < max(1, total // 2):
        first.step()
    state = json.loads(json.dumps(first.snapshot()))

    second = MultiMachine(nodes)
    second.load_program(program)
    second.restore(state)
    second.run(10_000_000)
    if not second.all_halted:
        return {"status": "no-halt", "detail": "psieve resumed run hung"}
    if multi_sig(straight) != multi_sig(second):
        return {"status": "diverged", "detail": "multi signature mismatch"}
    return {"status": "ok", "cycles": total,
            "snapshot_cycles": state_cycles(state)}


def _check_fuzz_case(seed: int, mode: str, jit: bool) -> Dict[str, Any]:
    """One fuzz seed through the oracle's checkpoint differential."""
    from repro.fuzz.gen import GenConfig, generate_program
    from repro.fuzz.oracle import (
        _programs_for,
        check_checkpoint_equivalence,
        run_pipeline,
    )

    generated = generate_program(seed, GenConfig(mode=mode, quick=True))
    _naive, reorganized = _programs_for(generated)
    reference = run_pipeline(reorganized, generated)
    report = check_checkpoint_equivalence(reorganized, generated,
                                          reference, jit=jit)
    if report is None:
        return {"status": "ok"}
    return {"status": "diverged", "detail": report.kind,
            "mismatches": report.mismatches[:3]}


def equivalence_point(case: Dict[str, Any]) -> Dict[str, Any]:
    """One equivalence job (also the picklable Runner entry point)."""
    if case["kind"] == "workload":
        verdict = _check_workload_case(case["name"], case["jit"])
    elif case["kind"] == "multi":
        verdict = _check_multi_case(case["nodes"])
    else:
        verdict = _check_fuzz_case(case["seed"], case["mode"], case["jit"])
    return {**case, **verdict}


def _case_id(case: Dict[str, Any]) -> str:
    if case["kind"] == "workload":
        tail = f"{case['name']}-jit{int(case['jit'])}"
    elif case["kind"] == "multi":
        tail = f"{case['name']}-n{case['nodes']}"
    else:
        tail = f"seed{case['seed']:03d}-{case['mode']}-jit{int(case['jit'])}"
    return f"equiv/{case['kind']}-{tail}"


def run_equivalence(fuzz_seeds: int = 50,
                    workers: Optional[int] = None,
                    parallel: bool = True) -> Dict[str, Any]:
    """The restore-equivalence gate over workloads + fuzz seeds."""
    cases = _equivalence_cases(fuzz_seeds)
    jobs = [Job(id=_case_id(case),
                fn="repro.checkpoint.campaign:equivalence_point",
                params={"case": case}, timeout=JOB_TIMEOUT,
                sweep="checkpoint")
            for case in cases]
    runner = Runner(max_workers=workers, default_timeout=JOB_TIMEOUT)
    results = runner.run(jobs, parallel=parallel)

    rows: List[Dict[str, Any]] = []
    ok = diverged = harness = 0
    for result in results:
        if result.ok and isinstance(result.value, dict):
            verdict = result.value
            rows.append({"id": result.job_id, **verdict})
            if verdict["status"] == "ok":
                ok += 1
            else:
                diverged += 1
        else:
            harness += 1
            rows.append({"id": result.job_id, "status": result.status,
                         "error_kind": result.error_kind,
                         "error": result.error})
    return {"cases": len(cases), "ok": ok, "diverged": diverged,
            "harness_failures": harness,
            "failures": [row for row in rows if row["status"] != "ok"]}


# ------------------------------------------------------------------ chaos
def checkpoint_point(workload: str, run_id: str, store_root: str,
                     every_cycles: int = 2_000,
                     kill_at_snapshot: int = 0) -> Dict[str, Any]:
    """One chaos job: run ``workload`` under the checkpoint watchdog.

    When ``kill_at_snapshot`` is nonzero *and* the store has no prior
    generations for ``run_id`` (a cold first attempt), the process
    SIGKILLs itself right after that snapshot commits -- a worst-case
    mid-run crash with durable state on disk.  The harness retry then
    enters with generations present, resumes, and finishes the run.
    """
    store = SnapshotStore(pathlib.Path(store_root))
    cold = not store.generations(run_id)

    program = _workload_program(workload)
    machine = Machine()
    machine.load_program(program)

    def after_snapshot(count: int, _stats: CheckpointStats) -> None:
        if kill_at_snapshot and cold and count == kill_at_snapshot:
            os.kill(os.getpid(), signal.SIGKILL)

    stats = run_with_checkpoints(machine, store, run_id,
                                 max_cycles=10_000_000,
                                 every_cycles=every_cycles,
                                 after_snapshot=after_snapshot)
    if not machine.halted:
        raise RuntimeError(f"{workload} did not halt under checkpointing")
    metrics = machine.metrics().snapshot()
    return {"metrics": metrics,
            "console": list(machine.console.values),
            "checkpoint": stats.as_metrics()}


def _chaos_reference(workload: str) -> Dict[str, Any]:
    """The uninterrupted, checkpoint-free reference for one workload."""
    machine = Machine()
    machine.load_program(_workload_program(workload))
    machine.run(10_000_000)
    return {"metrics": machine.metrics().snapshot(),
            "console": list(machine.console.values)}


def run_chaos(workers: Optional[int] = None,
              jobs_per_workload: int = 2,
              store_root: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """The chaos-resume gate: SIGKILLed checkpointed jobs must resume
    and merge byte-identical to serial uninterrupted runs."""
    own_tmp: Optional[tempfile.TemporaryDirectory] = None
    if store_root is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="ckpt-chaos-")
        store_root = pathlib.Path(own_tmp.name)
    try:
        jobs = []
        doomed = set()
        for workload in WORKLOADS:
            for copy in range(jobs_per_workload):
                job_id = f"chaos/{workload}-{copy}"
                # the first copy of each workload is the doomed one: it
                # SIGKILLs itself right after snapshot 1 commits
                kill_at = 1 if copy == 0 else 0
                if kill_at:
                    doomed.add(job_id)
                jobs.append(Job(
                    id=job_id,
                    fn="repro.checkpoint.campaign:checkpoint_point",
                    params={"workload": workload,
                            "run_id": job_id.replace("/", "-"),
                            "store_root": str(store_root),
                            "every_cycles": 2_000,
                            "kill_at_snapshot": kill_at},
                    timeout=JOB_TIMEOUT,
                    sweep="checkpoint"))

        runner = Runner(max_workers=workers, default_timeout=JOB_TIMEOUT)
        results = runner.run(jobs, parallel=True)
        merged = {result.job_id: result for result in results}

        references = {workload: _chaos_reference(workload)
                      for workload in WORKLOADS}

        mismatches: List[Dict[str, Any]] = []
        harness = 0
        resumes = 0
        killed_retried = 0
        for job in jobs:
            result = merged[job.id]
            if not result.ok or not isinstance(result.value, dict):
                harness += 1
                mismatches.append({"id": job.id, "kind": "harness",
                                   "detail": result.error or result.status})
                continue
            value = result.value
            resumes += value["checkpoint"].get("checkpoint.resumes", 0)
            if job.id in doomed and result.status == "retried-ok":
                killed_retried += 1
            reference = references[job.params["workload"]]
            got = {"metrics": value["metrics"], "console": value["console"]}
            if (json.dumps(got, sort_keys=True)
                    != json.dumps(reference, sort_keys=True)):
                keys = [key for key in reference["metrics"]
                        if reference["metrics"][key]
                        != value["metrics"].get(key)]
                mismatches.append({"id": job.id, "kind": "diverged",
                                   "detail": f"metric keys {keys[:5]}"})
        return {
            "jobs": len(jobs),
            "doomed": len(doomed),
            "killed_retried": killed_retried,
            "resumes": resumes,
            "harness_failures": harness,
            "diverged": sum(1 for m in mismatches
                            if m["kind"] == "diverged"),
            "mismatches": mismatches,
            "ok": not mismatches and resumes > 0,
        }
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


# ------------------------------------------------------------- corruption
def _corruption_ladder(store: SnapshotStore,
                       run_id: str) -> Tuple[Machine, List[pathlib.Path]]:
    """Two honest generations of a sieve run, newest last."""
    program = _workload_program("sieve")
    machine = Machine()
    machine.load_program(program)
    machine.run(2_000)
    store.save(run_id, machine.snapshot())
    machine.run(machine.stats.cycles + 2_000)
    store.save(run_id, machine.snapshot())
    return machine, store.generations(run_id)


def run_corruption(store_root: Optional[pathlib.Path] = None
                   ) -> Dict[str, Any]:
    """The corruption-rejection gate: every tampered snapshot must raise
    its named error and ``load_latest`` must fall back a generation."""
    own_tmp: Optional[tempfile.TemporaryDirectory] = None
    if store_root is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="ckpt-corrupt-")
        store_root = pathlib.Path(own_tmp.name)
    try:
        cases: List[Dict[str, Any]] = []

        def attempt(name: str, expect: type, fn) -> None:
            try:
                fn()
            except expect as error:
                cases.append({"case": name, "status": "ok",
                              "error": type(error).__name__})
            except Exception as error:  # noqa: BLE001 -- report, don't mask
                cases.append({"case": name, "status": "wrong-error",
                              "error": f"{type(error).__name__}: {error}"})
            else:
                cases.append({"case": name, "status": "not-rejected",
                              "error": None})

        # -- truncated newest generation ------------------------------
        store = SnapshotStore(pathlib.Path(store_root) / "truncate")
        machine, ladder = _corruption_ladder(store, "victim")
        good_older = ladder[0]
        newest = ladder[-1]
        data = newest.read_bytes()
        newest.write_bytes(data[:len(data) // 2])
        attempt("truncated", SnapshotIntegrityError,
                lambda: store.load(newest))
        state, path = store.load_latest("victim")
        cases.append({
            "case": "truncated-fallback",
            "status": "ok" if (path == good_older
                               and state is not None) else "no-fallback",
            "error": None if path == good_older else str(path)})

        # -- single byte flipped under the sha ------------------------
        store = SnapshotStore(pathlib.Path(store_root) / "flip")
        machine, ladder = _corruption_ladder(store, "victim")
        newest = ladder[-1]
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0x01
        newest.write_bytes(bytes(data))
        attempt("flipped-byte", SnapshotIntegrityError,
                lambda: store.load(newest))
        state, path = store.load_latest("victim")
        cases.append({
            "case": "flipped-byte-fallback",
            "status": "ok" if path == ladder[0] else "no-fallback",
            "error": None if path == ladder[0] else str(path)})

        # -- forged format version (valid sha!) -----------------------
        store = SnapshotStore(pathlib.Path(store_root) / "format")
        machine, ladder = _corruption_ladder(store, "victim")
        forged = json.loads(ladder[-1].read_text())
        forged["format"] = FORMAT + 999
        store.save("victim", forged)
        attempt("format-version", SnapshotFormatError,
                lambda: store.load(store.generations("victim")[-1]))

        # -- wrong-config restore -------------------------------------
        state = machine_state(machine)
        other = Machine(MachineConfig(
            icache=dataclasses.replace(MachineConfig().icache, ways=4)))
        other.load_program(_workload_program("sieve"))
        attempt("wrong-config", SnapshotConfigError,
                lambda: restore_machine(other, state))

        failures = [case for case in cases if case["status"] != "ok"]
        return {"cases": cases, "failures": len(failures),
                "ok": not failures}
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


# ------------------------------------------------------------------ driver
def run_campaign(fuzz_seeds: int = 50,
                 workers: Optional[int] = None,
                 parallel: bool = True,
                 quick: bool = False,
                 output: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """Run all three gates and persist the structured report."""
    if quick:
        fuzz_seeds = min(fuzz_seeds, 6)
    equivalence = run_equivalence(fuzz_seeds, workers=workers,
                                  parallel=parallel)
    chaos = run_chaos(workers=workers)
    corruption = run_corruption()

    payload: Dict[str, Any] = {
        "schema": 1,
        "config": {"fuzz_seeds": fuzz_seeds, "quick": quick},
        "equivalence": equivalence,
        "chaos": chaos,
        "corruption": corruption,
        "ok": (equivalence["diverged"] == 0
               and equivalence["harness_failures"] == 0
               and chaos["ok"] and corruption["ok"]),
    }
    path = pathlib.Path(output) if output else DEFAULT_REPORT
    write_json_atomic(path, payload)
    payload["report_path"] = str(path)
    return payload


def exit_code(payload: Dict[str, Any]) -> int:
    """Map a campaign report to the documented exit taxonomy."""
    if (payload["equivalence"]["diverged"]
            or payload["chaos"]["diverged"]
            or payload["chaos"]["resumes"] == 0
            or not payload["corruption"]["ok"]):
        return 2
    if (payload["equivalence"]["harness_failures"]
            or payload["chaos"]["harness_failures"]):
        return 1
    return 0


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a campaign report."""
    equivalence = payload["equivalence"]
    chaos = payload["chaos"]
    corruption = payload["corruption"]
    lines = [
        f"checkpoint campaign "
        f"({payload['config']['fuzz_seeds']} fuzz seeds"
        + (", quick" if payload["config"].get("quick") else "") + ")",
        f"  equivalence     {equivalence['ok']}/{equivalence['cases']} "
        f"bit-identical, {equivalence['diverged']} diverged, "
        f"{equivalence['harness_failures']} harness",
        f"  chaos           {chaos['jobs']} jobs, {chaos['doomed']} "
        f"SIGKILLed, {chaos['killed_retried']} retried, "
        f"{chaos['resumes']} resumes, {chaos['diverged']} diverged",
        f"  corruption      {len(corruption['cases'])} cases, "
        f"{corruption['failures']} failures",
    ]
    for row in equivalence["failures"][:5]:
        lines.append(f"  ! {row['id']}: {row['status']} "
                     f"{row.get('detail', '')}")
    for row in chaos["mismatches"][:5]:
        lines.append(f"  ! {row['id']}: {row['kind']} {row['detail']}")
    for case in corruption["cases"]:
        if case["status"] != "ok":
            lines.append(f"  ! corruption/{case['case']}: "
                         f"{case['status']} ({case['error']})")
    return "\n".join(lines)
