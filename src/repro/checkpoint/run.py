"""Run a machine in checkpointed slices with crash resume.

:func:`run_with_checkpoints` is the auto-checkpoint watchdog: it runs a
machine (or multiprocessor) in bounded slices, drains to quiescence at
each slice boundary, and commits a snapshot generation every ``K``
cycles and/or ``T`` seconds.  Because ``Pipeline.run`` takes an
*absolute* cycle target, the slicing adds zero per-cycle work -- with
checkpointing disabled the hot loop is byte-for-byte the code that ran
before this module existed (the <2% throughput acceptance budget is met
structurally, not by measurement luck).

Resume is the mirror image: ``resume=True`` walks the run's generation
ladder newest-first, restores the first generation that verifies, and
continues.  A run that crashed (or was SIGKILLed by the chaos monkey)
therefore repeats only the cycles after its last committed snapshot,
and -- by the quiescence contract -- finishes bit-identical to a run
that was never interrupted.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, Optional

from repro.checkpoint.state import (
    drain_machine,
    drain_multi,
    machine_state,
    multi_state,
    restore_machine,
    restore_multi,
)
from repro.checkpoint.store import SnapshotStore

#: default checkpoint interval in cycles (``K``)
DEFAULT_EVERY_CYCLES = 250_000


@dataclasses.dataclass
class CheckpointStats:
    """Counters for one checkpointed run (see ``checkpoint.*`` in the
    telemetry catalog)."""

    snapshots: int = 0        #: generations committed
    restores: int = 0         #: successful state restores
    resumes: int = 0          #: runs continued from a prior generation
    restore_rejects: int = 0  #: generations rejected by validation
    fallbacks: int = 0        #: ladder steps past invalid generations
    bytes_written: int = 0    #: snapshot payload bytes committed
    drain_cycles: int = 0     #: extra cycles spent draining to quiescence

    def as_metrics(self) -> Dict[str, int]:
        """Counter values under canonical telemetry catalog names."""
        return {
            "checkpoint.snapshots": self.snapshots,
            "checkpoint.restores": self.restores,
            "checkpoint.resumes": self.resumes,
            "checkpoint.restore_rejects": self.restore_rejects,
            "checkpoint.fallbacks": self.fallbacks,
            "checkpoint.bytes_written": self.bytes_written,
            "checkpoint.drain_cycles": self.drain_cycles,
        }


def _is_multi(target) -> bool:
    return hasattr(target, "machines")


def run_with_checkpoints(target, store: SnapshotStore, run_id: str,
                         max_cycles: int = 10_000_000,
                         every_cycles: int = DEFAULT_EVERY_CYCLES,
                         every_seconds: Optional[float] = None,
                         resume: bool = True,
                         keep: int = 2,
                         after_snapshot: Optional[
                             Callable[[int, "CheckpointStats"], None]] = None,
                         ) -> CheckpointStats:
    """Run ``target`` (Machine or MultiMachine) to halt or ``max_cycles``
    with periodic snapshots; returns the :class:`CheckpointStats`.

    ``after_snapshot(generation_index, stats)`` fires after each commit;
    the chaos campaign uses it to SIGKILL the worker at a known point.
    ``keep`` generations are retained per commit (>= 2 so a torn newest
    write still has a fallback).
    """
    multi = _is_multi(target)
    stats = CheckpointStats()
    if resume:
        before_falls, before_rejects = store.fallbacks, store.rejects
        state, _path = store.load_latest(run_id)
        stats.fallbacks += store.fallbacks - before_falls
        stats.restore_rejects += store.rejects - before_rejects
        if state is not None:
            if multi:
                restore_multi(target, state)
            else:
                restore_machine(target, state)
            stats.restores += 1
            stats.resumes += 1

    def cycles_now() -> int:
        return target.cycles if multi else target.stats.cycles

    def halted() -> bool:
        return target.all_halted if multi else target.halted

    def commit() -> None:
        drained = (drain_multi(target) if multi
                   else drain_machine(target))
        stats.drain_cycles += drained
        state = multi_state(target) if multi else machine_state(target)
        path = store.save(run_id, state)
        stats.snapshots += 1
        stats.bytes_written += path.stat().st_size
        store.prune(run_id, keep=max(2, keep))
        if after_snapshot is not None:
            after_snapshot(stats.snapshots, stats)

    next_wall = (time.monotonic() + every_seconds
                 if every_seconds is not None else None)
    while not halted() and cycles_now() < max_cycles:
        slice_target = min(cycles_now() + max(1, every_cycles), max_cycles)
        target.run(slice_target)
        due = cycles_now() >= slice_target
        if next_wall is not None and time.monotonic() >= next_wall:
            due = True
            next_wall = time.monotonic() + every_seconds
        if halted() or due:
            commit()
    return stats


def resume_state(store: SnapshotStore, run_id: str) -> Optional[Dict[str, Any]]:
    """The newest valid generation of a run, or ``None`` (convenience
    for callers that build the machine from the snapshot's config)."""
    state, _path = store.load_latest(run_id)
    return state


__all__ = [
    "DEFAULT_EVERY_CYCLES",
    "CheckpointStats",
    "run_with_checkpoints",
    "resume_state",
]
