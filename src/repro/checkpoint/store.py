"""Durable, generation-laddered snapshot storage.

Snapshots live next to the trace cache, one directory per run id::

    .trace_cache/checkpoints/<run_id>/gen-0000000000012345.json
    .trace_cache/checkpoints/<run_id>/gen-0000000000012345.json.sha256

Every write is atomic and durable: payload to a temp file, ``fsync`` of
the file *and* its directory entry, ``os.replace`` into place, sha256
sidecar second (so a crash between the two leaves a data file without a
sidecar, which :meth:`SnapshotStore.load` rejects by name).  Writers
serialize on an ``O_CREAT|O_EXCL`` lockfile carrying the owner pid; a
lock whose owner is dead is broken immediately, a merely *old* lock
after :data:`LOCK_STALE_SECONDS`.

Reads are validating and never trust a single generation: ``load``
raises :class:`SnapshotIntegrityError` for truncated/corrupted bytes and
:class:`SnapshotFormatError` for unknown versions, and ``load_latest``
walks the generation ladder newest-first, skipping (and counting) every
invalid generation until one verifies -- the recovery path a crashed or
chaos-killed run resumes through.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint.state import (
    FORMAT,
    SnapshotFormatError,
    SnapshotIntegrityError,
)

#: src/repro/checkpoint/store.py -> repository root
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_ROOT = REPO_ROOT / ".trace_cache" / "checkpoints"

#: a lock older than this is presumed orphaned even if the pid cannot
#: be probed (same policy as the trace store)
LOCK_STALE_SECONDS = 120.0
LOCK_TIMEOUT_SECONDS = 30.0


def _fsync_directory(directory: pathlib.Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_durable(path: pathlib.Path, data: bytes) -> None:
    """Atomic, durable byte write: temp + fsync + replace + dir fsync."""
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        if tmp.exists():
            os.unlink(tmp)
        raise
    _fsync_directory(path.parent)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except (OverflowError, ValueError):
        return False
    return True


class SnapshotStore:
    """Atomic, sha-verified, generation-laddered snapshot files."""

    def __init__(self, root: Optional[pathlib.Path] = None):
        self.root = pathlib.Path(root) if root is not None else DEFAULT_ROOT
        #: invalid generations skipped by :meth:`load_latest`
        self.fallbacks = 0
        #: generations rejected by :meth:`load` (integrity or format)
        self.rejects = 0

    # ---------------------------------------------------------- layout
    def run_dir(self, run_id: str) -> pathlib.Path:
        """Directory holding one run's generation ladder."""
        safe = "".join(ch if (ch.isalnum() or ch in "-_.") else "_"
                       for ch in str(run_id))
        return self.root / safe

    def generations(self, run_id: str) -> List[pathlib.Path]:
        """This run's snapshot files, oldest first."""
        run_dir = self.run_dir(run_id)
        if not run_dir.is_dir():
            return []
        return sorted(path for path in run_dir.glob("gen-*.json"))

    # ----------------------------------------------------------- locks
    def _acquire_lock(self, run_dir: pathlib.Path) -> pathlib.Path:
        lock = run_dir / ".lock"
        deadline = time.monotonic() + LOCK_TIMEOUT_SECONDS
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return lock
            except FileExistsError:
                if self._lock_is_orphaned(lock):
                    try:
                        os.unlink(lock)
                    except FileNotFoundError:
                        pass
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"snapshot lock {lock} held for more than "
                        f"{LOCK_TIMEOUT_SECONDS}s")
                time.sleep(0.05)

    @staticmethod
    def _lock_is_orphaned(lock: pathlib.Path) -> bool:
        """A lock is orphaned when its owner pid is dead (a SIGKILLed
        writer) or when it is simply too old to be live."""
        try:
            raw = lock.read_text()
            mtime = lock.stat().st_mtime
        except (OSError, ValueError):
            return False
        if raw.strip().isdigit() and not _pid_alive(int(raw.strip())):
            return True
        return time.time() - mtime > LOCK_STALE_SECONDS

    # ------------------------------------------------------------ save
    def save(self, run_id: str, state: Dict[str, Any]) -> pathlib.Path:
        """Commit one generation; returns the snapshot path.

        The generation index is the snapshot's cycle count, so the
        ladder sorts by progress and re-saving the same boundary is
        idempotent.
        """
        cycles = state_cycles(state)
        run_dir = self.run_dir(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        path = run_dir / f"gen-{cycles:016d}.json"
        data = json.dumps(state, sort_keys=True).encode("utf-8")
        digest = hashlib.sha256(data).hexdigest()
        lock = self._acquire_lock(run_dir)
        try:
            _write_durable(path, data)
            _write_durable(self._sidecar(path),
                           (digest + "\n").encode("ascii"))
        finally:
            try:
                os.unlink(lock)
            except FileNotFoundError:
                pass
        return path

    # ------------------------------------------------------------ load
    @staticmethod
    def _sidecar(path: pathlib.Path) -> pathlib.Path:
        return path.with_name(path.name + ".sha256")

    def load(self, path: pathlib.Path) -> Dict[str, Any]:
        """Read and fully validate one generation.

        Raises :class:`SnapshotIntegrityError` (missing file/sidecar,
        digest mismatch, undecodable JSON) or
        :class:`SnapshotFormatError` (unknown format version).
        """
        path = pathlib.Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            self.rejects += 1
            raise SnapshotIntegrityError(
                f"snapshot {path} is unreadable: {exc}") from exc
        try:
            recorded = self._sidecar(path).read_text().strip()
        except OSError as exc:
            self.rejects += 1
            raise SnapshotIntegrityError(
                f"snapshot {path} has no sha256 sidecar "
                "(interrupted write?)") from exc
        digest = hashlib.sha256(data).hexdigest()
        if digest != recorded:
            self.rejects += 1
            raise SnapshotIntegrityError(
                f"snapshot {path} fails its sha256 check "
                f"(recorded {recorded[:12]}..., actual {digest[:12]}...)")
        try:
            state = json.loads(data)
        except ValueError as exc:
            self.rejects += 1
            raise SnapshotIntegrityError(
                f"snapshot {path} is not valid JSON: {exc}") from exc
        if not isinstance(state, dict) or state.get("format") != FORMAT:
            self.rejects += 1
            raise SnapshotFormatError(
                f"snapshot {path} has format "
                f"{state.get('format') if isinstance(state, dict) else '?'!r},"
                f" supported format is {FORMAT}")
        return state

    def load_latest(self, run_id: str) -> Tuple[Optional[Dict[str, Any]],
                                                Optional[pathlib.Path]]:
        """Newest generation that verifies, or ``(None, None)``.

        Invalid generations (corrupted, truncated, wrong format) are
        skipped and counted in :attr:`fallbacks` -- the recovery ladder:
        a damaged newest generation silently falls back to the previous
        good one instead of failing the resume.
        """
        for path in reversed(self.generations(run_id)):
            try:
                return self.load(path), path
            except (SnapshotIntegrityError, SnapshotFormatError):
                self.fallbacks += 1
        return None, None

    # ----------------------------------------------------- maintenance
    def prune(self, run_id: str, keep: int = 2) -> int:
        """Drop all but the newest ``keep`` generations; returns the
        number removed.  Two generations are kept by default so one
        corrupted write still leaves a fallback."""
        removed = 0
        generations = self.generations(run_id)
        for path in generations[:-keep] if keep else generations:
            for victim in (path, self._sidecar(path)):
                try:
                    os.unlink(victim)
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

    def delete_run(self, run_id: str) -> None:
        """Remove a run's entire ladder (end-of-campaign cleanup)."""
        import shutil

        shutil.rmtree(self.run_dir(run_id), ignore_errors=True)


def state_cycles(state: Dict[str, Any]) -> int:
    """The cycle coordinate a snapshot was taken at (machine or multi)."""
    if state.get("kind") == "multi":
        return int(state["cycles"])
    return int(state["pipeline"]["stats"]["cycles"])


__all__ = [
    "DEFAULT_ROOT",
    "LOCK_STALE_SECONDS",
    "LOCK_TIMEOUT_SECONDS",
    "SnapshotStore",
    "state_cycles",
]
