"""Bit-exact capture and restore of full machine state.

The snapshot contract is *quiescence*: state is only captured at a
squash-free, exception-free cycle boundary (``Pipeline.quiescent``),
reached by :func:`drain_machine` / :func:`drain_multi` stepping single
cycles until the pipe settles.  At such a boundary the stage latches,
PC unit, FSMs, caches and memory fully determine every future cycle, so
``capture -> JSON -> restore -> finish`` is bit-identical to an
uninterrupted run -- registers, memory, console, and every telemetry
counter (the standing differential gate in :mod:`repro.checkpoint.campaign`
and the fuzz oracle's ``PAIR_CHECKPOINT`` prove exactly that).

Everything serialized is plain JSON: ints, bools, strings, lists.  FPU
registers travel as raw IEEE-754 words, in-flight instructions as their
32-bit encodings (with the shared illegal-word sentinel flagged so its
identity survives the round trip).  Derived structures -- the Icache tag
maps, decode memos, translated JIT blocks -- are *not* serialized; they
are rebuilt or invalidated on restore, which is what makes restore safe
under self-modifying code.

Restores are validating: a wrong format version raises
:class:`SnapshotFormatError` and a wrong machine shape raises
:class:`SnapshotConfigError` before any state is touched, so a failed
restore never leaves a half-written machine behind.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

#: snapshot format version; bumped on any schema change so an old
#: generation is rejected by name instead of mis-restored
FORMAT = 1

#: default cycle bound for draining to quiescence; the longest settle
#: observed in practice is a miss service + squash window (tens of
#: cycles), so this is orders of magnitude of headroom
DRAIN_BOUND = 4096


class CheckpointError(Exception):
    """Base class for every checkpoint/restore failure."""


class SnapshotIntegrityError(CheckpointError):
    """Snapshot bytes are damaged: truncated, corrupted, or the sha256
    sidecar is missing or does not match."""


class SnapshotFormatError(CheckpointError):
    """Snapshot carries an unknown format version or the wrong shape."""


class SnapshotConfigError(CheckpointError):
    """Snapshot was taken on a machine with a different configuration."""


class QuiescenceTimeout(CheckpointError):
    """The pipeline failed to reach a quiescent boundary within bound."""


def _jsonable(value: Any) -> Any:
    """Normalize through JSON so stored and live values compare equal
    (tuples become lists, dict keys become strings)."""
    return json.loads(json.dumps(value))


def config_fingerprint(config) -> Dict[str, Any]:
    """The JSON-normalized configuration a snapshot is bound to."""
    return _jsonable(dataclasses.asdict(config))


# ----------------------------------------------------------------- drain
def drain_machine(machine, bound: int = DRAIN_BOUND) -> int:
    """Single-step ``machine`` to a quiescent boundary; returns the
    number of cycles consumed.  Raises :class:`QuiescenceTimeout` if the
    pipe does not settle within ``bound`` cycles."""
    pipeline = machine.pipeline
    drained = 0
    while not pipeline.quiescent:
        if drained >= bound:
            raise QuiescenceTimeout(
                f"pipeline not quiescent after {bound} drain cycles "
                f"(squash_fsm={pipeline.squash_fsm.state.name}, "
                f"stall_left={pipeline._stall_left})")
        pipeline.cycle()
        drained += 1
    return drained


def drain_multi(system, bound: int = DRAIN_BOUND) -> int:
    """Step the whole multiprocessor (bus arbitration included) until
    every node is quiescent; returns global cycles consumed."""
    drained = 0
    while not all(machine.pipeline.quiescent
                  for machine in system.machines):
        if drained >= bound:
            busy = [index for index, machine in enumerate(system.machines)
                    if not machine.pipeline.quiescent]
            raise QuiescenceTimeout(
                f"nodes {busy} not quiescent after {bound} drain cycles")
        system.step()
        drained += 1
    return drained


# --------------------------------------------------------------- capture
def _flight_state(flight) -> Optional[Dict[str, Any]]:
    from repro.core.pipeline import _ILLEGAL_INSTRUCTION
    from repro.isa.encoding import encode

    if flight is None:
        return None
    word = (None if flight.instr is _ILLEGAL_INSTRUCTION
            else encode(flight.instr))
    return {
        "pc": flight.pc,
        "word": word,
        "squashed": flight.squashed,
        "result": flight.result,
        "dest": flight.dest,
        "mem_address": flight.mem_address,
        "store_value": flight.store_value,
        "mem_resolved": flight.mem_resolved,
        "taken": flight.taken,
    }


def _restore_flight(state: Optional[Dict[str, Any]]):
    from repro.core.pipeline import _ILLEGAL_INSTRUCTION, Flight
    from repro.isa.encoding import decode

    if state is None:
        return None
    instr = (_ILLEGAL_INSTRUCTION if state["word"] is None
             else decode(state["word"]))
    flight = Flight(state["pc"], instr)
    flight.squashed = state["squashed"]
    flight.result = state["result"]
    flight.dest = state["dest"]
    flight.mem_address = state["mem_address"]
    flight.store_value = state["store_value"]
    flight.mem_resolved = state["mem_resolved"]
    flight.taken = state["taken"]
    return flight


def _pipeline_state(pipeline) -> Dict[str, Any]:
    squash = pipeline.squash_fsm
    miss = pipeline.miss_fsm
    pc_unit = pipeline.pc_unit
    fault_cause = pipeline._fault_cause
    return {
        "regs": pipeline.regs.snapshot(),
        "psw": pipeline.psw.value,
        "psw_old": pipeline.psw_old.value,
        "md": pipeline.md.value,
        "pc": {
            "fetch": pc_unit.fetch_pc,
            "chain": pc_unit.chain.snapshot(),
            "redirect": pc_unit._redirect,
        },
        "squash_fsm": {
            "state": squash.state.name,
            "squash_line": squash.squash_line,
            "exception_line": squash.exception_line,
            "transitions": squash.transitions,
        },
        "miss_fsm": {
            "state": miss.state.name,
            "plan": [step.name for step in miss._plan],
            "miss_sequences": miss.miss_sequences,
            "stall_cycles": miss.stall_cycles,
        },
        "stats": dataclasses.asdict(pipeline.stats),
        "flights": [_flight_state(flight) for flight in pipeline.s],
        "stall_left": pipeline._stall_left,
        "stall_is_icache": pipeline._stall_is_icache,
        "ready_fetch": pipeline._ready_fetch,
        "halting": pipeline._halting,
        "halted": pipeline.halted,
        "irq_pending": pipeline._irq_pending,
        "nmi_pending": pipeline._nmi_pending,
        "irq_hold": pipeline._irq_hold,
        "fault_cause": fault_cause.name if fault_cause is not None else None,
    }


def _restore_pipeline(pipeline, state: Dict[str, Any]) -> None:
    from repro.core.control import MissState, SquashState
    from repro.core.psw import Psw, PswBit

    pipeline.regs.load(state["regs"])
    pipeline.psw = Psw(state["psw"])
    pipeline.psw_old = Psw(state["psw_old"])
    pipeline.md.value = state["md"]

    pc = state["pc"]
    pipeline.pc_unit.fetch_pc = pc["fetch"]
    pipeline.pc_unit.chain.entries = list(pc["chain"])
    pipeline.pc_unit._redirect = pc["redirect"]

    squash = state["squash_fsm"]
    pipeline.squash_fsm.state = SquashState[squash["state"]]
    pipeline.squash_fsm.squash_line = squash["squash_line"]
    pipeline.squash_fsm.exception_line = squash["exception_line"]
    pipeline.squash_fsm.transitions = squash["transitions"]

    miss = state["miss_fsm"]
    pipeline.miss_fsm.state = MissState[miss["state"]]
    pipeline.miss_fsm._plan = [MissState[name] for name in miss["plan"]]
    pipeline.miss_fsm.miss_sequences = miss["miss_sequences"]
    pipeline.miss_fsm.stall_cycles = miss["stall_cycles"]

    for field, value in state["stats"].items():
        setattr(pipeline.stats, field, value)

    pipeline.s = [_restore_flight(flight) for flight in state["flights"]]
    pipeline._stall_left = state["stall_left"]
    pipeline._stall_is_icache = state["stall_is_icache"]
    pipeline._ready_fetch = state["ready_fetch"]
    pipeline._halting = state["halting"]
    pipeline.halted = state["halted"]
    pipeline._irq_pending = state["irq_pending"]
    pipeline._nmi_pending = state["nmi_pending"]
    pipeline._irq_hold = state["irq_hold"]
    pipeline._fault_cause = (None if state["fault_cause"] is None
                             else PswBit[state["fault_cause"]])
    pipeline._cycle_branch_wrong = False

    # derived structures are rebuilt, never trusted across a restore:
    # decode memos and translated JIT blocks may describe the *previous*
    # memory image, so both are invalidated wholesale
    for memo in pipeline._decode_caches:
        memo.clear()
    if pipeline._translator is not None:
        pipeline._translator.clear()


def _icache_state(icache) -> Dict[str, Any]:
    return {
        "sets": [[{"tag": way.tag, "valid": list(way.valid)}
                  for way in cache_set]
                 for cache_set in icache._sets],
        "order": [list(order) for order in icache._order],
        "rand_state": icache._rand_state,
        "stats": dataclasses.asdict(icache.stats),
    }


def _restore_icache(icache, state: Dict[str, Any]) -> None:
    for cache_set, set_state in zip(icache._sets, state["sets"]):
        for way, way_state in zip(cache_set, set_state):
            way.tag = way_state["tag"]
            way.valid = list(way_state["valid"])
    icache._order = [list(order) for order in state["order"]]
    icache._rand_state = state["rand_state"]
    for field, value in state["stats"].items():
        setattr(icache.stats, field, value)
    # the tag maps are an index over _sets; rebuild rather than trust
    icache._tag_maps = [
        {way.tag: index for index, way in enumerate(cache_set)
         if way.tag is not None}
        for cache_set in icache._sets
    ]


def _ecache_state(ecache) -> Dict[str, Any]:
    return {
        "tags": list(ecache._tags),
        "stats": dataclasses.asdict(ecache.stats),
        "fault_forced_misses": ecache.fault_forced_misses,
        "fault_forced_events": ecache.fault_forced_events,
    }


def _restore_ecache(ecache, state: Dict[str, Any]) -> None:
    ecache._tags = list(state["tags"])
    for field, value in state["stats"].items():
        setattr(ecache.stats, field, value)
    ecache.fault_forced_misses = state["fault_forced_misses"]
    ecache.fault_forced_events = state["fault_forced_events"]


def _memory_state(memory) -> Dict[str, Any]:
    """Serialize a :class:`~repro.ecache.memory.MemorySystem` (spaces,
    console, ICU, MMU).  ``write_listeners`` are wiring, not state."""
    return {
        "system": sorted(memory.system._words.items()),
        "user": sorted(memory.user._words.items()),
        "console": {
            "values": list(memory.console.values),
            "text": memory.console.text,
        },
        "icu": {"pending": memory.icu.pending},
        "mmu": {
            "enabled": memory.mmu.enabled,
            "resident": sorted(memory.mmu.resident),
            "fault_address": memory.mmu.fault_address,
            "faults": memory.mmu.faults,
        },
    }


def _restore_memory(memory, state: Dict[str, Any]) -> None:
    memory.system._words.clear()
    memory.system._words.update(
        {int(addr): word for addr, word in state["system"]})
    memory.user._words.clear()
    memory.user._words.update(
        {int(addr): word for addr, word in state["user"]})
    memory.console.values = list(state["console"]["values"])
    memory.console.text = state["console"]["text"]
    memory.icu.pending = state["icu"]["pending"]
    memory.mmu.enabled = state["mmu"]["enabled"]
    memory.mmu.resident = set(state["mmu"]["resident"])
    memory.mmu.fault_address = state["mmu"]["fault_address"]
    memory.mmu.faults = state["mmu"]["faults"]


def _coproc_state(coprocessors) -> Dict[str, Any]:
    from repro.coproc.fpu import Fpu, float_to_word

    slots: Dict[str, Any] = {}
    for number, coprocessor in sorted(coprocessors._slots.items()):
        if not isinstance(coprocessor, Fpu):
            raise CheckpointError(
                f"coprocessor slot {number} "
                f"({type(coprocessor).__name__}) is not snapshottable")
        slots[str(number)] = {
            "kind": "fpu",
            "regs": [float_to_word(value) for value in coprocessor.regs],
            "status": coprocessor.status,
            "op_count": coprocessor.op_count,
        }
    return {
        "operations": coprocessors.operations,
        "data_transfers": coprocessors.data_transfers,
        "fault_busy_ops": coprocessors.fault_busy_ops,
        "fault_busy_stall": coprocessors.fault_busy_stall,
        "fault_busy_events": coprocessors.fault_busy_events,
        "slots": slots,
    }


def _restore_coproc(coprocessors, state: Dict[str, Any]) -> None:
    from repro.coproc.fpu import word_to_float

    live = {str(number) for number in coprocessors._slots}
    saved = set(state["slots"])
    if live != saved:
        raise SnapshotConfigError(
            f"coprocessor slots differ: snapshot has {sorted(saved)}, "
            f"machine has {sorted(live)} (attach the same coprocessors "
            "before restoring)")
    coprocessors.operations = state["operations"]
    coprocessors.data_transfers = state["data_transfers"]
    coprocessors.fault_busy_ops = state["fault_busy_ops"]
    coprocessors.fault_busy_stall = state["fault_busy_stall"]
    coprocessors.fault_busy_events = state["fault_busy_events"]
    for number, slot_state in state["slots"].items():
        fpu = coprocessors._slots[int(number)]
        fpu.regs = [word_to_float(word) for word in slot_state["regs"]]
        fpu.status = slot_state["status"]
        fpu.op_count = slot_state["op_count"]


def _node_state(machine) -> Dict[str, Any]:
    """Per-node state: everything but the (possibly shared) memory."""
    return {
        "pipeline": _pipeline_state(machine.pipeline),
        "icache": _icache_state(machine.icache),
        "ecache": _ecache_state(machine.ecache),
        "coproc": _coproc_state(machine.coprocessors),
    }


def _restore_node(machine, state: Dict[str, Any]) -> None:
    _restore_icache(machine.icache, state["icache"])
    _restore_ecache(machine.ecache, state["ecache"])
    _restore_coproc(machine.coprocessors, state["coproc"])
    _restore_pipeline(machine.pipeline, state["pipeline"])


# --------------------------------------------------------- machine level
def machine_state(machine) -> Dict[str, Any]:
    """Capture one quiescent :class:`~repro.core.processor.Machine` as a
    JSON-serializable dict.  Raises :class:`CheckpointError` if the pipe
    is not quiescent (call :func:`drain_machine` first, or use
    ``Machine.snapshot()`` which drains for you)."""
    if not machine.pipeline.quiescent:
        raise CheckpointError(
            "snapshot requires a quiescent pipeline; drain first")
    state = {
        "format": FORMAT,
        "kind": "machine",
        "config": config_fingerprint(machine.config),
        "memory": _memory_state(machine.memory),
    }
    state.update(_node_state(machine))
    return state


def _validate_header(state: Dict[str, Any], kind: str, config) -> None:
    if not isinstance(state, dict) or "format" not in state:
        raise SnapshotFormatError("snapshot has no format key")
    if state["format"] != FORMAT:
        raise SnapshotFormatError(
            f"snapshot format {state['format']!r} is not the supported "
            f"format {FORMAT}")
    if state.get("kind") != kind:
        raise SnapshotFormatError(
            f"snapshot kind {state.get('kind')!r} cannot restore a "
            f"{kind!r}")
    if state.get("config") != config_fingerprint(config):
        raise SnapshotConfigError(
            "snapshot was taken under a different machine configuration; "
            "restore requires an identically configured machine")


def restore_machine(machine, state: Dict[str, Any]) -> None:
    """Restore a captured state into ``machine`` (validating first).

    The machine must be built with the same :class:`MachineConfig` and
    the same coprocessor slots as the snapshot's source; anything else
    raises :class:`SnapshotFormatError` / :class:`SnapshotConfigError`
    *before* any machine state is modified.
    """
    _validate_header(state, "machine", machine.config)
    # slot mismatch is checked up front so it cannot strand a machine
    # with restored memory but unrestored coprocessors
    live = {str(number) for number in machine.coprocessors._slots}
    if live != set(state["coproc"]["slots"]):
        raise SnapshotConfigError(
            f"coprocessor slots differ: snapshot has "
            f"{sorted(state['coproc']['slots'])}, machine has "
            f"{sorted(live)} (attach the same coprocessors first)")
    _restore_memory(machine.memory, state["memory"])
    _restore_node(machine, state)


# ----------------------------------------------------------- multi level
def multi_state(system) -> Dict[str, Any]:
    """Capture a quiescent :class:`~repro.multi.system.MultiMachine`:
    the shared memory once, each node's private state, and the bus."""
    for index, machine in enumerate(system.machines):
        if not machine.pipeline.quiescent:
            raise CheckpointError(
                f"snapshot requires quiescent nodes; node {index} is "
                "mid-squash or mid-stall (drain first)")
    return {
        "format": FORMAT,
        "kind": "multi",
        "config": config_fingerprint(system.config),
        "nodes": len(system.machines),
        "bus_latency": system.bus_latency,
        "invalidation": system.invalidation,
        "memory": _memory_state(system.memory),
        "machines": [_node_state(machine) for machine in system.machines],
        "bus": dataclasses.asdict(system.bus),
        "cycles": system.cycles,
        "bus_owner": system._bus_owner,
        "bus_release_cycle": system._bus_release_cycle,
    }


def restore_multi(system, state: Dict[str, Any]) -> None:
    """Restore a multi snapshot into ``system`` (validating first)."""
    _validate_header(state, "multi", system.config)
    if state["nodes"] != len(system.machines):
        raise SnapshotConfigError(
            f"snapshot has {state['nodes']} nodes, system has "
            f"{len(system.machines)}")
    if (state["bus_latency"] != system.bus_latency
            or state["invalidation"] != system.invalidation):
        raise SnapshotConfigError(
            "snapshot bus parameters (latency/invalidation) differ from "
            "the live system")
    _restore_memory(system.memory, state["memory"])
    for machine, node_state in zip(system.machines, state["machines"]):
        _restore_node(machine, node_state)
    bus = state["bus"]
    system.bus.acquisitions = bus["acquisitions"]
    system.bus.contention_cycles = bus["contention_cycles"]
    system.bus.invalidations = bus["invalidations"]
    system.cycles = state["cycles"]
    system._bus_owner = state["bus_owner"]
    system._bus_release_cycle = state["bus_release_cycle"]
    system._store_origin = None


__all__ = [
    "FORMAT",
    "DRAIN_BOUND",
    "CheckpointError",
    "SnapshotIntegrityError",
    "SnapshotFormatError",
    "SnapshotConfigError",
    "QuiescenceTimeout",
    "config_fingerprint",
    "drain_machine",
    "drain_multi",
    "machine_state",
    "restore_machine",
    "multi_state",
    "restore_multi",
]
