"""Crash-resilient checkpoint/restore for long simulations.

The paper's methodology lives on multi-million-reference traces; a
billion-cycle study is only practical if a crashed worker resumes from
its last snapshot instead of restarting cold.  This package provides:

* :mod:`repro.checkpoint.state` -- bit-exact capture/restore of a
  :class:`~repro.core.processor.Machine` or
  :class:`~repro.multi.system.MultiMachine` at a drained, quiescent
  cycle boundary, plus the named error family
  (:class:`CheckpointError` and friends);
* :mod:`repro.checkpoint.store` -- :class:`SnapshotStore`: atomic,
  fsync-durable, sha256-sidecar-verified generation ladders under
  ``.trace_cache/checkpoints/``;
* :mod:`repro.checkpoint.run` -- :func:`run_with_checkpoints`: the
  auto-checkpoint watchdog (every K cycles / T seconds) with
  resume-from-latest-valid-generation;
* :mod:`repro.checkpoint.campaign` -- the standing gates: restore
  equivalence (snapshot mid-run + restore + finish must be
  bit-identical to a straight run), chaos resume (SIGKILLed workers
  resume and merge byte-identical), and snapshot-corruption rejection.
"""

from repro.checkpoint.run import (
    CheckpointStats,
    resume_state,
    run_with_checkpoints,
)
from repro.checkpoint.state import (
    FORMAT,
    CheckpointError,
    QuiescenceTimeout,
    SnapshotConfigError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    drain_machine,
    drain_multi,
    machine_state,
    multi_state,
    restore_machine,
    restore_multi,
)
from repro.checkpoint.store import SnapshotStore

__all__ = [
    "FORMAT",
    "CheckpointError",
    "CheckpointStats",
    "QuiescenceTimeout",
    "SnapshotConfigError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "SnapshotStore",
    "drain_machine",
    "drain_multi",
    "machine_state",
    "multi_state",
    "restore_machine",
    "restore_multi",
    "resume_state",
    "run_with_checkpoints",
]
