"""Shared-memory multiprocessor built from MIPS-X nodes.

"The goal of the MIPS-X project was to ... build a single processor with a
peak rate of 20 MIPS and then to use 6-10 of these processors as the nodes
in a shared memory multiprocessor."  This module is that system, built
from the single-processor model:

* N :class:`~repro.core.processor.Machine` nodes over one shared
  :class:`~repro.ecache.memory.MemorySystem` (data is always functionally
  coherent: the Ecaches are timing models over the single shared image);
* **write-through invalidation**: every store broadcasts its address and
  invalidates the matching line in every *other* node's external cache
  (Smith's "transmit the addresses of all stores to all other caches"
  policy -- the natural fit for MIPS-X's write-through Ecache);
* a **shared bus** to main memory: only one node's miss may occupy the
  bus at a time, modelled as extra stall cycles on contending nodes;
* cycle-interleaved execution: one cycle per node per global step, so the
  nodes are sequentially consistent (each store is visible to every node
  on the next cycle).

MIPS-X has no atomic read-modify-write, so software synchronization uses
classic SC algorithms (the tests run Peterson's lock); per-CPU identity is
delivered in ``gp`` (r31) at reset, by convention.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.asm.unit import Program
from repro.core.config import MachineConfig
from repro.core.processor import Machine
from repro.ecache.memory import MemorySystem
from repro.isa.registers import GP


@dataclasses.dataclass
class BusStats:
    """Shared-bus accounting."""

    acquisitions: int = 0
    contention_cycles: int = 0
    invalidations: int = 0


class MultiMachine:
    """``n`` MIPS-X nodes sharing memory over one bus."""

    def __init__(self, n: int, config: Optional[MachineConfig] = None,
                 memory: Optional[MemorySystem] = None):
        if not 1 <= n <= 16:
            raise ValueError("node count must be between 1 and 16")
        self.config = config or MachineConfig()
        self.memory = memory or MemorySystem(self.config.memory_words,
                                             self.config.mmio_base)
        self.machines: List[Machine] = [
            Machine(self.config, memory=self.memory) for _ in range(n)
        ]
        self.bus = BusStats()
        self.cycles = 0
        #: which node currently owns the bus (None = free), and until when
        self._bus_owner: Optional[int] = None
        self._bus_release_cycle = 0
        self.memory.write_listeners.append(self._broadcast_invalidate)
        self._store_origin: Optional[int] = None

    # ---------------------------------------------------------- invalidation
    def _broadcast_invalidate(self, address: int, system_mode: bool) -> None:
        """Write-through invalidation: purge the written line from every
        other node's external cache so it re-fetches the fresh value's
        timing honestly."""
        origin = self._store_origin
        for index, machine in enumerate(self.machines):
            if index == origin:
                continue
            self._invalidate_line(machine, address, system_mode)
        if origin is not None:
            self.bus.invalidations += 1

    @staticmethod
    def _invalidate_line(machine: Machine, address: int,
                         system_mode: bool) -> None:
        ecache = machine.ecache
        if not ecache.config.enabled:
            return
        line_addr = address // ecache.config.line_words
        index = line_addr % ecache.lines
        tag = (line_addr // ecache.lines) * 2 + (1 if system_mode else 0)
        if ecache._tags[index] == tag:
            ecache._tags[index] = ecache.INVALID

    # -------------------------------------------------------------- loading
    def load_program(self, program: Program,
                     entries: Optional[List[int]] = None) -> None:
        """Load one image into the shared memory; every node starts at the
        program entry (or per-node ``entries``) with its id in ``gp``."""
        self.memory.system.load_image(program.image)
        for index, machine in enumerate(self.machines):
            entry = entries[index] if entries else program.entry
            machine.pipeline.reset(entry)
            machine.regs[GP] = index

    # -------------------------------------------------------------- running
    def step(self) -> None:
        """One global cycle: each live node advances one cycle.

        Bus arbitration: when a node enters a memory-system stall it must
        own the bus; a contending node pays an extra stall cycle per cycle
        the bus is held by someone else (its ``w1`` stays withheld).
        """
        self.cycles += 1
        for index, machine in enumerate(self.machines):
            if machine.halted:
                continue
            pipeline = machine.pipeline
            stalled = pipeline._stall_left > 0 or pipeline.miss_fsm.stalled
            if stalled:
                if self._bus_owner is None:
                    self._bus_owner = index
                    self.bus.acquisitions += 1
                elif self._bus_owner != index:
                    # bus busy: this node's miss waits a cycle
                    self.bus.contention_cycles += 1
                    machine.stats.cycles += 1
                    continue
            elif self._bus_owner == index:
                self._bus_owner = None
            self._store_origin = index
            machine.step()
            self._store_origin = None
        if (self._bus_owner is not None
                and self.machines[self._bus_owner].halted):
            self._bus_owner = None

    def run(self, max_cycles: int = 10_000_000) -> int:
        """Run until every node halts; returns global cycles."""
        while not self.all_halted and self.cycles < max_cycles:
            self.step()
        return self.cycles

    @property
    def all_halted(self) -> bool:
        return all(machine.halted for machine in self.machines)

    @property
    def console(self):
        return self.memory.console

    def node(self, index: int) -> Machine:
        return self.machines[index]
