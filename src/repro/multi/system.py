"""Shared-memory multiprocessor built from MIPS-X nodes.

"The goal of the MIPS-X project was to ... build a single processor with a
peak rate of 20 MIPS and then to use 6-10 of these processors as the nodes
in a shared memory multiprocessor."  This module is that system, built
from the single-processor model:

* N :class:`~repro.core.processor.Machine` nodes over one shared
  :class:`~repro.ecache.memory.MemorySystem` (data is always functionally
  coherent: the Ecaches are timing models over the single shared image);
* **write-through invalidation**: every store broadcasts its address and
  invalidates the matching line in every *other* node's external cache
  (Smith's "transmit the addresses of all stores to all other caches"
  policy -- the natural fit for MIPS-X's write-through Ecache).  The
  ``invalidation=False`` knob disables the purge (timing-only: data stays
  coherent either way) so the sweep can measure the policy's cost;
* a **shared bus** to main memory: only one node's miss may occupy the
  bus at a time, modelled as extra stall cycles on contending nodes.
  ``bus_latency`` holds the bus for that many extra global cycles after
  each acquisition (post-transfer bus occupancy), penalising contenders
  without slowing an uncontended node;
* cycle-interleaved execution: one cycle per node per global step, so the
  nodes are sequentially consistent (each store is visible to every node
  on the next cycle).

MIPS-X has no atomic read-modify-write, so software synchronization uses
classic SC algorithms (the tests run Peterson's lock); per-CPU identity is
delivered in ``gp`` (r31) at reset, by convention.  SPL programs compiled
with ``node_stack_words`` carve one stack per node below the conventional
stack top (see :mod:`repro.lang.codegen`); the constructor validates that
``config.memory_words`` leaves room for them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.asm.unit import Program
from repro.core.config import MachineConfig
from repro.core.processor import Machine
from repro.ecache.memory import MemorySystem
from repro.isa.registers import GP
from repro.lang.codegen import NODE_STACK_WORDS, STACK_TOP


@dataclasses.dataclass
class BusStats:
    """Shared-bus accounting."""

    acquisitions: int = 0
    contention_cycles: int = 0
    invalidations: int = 0


class MultiMachine:
    """``n`` MIPS-X nodes sharing memory over one bus."""

    def __init__(self, n: int, config: Optional[MachineConfig] = None,
                 memory: Optional[MemorySystem] = None,
                 bus_latency: int = 0, invalidation: bool = True):
        """Build ``n`` nodes over one shared memory image.

        ``bus_latency`` keeps the bus owned for that many extra global
        cycles after each acquisition; ``invalidation`` toggles the
        write-through broadcast purge (timing-only either way).
        """
        if not 1 <= n <= 16:
            raise ValueError("node count must be between 1 and 16")
        if bus_latency < 0:
            raise ValueError("bus latency cannot be negative")
        self.config = config or MachineConfig()
        limit = min(self.config.memory_words, self.config.mmio_base)
        if STACK_TOP > limit:
            raise ValueError(
                f"config.memory_words={self.config.memory_words:#x} cannot "
                f"hold the {n} node stacks: the conventional stack top "
                f"{STACK_TOP:#x} lies beyond addressable data memory "
                f"({limit:#x}) -- raise memory_words")
        if n * NODE_STACK_WORDS >= STACK_TOP:
            raise ValueError(
                f"{n} nodes x {NODE_STACK_WORDS} stack words overrun the "
                f"code/global region below the stack top {STACK_TOP:#x}")
        self.bus_latency = bus_latency
        self.invalidation = invalidation
        self.memory = memory or MemorySystem(self.config.memory_words,
                                             self.config.mmio_base)
        self.machines: List[Machine] = [
            Machine(self.config, memory=self.memory) for _ in range(n)
        ]
        self.bus = BusStats()
        self.cycles = 0
        #: which node currently owns the bus (None = free), and until when
        self._bus_owner: Optional[int] = None
        self._bus_release_cycle = 0
        #: optional per-node CycleTracers (see :meth:`attach_tracers`)
        self.tracers = None
        self.memory.write_listeners.append(self._broadcast_invalidate)
        self._store_origin: Optional[int] = None

    # ---------------------------------------------------------- invalidation
    def _broadcast_invalidate(self, address: int, system_mode: bool) -> None:
        """Write-through invalidation: purge the written line from every
        other node's external cache so it re-fetches the fresh value's
        timing honestly."""
        if not self.invalidation:
            return
        origin = self._store_origin
        for index, machine in enumerate(self.machines):
            if index == origin:
                continue
            self._invalidate_line(machine, address, system_mode)
        if origin is not None:
            self.bus.invalidations += 1

    @staticmethod
    def _invalidate_line(machine: Machine, address: int,
                         system_mode: bool) -> None:
        ecache = machine.ecache
        if not ecache.config.enabled:
            return
        line_addr = address // ecache.config.line_words
        index = line_addr % ecache.lines
        tag = (line_addr // ecache.lines) * 2 + (1 if system_mode else 0)
        if ecache._tags[index] == tag:
            ecache._tags[index] = ecache.INVALID

    # -------------------------------------------------------------- loading
    def load_program(self, program: Program,
                     entries: Optional[List[int]] = None) -> None:
        """Load one image into the shared memory; every node starts at the
        program entry (or per-node ``entries``) with its id in ``gp``."""
        self.memory.system.load_image(program.image)
        for index, machine in enumerate(self.machines):
            entry = entries[index] if entries else program.entry
            machine.pipeline.reset(entry)
            machine.regs[GP] = index

    # -------------------------------------------------------- observability
    def attach_tracers(self, capacity: int = 65536, metrics=None):
        """Attach one passive :class:`CycleTracer` per node.

        Unlike the single-core flow (where the tracer drives the clock),
        :meth:`step` stays the driver here: it brackets each node cycle
        with the tracer's ``begin_cycle``/``end_cycle`` and records
        bus-contention freezes as ``bus_wait`` stall spans.  Pass one
        shared ``metrics`` registry to aggregate histograms across nodes.
        Returns the tracer list (also kept on ``self.tracers``).
        """
        from repro.telemetry.tracer import CycleTracer

        self.tracers = [CycleTracer(machine, capacity=capacity,
                                    metrics=metrics)
                        for machine in self.machines]
        return self.tracers

    def metrics(self, into=None):
        """Harvest all nodes + the bus into one catalogued registry
        (see :func:`repro.telemetry.metrics.collect_multi`)."""
        from repro.telemetry.metrics import collect_multi

        return collect_multi(self, into)

    # -------------------------------------------------------------- running
    def step(self) -> None:
        """One global cycle: each live node advances one cycle.

        Bus arbitration: when a node enters a memory-system stall it must
        own the bus; a contending node pays an extra stall cycle per cycle
        the bus is held by someone else (its ``w1`` stays withheld).  An
        owner keeps the bus for ``bus_latency`` extra global cycles after
        acquiring it, even once its own stall has drained.
        """
        self.cycles += 1
        tracers = self.tracers
        for index, machine in enumerate(self.machines):
            if machine.halted:
                continue
            pipeline = machine.pipeline
            stalled = pipeline._stall_left > 0 or pipeline.miss_fsm.stalled
            if stalled:
                if self._bus_owner is None:
                    self._bus_owner = index
                    self.bus.acquisitions += 1
                    self._bus_release_cycle = self.cycles + self.bus_latency
                elif self._bus_owner != index:
                    # bus busy: this node's miss waits a cycle
                    self.bus.contention_cycles += 1
                    machine.stats.cycles += 1
                    if tracers is not None:
                        tracers[index].observe_wait(machine.stats.cycles)
                    continue
            elif (self._bus_owner == index
                    and self.cycles >= self._bus_release_cycle):
                self._bus_owner = None
            self._store_origin = index
            if tracers is not None:
                tracer = tracers[index]
                before = tracer.begin_cycle()
                machine.step()
                tracer.end_cycle(before)
            else:
                machine.step()
            self._store_origin = None
        if (self._bus_owner is not None
                and self.machines[self._bus_owner].halted):
            self._bus_owner = None

    def run(self, max_cycles: int = 10_000_000) -> int:
        """Run until every node halts; returns global cycles."""
        while not self.all_halted and self.cycles < max_cycles:
            self.step()
        if self.tracers is not None:
            for tracer in self.tracers:
                tracer.finalize()
        return self.cycles

    # -------------------------------------------------- checkpoint/restore
    def snapshot(self, drain_bound: int = 4096) -> dict:
        """Drain every node to quiescence and capture the whole system:
        shared memory once, per-node pipeline/cache/coprocessor state,
        and the bus (owner, release cycle, counters).  See
        :mod:`repro.checkpoint.state`."""
        from repro.checkpoint.state import drain_multi, multi_state

        drain_multi(self, drain_bound)
        return multi_state(self)

    def restore(self, state: dict) -> None:
        """Restore a multi snapshot into an identically shaped system
        (same config, node count, bus latency, invalidation setting)."""
        from repro.checkpoint.state import restore_multi

        restore_multi(self, state)

    @property
    def all_halted(self) -> bool:
        return all(machine.halted for machine in self.machines)

    @property
    def console(self):
        return self.memory.console

    def node(self, index: int) -> Machine:
        return self.machines[index]
