"""Shared-memory multiprocessor built from MIPS-X nodes (the project's
stated end goal: 6-10 processors as nodes of a shared-memory machine)."""

from repro.multi.system import BusStats, MultiMachine

__all__ = ["BusStats", "MultiMachine"]
