"""A floating-point unit on the coprocessor interface.

The paper assumes the privileged coprocessor "will be a floating point
unit (FPU)": it owns ``ldf``/``stf`` so its sixteen registers load and
store directly to memory in a single instruction, while all other
coprocessors move data through CPU registers at one extra cycle per
transfer.

Values are IEEE-754 single precision; ``ldf``/``stf`` and the RAW data
moves operate on raw 32-bit patterns, and the INT moves convert, so integer
operands reach the FPU the way a real compiler would route them.

Branching on an FPU condition follows the paper's final design: ``fcmp``
latches comparison flags into the status register, ``movfrc`` reads the
status into a CPU register (load timing: one delay slot), and an ordinary
CPU branch tests it -- the dedicated coprocessor-branch instructions were
dropped precisely because this sequence is simpler across exceptions.
"""

from __future__ import annotations

import math
import struct
from typing import List

from repro.coproc.interface import (
    Coprocessor,
    CoprocessorError,
    cop_opcode,
    cop_rd,
    cop_rs,
    make_payload,
)


def float_to_word(value: float) -> int:
    """IEEE-754 single-precision bit pattern of ``value``."""
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        sign = 0x80000000 if math.copysign(1.0, value) < 0 else 0
        return sign | 0x7F800000  # +-inf


def word_to_float(word: int) -> float:
    return struct.unpack("<f", struct.pack("<I", word & 0xFFFFFFFF))[0]


class FpuOp:
    """FPU opcode values (payload bits [6:3])."""

    FADD = 0   #: fd <- fd + fs
    FSUB = 1   #: fd <- fd - fs
    FMUL = 2   #: fd <- fd * fs
    FDIV = 3   #: fd <- fd / fs
    FMOV = 4   #: fd <- fs
    FNEG = 5   #: fd <- -fs
    FABS = 6   #: fd <- |fs|
    FCMP = 7   #: status <- compare(fd, fs)
    # data-move sub-opcodes (used with movtoc / movfrc)
    MTC_RAW = 8    #: register <- raw CPU word
    MTC_INT = 9    #: register <- float(signed CPU word)
    MFC_RAW = 10   #: CPU word <- raw register bits
    MFC_INT = 11   #: CPU word <- int(register), truncated toward zero
    MFC_STATUS = 12  #: CPU word <- comparison status


#: status-register flag bits written by FCMP
STATUS_LT = 1
STATUS_EQ = 2
STATUS_GT = 4
STATUS_UNORDERED = 8


class Fpu(Coprocessor):
    """Sixteen-register single-precision FPU, coprocessor number 1."""

    number = 1
    NUM_REGISTERS = 16

    def __init__(self, number: int = 1):
        self.number = number
        self.regs: List[float] = [0.0] * self.NUM_REGISTERS
        self.status = 0
        self.op_count = 0

    # ----------------------------------------------------------- cop (ops)
    def execute(self, payload: int) -> None:
        opcode = cop_opcode(payload)
        rd, rs = cop_rd(payload), cop_rs(payload)
        self.op_count += 1
        a, b = self.regs[rd], self.regs[rs]
        if opcode == FpuOp.FADD:
            self.regs[rd] = self._round(a + b)
        elif opcode == FpuOp.FSUB:
            self.regs[rd] = self._round(a - b)
        elif opcode == FpuOp.FMUL:
            self.regs[rd] = self._round(a * b)
        elif opcode == FpuOp.FDIV:
            self.regs[rd] = self._round(math.inf if b == 0 and a != 0
                                        else (math.nan if b == 0 else a / b))
        elif opcode == FpuOp.FMOV:
            self.regs[rd] = b
        elif opcode == FpuOp.FNEG:
            self.regs[rd] = -b
        elif opcode == FpuOp.FABS:
            self.regs[rd] = abs(b)
        elif opcode == FpuOp.FCMP:
            self._compare(a, b)
        else:
            raise CoprocessorError(f"undefined FPU opcode {opcode}")

    def _compare(self, a: float, b: float) -> None:
        if math.isnan(a) or math.isnan(b):
            self.status = STATUS_UNORDERED
        elif a < b:
            self.status = STATUS_LT
        elif a == b:
            self.status = STATUS_EQ
        else:
            self.status = STATUS_GT

    @staticmethod
    def _round(value: float) -> float:
        """Round a Python double to single precision (what the chip keeps)."""
        return word_to_float(float_to_word(value))

    # ------------------------------------------------------- data transfers
    def write_data(self, payload: int, value: int) -> None:
        opcode = cop_opcode(payload)
        rd = cop_rd(payload)
        if opcode == FpuOp.MTC_RAW:
            self.regs[rd] = word_to_float(value)
        elif opcode == FpuOp.MTC_INT:
            signed = value - (1 << 32) if value & 0x80000000 else value
            self.regs[rd] = self._round(float(signed))
        else:
            raise CoprocessorError(f"bad FPU data-write opcode {opcode}")

    def read_data(self, payload: int) -> int:
        opcode = cop_opcode(payload)
        rs = cop_rd(payload)  # the rd field names the register being read
        if opcode == FpuOp.MFC_RAW:
            return float_to_word(self.regs[rs])
        if opcode == FpuOp.MFC_INT:
            value = self.regs[rs]
            if math.isnan(value) or math.isinf(value):
                return 0x80000000
            return int(value) & 0xFFFFFFFF
        if opcode == FpuOp.MFC_STATUS:
            return self.status
        raise CoprocessorError(f"bad FPU data-read opcode {opcode}")

    # ------------------------------------------------ ldf / stf (privileged)
    def load_word(self, register: int, word: int) -> None:
        self.regs[register % self.NUM_REGISTERS] = word_to_float(word)

    def store_word(self, register: int) -> int:
        return float_to_word(self.regs[register % self.NUM_REGISTERS])


# ---------------------------------------------------------------- payloads
def fpu_op(opcode: int, fd: int = 0, fs: int = 0, number: int = 1) -> int:
    """Payload word for an FPU operation (for ``cop``/``movtoc``/``movfrc``)."""
    return make_payload(number, opcode, fd, fs)
