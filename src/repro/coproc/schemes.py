"""Cost models for the four coprocessor interface schemes (E12).

The paper walks through the interface's evolution; each stage is a scheme
here, evaluated on measured FP-workload instruction mixes:

1. **dedicated bus, coprocessor bit** -- every instruction carries a CPU/
   coprocessor bit; a dedicated instruction bus (~20 pins) makes all
   coprocessor instructions visible off-chip.  Full speed, but spends half
   the opcode space and a large share of the pins.
2. **coprocessor-number field, dedicated bus** -- a 3-bit field addresses 7
   coprocessors; still needs the bus, data still moves through memory.
3. **non-cached coprocessor instructions** -- no bus: a coprocessor
   instruction is never cached, so the coprocessor can snoop it from the
   memory bus during the (forced) Icache miss.  Every coprocessor
   instruction pays the miss service time -- fatal for FP-heavy code.
4. **address-line interface (final)** -- the coprocessor instruction rides
   the address lines of a memory-format instruction: cacheable, one extra
   pin, ``ldf``/``stf`` give one privileged coprocessor direct memory
   access, other coprocessors pay one extra cycle per memory transfer.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.config import MachineConfig


@dataclasses.dataclass
class WorkloadMix:
    """Instruction mix of an FP workload (measured from a run)."""

    name: str
    instructions: int       #: total retired
    base_cycles: int        #: measured cycles under the final interface
    coproc_ops: int         #: cop/movtoc/movfrc operations
    fp_memory_ops: int      #: ldf/stf (FPU <-> memory transfers)

    @property
    def fp_fraction(self) -> float:
        return (self.coproc_ops + self.fp_memory_ops) / self.instructions


def mix_from_machine(name: str, machine) -> WorkloadMix:
    """Extract the mix from a finished run (loads/stores on an FP workload
    are ldf/stf plus the loop's address arithmetic; we count the FPU
    transfers specifically via the coprocessor counters)."""
    stats = machine.stats
    return WorkloadMix(
        name=name,
        instructions=stats.retired,
        base_cycles=stats.cycles,
        coproc_ops=stats.coproc_ops,
        fp_memory_ops=stats.loads + stats.stores,
    )


@dataclasses.dataclass(frozen=True)
class InterfaceScheme:
    name: str
    extra_pins: int
    #: extra cycles per coprocessor operation (cop/movtoc/movfrc)
    op_overhead: float
    #: extra cycles per FPU<->memory word
    fp_memory_overhead: float
    #: fraction of opcode space consumed by the interface
    opcode_fraction: float
    cacheable: bool
    notes: str = ""


def schemes(config: Optional[MachineConfig] = None) -> List[InterfaceScheme]:
    config = config or MachineConfig()
    # a non-cached coprocessor instruction always fetches off-chip: it pays
    # the Icache miss service plus the external access
    miss_service = config.icache.miss_cycles
    return [
        InterfaceScheme(
            name="coprocessor bit + dedicated bus",
            extra_pins=20, op_overhead=0.0, fp_memory_overhead=1.0,
            opcode_fraction=0.5, cacheable=True,
            notes="half the opcode space; data through memory"),
        InterfaceScheme(
            name="3-bit cop field + dedicated bus",
            extra_pins=20, op_overhead=0.0, fp_memory_overhead=1.0,
            opcode_fraction=0.1, cacheable=True,
            notes="data still through memory"),
        InterfaceScheme(
            name="non-cached coprocessor instructions",
            extra_pins=1, op_overhead=float(miss_service),
            fp_memory_overhead=float(miss_service) + 1.0,
            opcode_fraction=0.1, cacheable=False,
            notes="every coprocessor instruction forces an Icache miss"),
        InterfaceScheme(
            name="address-line interface (final)",
            extra_pins=1, op_overhead=0.0, fp_memory_overhead=0.0,
            opcode_fraction=0.1, cacheable=True,
            notes="ldf/stf for one privileged coprocessor; others +1 cycle"),
    ]


@dataclasses.dataclass
class SchemeOutcome:
    scheme: InterfaceScheme
    mix: WorkloadMix
    cycles: float

    @property
    def relative_performance(self) -> float:
        """Performance relative to the final (address-line) interface."""
        return self.mix.base_cycles / self.cycles

    @property
    def overhead_fraction(self) -> float:
        return (self.cycles - self.mix.base_cycles) / self.mix.base_cycles


def evaluate_schemes(mix: WorkloadMix,
                     config: Optional[MachineConfig] = None
                     ) -> List[SchemeOutcome]:
    """Cycle estimates for every interface scheme on one workload mix.

    The measured run used the final interface; other schemes add their
    per-operation overheads on top of its cycle count.
    """
    outcomes = []
    for scheme in schemes(config):
        cycles = (mix.base_cycles
                  + scheme.op_overhead * mix.coproc_ops
                  + scheme.fp_memory_overhead * mix.fp_memory_ops)
        outcomes.append(SchemeOutcome(scheme=scheme, mix=mix, cycles=cycles))
    return outcomes


def comparison_rows(mixes: Sequence[WorkloadMix],
                    config: Optional[MachineConfig] = None) -> List[tuple]:
    """(scheme, pins, relative performance averaged over mixes) rows."""
    rows = []
    for index, scheme in enumerate(schemes(config)):
        rel_total = 0.0
        for mix in mixes:
            outcome = evaluate_schemes(mix, config)[index]
            rel_total += outcome.relative_performance
        rows.append((scheme.name, scheme.extra_pins,
                     round(rel_total / len(mixes), 3),
                     "yes" if scheme.cacheable else "no"))
    return rows
