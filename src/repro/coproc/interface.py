"""The coprocessor interface (the paper's final, address-line scheme).

The winning design makes coprocessor operations a form of memory
instruction: the ALU computes ``r[base] + offset17`` exactly as for a load
or store, but a dedicated pin tells the memory system to ignore the cycle
and the 32-bit value on the *address lines* is the coprocessor instruction.
Consequences the paper highlights, all reproduced here:

* coprocessor instructions are **cacheable** like any other instruction;
* no coprocessor instruction bus -- only one extra pin;
* ``movtoc``/``movfrc`` transfer data between CPU registers and coprocessor
  registers over the data bus in the same cycle (``movfrc`` has load
  timing: the data arrives at the end of MEM, so it has one delay slot);
* one privileged coprocessor -- the FPU -- gets ``ldf``/``stf``, single
  instructions that move memory data directly to/from its registers; every
  *other* coprocessor needs a two-instruction sequence through a CPU
  register, costing one extra cycle per memory transfer.

Payload word layout (coprocessor-private; the CPU "does not need to know
the format of these instructions"):

====== =====================================================
bits   meaning
====== =====================================================
[2:0]  coprocessor number 1..7 (0 addresses no coprocessor)
[6:3]  coprocessor opcode
[10:7] destination register within the coprocessor
[14:11] source register within the coprocessor
rest   free for coprocessor-specific use
====== =====================================================

A payload built from a plain 16-bit immediate (``cop payload(r0)``) can
express any of these fields; larger payloads use a base register.
"""

from __future__ import annotations

from typing import Dict, Optional


def cop_number(payload: int) -> int:
    return payload & 0x7


def cop_opcode(payload: int) -> int:
    return (payload >> 3) & 0xF


def cop_rd(payload: int) -> int:
    return (payload >> 7) & 0xF


def cop_rs(payload: int) -> int:
    return (payload >> 11) & 0xF


def make_payload(number: int, opcode: int, rd: int = 0, rs: int = 0) -> int:
    """Build a coprocessor payload word (inverse of the accessors above)."""
    if not 1 <= number <= 7:
        raise ValueError(f"coprocessor number out of range: {number}")
    return (number & 0x7) | ((opcode & 0xF) << 3) | ((rd & 0xF) << 7) | (
        (rs & 0xF) << 11)


class CoprocessorError(RuntimeError):
    """An undefined coprocessor operation or a missing coprocessor."""


class Coprocessor:
    """Base class for devices on the coprocessor interface."""

    #: 1..7; coprocessor 1 is the privileged FPU slot (``ldf``/``stf``).
    number = 0

    def execute(self, payload: int) -> None:
        """A ``cop`` instruction addressed to this coprocessor."""
        raise CoprocessorError(
            f"coprocessor {self.number} cannot execute {payload:#x}")

    def write_data(self, payload: int, value: int) -> None:
        """``movtoc``: the CPU drives ``value`` on the data bus."""
        raise CoprocessorError(
            f"coprocessor {self.number} rejects data write {payload:#x}")

    def read_data(self, payload: int) -> int:
        """``movfrc``: the coprocessor drives the data bus."""
        raise CoprocessorError(
            f"coprocessor {self.number} rejects data read {payload:#x}")

    def load_word(self, register: int, word: int) -> None:
        """``ldf`` fill (privileged coprocessor only)."""
        raise CoprocessorError(
            f"coprocessor {self.number} has no direct memory load")

    def store_word(self, register: int) -> int:
        """``stf`` source (privileged coprocessor only)."""
        raise CoprocessorError(
            f"coprocessor {self.number} has no direct memory store")


class CoprocessorSet:
    """The up-to-seven coprocessors sharing the interface."""

    def __init__(self):
        self._slots: Dict[int, Coprocessor] = {}
        self.operations = 0
        self.data_transfers = 0
        #: fault injection (repro.faults): while ``fault_busy_ops`` > 0 the
        #: next coprocessor operations each assert "busy" for
        #: ``fault_busy_stall`` cycles.  Zero when no fault is armed, so the
        #: pipeline pays one integer truth test per coprocessor op.
        self.fault_busy_ops = 0
        self.fault_busy_stall = 0
        self.fault_busy_events = 0

    def begin_busy(self, ops: int, stall_cycles: int) -> None:
        """Arm the busy fault: the next ``ops`` coprocessor operations
        each hold the pipeline for ``stall_cycles`` extra cycles."""
        self.fault_busy_ops = max(0, ops)
        self.fault_busy_stall = max(0, stall_cycles)

    def consume_busy(self) -> int:
        """One coprocessor op consumed; returns its busy stall in cycles."""
        if self.fault_busy_ops <= 0:
            return 0
        self.fault_busy_ops -= 1
        self.fault_busy_events += 1
        return self.fault_busy_stall

    def as_metrics(self) -> "dict[str, int]":
        """Counter values under canonical telemetry catalog names."""
        return {
            "coproc.operations": self.operations,
            "coproc.data_transfers": self.data_transfers,
            "coproc.fault.busy_events": self.fault_busy_events,
        }

    def attach(self, coprocessor: Coprocessor) -> None:
        if not 1 <= coprocessor.number <= 7:
            raise ValueError(
                f"coprocessor number out of range: {coprocessor.number}")
        self._slots[coprocessor.number] = coprocessor

    def get(self, number: int) -> Optional[Coprocessor]:
        return self._slots.get(number)

    def _demand(self, payload: int) -> Coprocessor:
        number = cop_number(payload)
        coprocessor = self._slots.get(number)
        if coprocessor is None:
            raise CoprocessorError(f"no coprocessor {number} attached")
        return coprocessor

    def execute(self, payload: int) -> None:
        self.operations += 1
        self._demand(payload).execute(payload)

    def write_data(self, payload: int, value: int) -> None:
        self.data_transfers += 1
        self._demand(payload).write_data(payload, value)

    def read_data(self, payload: int) -> int:
        self.data_transfers += 1
        return self._demand(payload).read_data(payload)

    @property
    def fpu_slot(self) -> Optional[Coprocessor]:
        """The privileged coprocessor served by ``ldf``/``stf``."""
        return self._slots.get(1)
