"""Coprocessor interface (the paper's address-line scheme) and FPU."""

from repro.coproc.fpu import Fpu, FpuOp, float_to_word, fpu_op, word_to_float
from repro.coproc.interface import (
    Coprocessor,
    CoprocessorError,
    CoprocessorSet,
    cop_number,
    cop_opcode,
    cop_rd,
    cop_rs,
    make_payload,
)

__all__ = [
    "Coprocessor",
    "CoprocessorError",
    "CoprocessorSet",
    "Fpu",
    "FpuOp",
    "cop_number",
    "cop_opcode",
    "cop_rd",
    "cop_rs",
    "float_to_word",
    "fpu_op",
    "make_payload",
    "word_to_float",
]
