"""Abstract syntax tree for SPL."""

from __future__ import annotations

import dataclasses
from typing import List, Optional


class Node:
    """Base class for AST nodes (line numbers for diagnostics)."""

    line: int = 0


# ------------------------------------------------------------- expressions
@dataclasses.dataclass
class Number(Node):
    value: int
    line: int = 0


@dataclasses.dataclass
class Name(Node):
    """A scalar variable reference."""

    name: str
    line: int = 0


@dataclasses.dataclass
class Index(Node):
    """Array element reference ``name[expr]``."""

    name: str
    index: "Expr"
    line: int = 0


@dataclasses.dataclass
class Unary(Node):
    op: str            #: "-" or "not"
    operand: "Expr"
    line: int = 0


@dataclasses.dataclass
class Binary(Node):
    op: str            #: + - * div mod = <> < <= > >= and or
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclasses.dataclass
class Call(Node):
    name: str
    args: List["Expr"]
    line: int = 0


Expr = Node


# -------------------------------------------------------------- statements
@dataclasses.dataclass
class Assign(Node):
    target: Node       #: Name or Index
    value: Expr
    line: int = 0


@dataclasses.dataclass
class If(Node):
    condition: Expr
    then_body: "Stmt"
    else_body: Optional["Stmt"] = None
    line: int = 0


@dataclasses.dataclass
class While(Node):
    condition: Expr
    body: "Stmt"
    line: int = 0


@dataclasses.dataclass
class For(Node):
    variable: str
    start: Expr
    stop: Expr
    body: "Stmt"
    down: bool = False
    line: int = 0


@dataclasses.dataclass
class Repeat(Node):
    body: List["Stmt"]
    condition: Expr
    line: int = 0


@dataclasses.dataclass
class Return(Node):
    value: Optional[Expr] = None
    line: int = 0


@dataclasses.dataclass
class Write(Node):
    value: Expr
    char: bool = False  #: writec: emit as character
    line: int = 0


@dataclasses.dataclass
class ExprStmt(Node):
    """A call used as a statement (procedure call)."""

    expr: Expr
    line: int = 0


@dataclasses.dataclass
class Block(Node):
    body: List["Stmt"]
    line: int = 0


Stmt = Node


# ------------------------------------------------------------ declarations
@dataclasses.dataclass
class VarDecl(Node):
    """``var name;`` or ``var name[size];`` -- a scalar or an int array."""

    name: str
    size: Optional[int] = None  #: None = scalar, else array word count
    line: int = 0


@dataclasses.dataclass
class FuncDecl(Node):
    name: str
    params: List[str]
    locals: List[VarDecl]
    body: Block
    line: int = 0


@dataclasses.dataclass
class Program(Node):
    name: str
    globals: List[VarDecl]
    functions: List[FuncDecl]
    main: Block
    line: int = 0
