"""SPL: the small Pascal-like language used to build the paper's workloads."""

from repro.lang.codegen import CompileError, generate
from repro.lang.compiler import Compilation, build, compile_spl
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_program
from repro.lang.symbols import SemanticError, analyze

__all__ = [
    "Compilation",
    "CompileError",
    "LexError",
    "ParseError",
    "SemanticError",
    "analyze",
    "build",
    "compile_spl",
    "generate",
    "parse_program",
    "tokenize",
]
