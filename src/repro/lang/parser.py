"""Recursive-descent parser for SPL.

Grammar (EBNF, case-insensitive keywords)::

    program  = "program" name ";" {decl} block "."
    decl     = "var" vardecl {"," vardecl} ";"
             | ("func" | "proc") name "(" [name {"," name}] ")" ";"
               {"var" vardecl {"," vardecl} ";"} block ";"
    vardecl  = name ["[" number "]"]
    block    = "begin" {stmt} "end"
    stmt     = target ":=" expr ";"
             | "if" expr "then" stmt ["else" stmt]
             | "while" expr "do" stmt
             | "for" name ":=" expr ("to"|"downto") expr "do" stmt
             | "repeat" {stmt} "until" expr ";"
             | "return" [expr] ";"
             | "write" "(" expr ")" ";"  | "writec" "(" expr ")" ";"
             | name "(" args ")" ";"
             | block [";"]
    expr     = orexpr;  or/and short-circuit on 0/1 ints
    primary  = number | name | name "[" expr "]" | name "(" args ")"
             | "(" expr ")" | "-" primary | "not" primary
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.lexer import Token, tokenize


class ParseError(SyntaxError):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (near {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # ------------------------------------------------------------ plumbing
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}", self.current)
        return self.advance()

    # ------------------------------------------------------------- program
    def parse_program(self) -> ast.Program:
        self.expect("keyword", "program")
        name = self.expect("name").text
        self.expect(";")
        globals_: List[ast.VarDecl] = []
        functions: List[ast.FuncDecl] = []
        while True:
            if self.check("keyword", "var"):
                globals_.extend(self._var_decls())
            elif self.check("keyword", "func") or self.check("keyword", "proc"):
                functions.append(self._func_decl())
            else:
                break
        main = self._block()
        self.expect(".")
        return ast.Program(name=name, globals=globals_, functions=functions,
                           main=main)

    def _var_decls(self) -> List[ast.VarDecl]:
        self.expect("keyword", "var")
        decls = [self._one_var()]
        while self.accept(","):
            decls.append(self._one_var())
        self.expect(";")
        return decls

    def _one_var(self) -> ast.VarDecl:
        token = self.expect("name")
        size = None
        if self.accept("["):
            size = self.expect("number").value
            self.expect("]")
        return ast.VarDecl(name=token.text, size=size, line=token.line)

    def _func_decl(self) -> ast.FuncDecl:
        token = self.advance()  # func / proc
        name = self.expect("name").text
        self.expect("(")
        params: List[str] = []
        if not self.check(")"):
            params.append(self.expect("name").text)
            while self.accept(","):
                params.append(self.expect("name").text)
        self.expect(")")
        self.expect(";")
        locals_: List[ast.VarDecl] = []
        while self.check("keyword", "var"):
            locals_.extend(self._var_decls())
        body = self._block()
        self.expect(";")
        return ast.FuncDecl(name=name, params=params, locals=locals_,
                            body=body, line=token.line)

    # ----------------------------------------------------------- statements
    def _block(self) -> ast.Block:
        token = self.expect("keyword", "begin")
        body: List[ast.Stmt] = []
        while not self.check("keyword", "end"):
            body.append(self._statement())
        self.expect("keyword", "end")
        return ast.Block(body=body, line=token.line)

    def _statement(self) -> ast.Stmt:  # noqa: C901 - one case per form
        token = self.current
        if self.check("keyword", "begin"):
            block = self._block()
            self.accept(";")
            return block
        if self.accept("keyword", "if"):
            condition = self._expression()
            self.expect("keyword", "then")
            then_body = self._statement()
            else_body = None
            if self.accept("keyword", "else"):
                else_body = self._statement()
            return ast.If(condition, then_body, else_body, line=token.line)
        if self.accept("keyword", "while"):
            condition = self._expression()
            self.expect("keyword", "do")
            return ast.While(condition, self._statement(), line=token.line)
        if self.accept("keyword", "for"):
            variable = self.expect("name").text
            self.expect(":=")
            start = self._expression()
            down = False
            if self.accept("keyword", "downto"):
                down = True
            else:
                self.expect("keyword", "to")
            stop = self._expression()
            self.expect("keyword", "do")
            return ast.For(variable, start, stop, self._statement(),
                           down=down, line=token.line)
        if self.accept("keyword", "repeat"):
            body: List[ast.Stmt] = []
            while not self.check("keyword", "until"):
                body.append(self._statement())
            self.expect("keyword", "until")
            condition = self._expression()
            self.accept(";")
            return ast.Repeat(body, condition, line=token.line)
        if self.accept("keyword", "return"):
            value = None
            if not self.check(";") and not self.check("keyword", "end") \
                    and not self.check("keyword", "else"):
                value = self._expression()
            self.accept(";")
            return ast.Return(value, line=token.line)
        if self.check("keyword", "write") or self.check("keyword", "writec"):
            char = self.advance().text == "writec"
            self.expect("(")
            value = self._expression()
            self.expect(")")
            self.accept(";")
            return ast.Write(value, char=char, line=token.line)
        if self.check("name"):
            name = self.advance()
            if self.check("("):
                call = self._call(name)
                self.accept(";")
                return ast.ExprStmt(call, line=token.line)
            target: ast.Node
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                target = ast.Index(name.text, index, line=name.line)
            else:
                target = ast.Name(name.text, line=name.line)
            self.expect(":=")
            value = self._expression()
            self.accept(";")
            return ast.Assign(target, value, line=token.line)
        raise ParseError("expected a statement", token)

    # ---------------------------------------------------------- expressions
    def _call(self, name: Token) -> ast.Call:
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.check(")"):
            args.append(self._expression())
            while self.accept(","):
                args.append(self._expression())
        self.expect(")")
        return ast.Call(name.text, args, line=name.line)

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self.check("keyword", "or"):
            token = self.advance()
            left = ast.Binary("or", left, self._and_expr(), line=token.line)
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._comparison()
        while self.check("keyword", "and"):
            token = self.advance()
            left = ast.Binary("and", left, self._comparison(),
                              line=token.line)
        return left

    _COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        if self.current.kind in self._COMPARISONS:
            token = self.advance()
            return ast.Binary(token.kind, left, self._additive(),
                              line=token.line)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self.current.kind in ("+", "-"):
            token = self.advance()
            left = ast.Binary(token.kind, left, self._multiplicative(),
                              line=token.line)
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while (self.current.kind == "*"
               or self.check("keyword", "div")
               or self.check("keyword", "mod")):
            token = self.advance()
            op = token.text if token.kind == "keyword" else token.kind
            left = ast.Binary(op, left, self._unary(), line=token.line)
        return left

    def _unary(self) -> ast.Expr:
        token = self.current
        if self.accept("-"):
            return ast.Unary("-", self._unary(), line=token.line)
        if self.accept("keyword", "not"):
            return ast.Unary("not", self._unary(), line=token.line)
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if self.check("number"):
            self.advance()
            return ast.Number(token.value, line=token.line)
        if self.accept("("):
            expr = self._expression()
            self.expect(")")
            return expr
        if self.check("name"):
            name = self.advance()
            if self.check("("):
                return self._call(name)
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                return ast.Index(name.text, index, line=name.line)
            return ast.Name(name.text, line=name.line)
        raise ParseError("expected an expression", token)


def parse_program(source: str) -> ast.Program:
    return Parser(source).parse_program()
