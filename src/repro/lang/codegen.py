"""SPL code generator: AST -> naive MIPS-X assembly text.

The generator mirrors the structure of the Stanford compiler system the
paper used: it emits *naive* code -- branches act immediately, loads are
immediately usable -- and leaves all pipeline-awareness (delay slots, load
padding, squashing) to the post-pass reorganizer, exactly as on the real
machine.

Conventions (see :mod:`repro.isa.registers`):

* expression temporaries live in t0..t15; deep expressions beyond sixteen
  live values are a compile error (none of the workloads come close);
* arguments pass in a0..a5, results return in rv, ``ra`` is the link;
* each function's frame is ``[ra, params..., locals/arrays...]`` addressed
  off ``sp``; global scalars and arrays are absolute symbols (the 17-bit
  offset reaches them directly, often letting an array element load be a
  single ``ld value, base(index)`` instruction);
* register s4 is reserved as the console MMIO base;
* ``if``/``while``/``for`` conditions compile to fused compare-and-branch
  instructions (no condition codes, no materialized booleans) -- the
  paper's "explicit compare in the branch"; boolean *values* materialize
  through the branch idiom, which is what makes ~80% of branches require
  an explicit compare on this architecture.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.symbols import (
    FunctionScope,
    ProgramSymbols,
    VarSymbol,
    analyze,
)

CONSOLE_ADDRESS = 0x3FFFF0
STACK_TOP = 0x200000
#: default per-node stack size (words) for multiprocessor SPL programs;
#: must be a power of two so the prologue can compute sp with a shift
NODE_STACK_WORDS = 4096

#: expression temporaries (t0..t15)
TEMP_REGS = [f"t{i}" for i in range(16)]

_COMPARE_BRANCH = {          # branch when the comparison is TRUE
    "=": "beq", "<>": "bne", "<": "blt", "<=": "ble", ">": "bgt", ">=": "bge",
}
_COMPARE_INVERSE = {         # branch when the comparison is FALSE
    "=": "bne", "<>": "beq", "<": "bge", "<=": "bgt", ">": "ble", ">=": "blt",
}


class CompileError(Exception):
    pass


class CodeGenerator:
    """Generates one program; use :func:`generate` as the entry point."""

    def __init__(self, program: ast.Program, symbols: ProgramSymbols,
                 node_stack_words: int = 0):
        if node_stack_words and (node_stack_words < 0 or
                                 node_stack_words & (node_stack_words - 1)):
            raise CompileError("node_stack_words must be a power of two")
        self.program = program
        self.symbols = symbols
        self.node_stack_words = node_stack_words
        self.lines: List[str] = []
        self.stack: List[str] = []      #: temp registers currently live
        self.label_counter = 0
        self.used_runtime: set = set()
        self.scope: Optional[FunctionScope] = None
        self.epilogue_label = ""
        #: words pushed below the frame for call-site spills; local frame
        #: offsets are rebased by this amount while it is nonzero
        self.sp_adjust = 0
        self._next_temp = 0

    # ------------------------------------------------------------ plumbing
    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def new_label(self, hint: str = "L") -> str:
        self.label_counter += 1
        return f"{hint}{self.label_counter}"

    def alloc(self) -> str:
        """Round-robin temporary allocation.

        Cycling through the pool (instead of always reusing t0) removes
        most false dependences between neighbouring statements, which is
        what lets the reorganizer's scheduler find instructions to hide
        load delays behind.
        """
        for _ in range(len(TEMP_REGS)):
            reg = TEMP_REGS[self._next_temp]
            self._next_temp = (self._next_temp + 1) % len(TEMP_REGS)
            if reg not in self.stack:
                self.stack.append(reg)
                return reg
        raise CompileError("expression too deep: out of temporaries")

    def release(self, reg: str) -> None:
        self.stack.remove(reg)

    # ------------------------------------------------------------- program
    def generate(self) -> str:
        self.emit_label("_start")
        self.emit(f"li sp, {STACK_TOP}")
        if self.node_stack_words:
            # multiprocessor prologue: carve one stack per node below the
            # shared stack top, keyed by the per-CPU id delivered in gp
            shift = self.node_stack_words.bit_length() - 1
            self.emit(f"sll t0, gp, {shift}")
            self.emit("sub sp, sp, t0")
        self.emit(f"li s4, {CONSOLE_ADDRESS}")
        self.scope = self.symbols.main_scope
        self.epilogue_label = self.new_label("Lmain_exit")
        for stmt in self.program.main.body:
            self.gen_stmt(stmt)
        self.emit_label(self.epilogue_label)
        self.emit("halt")
        for func in self.program.functions:
            self.gen_function(func)
        self._emit_runtime()
        self._emit_globals()
        return "\n".join(self.lines) + "\n"

    def gen_function(self, func: ast.FuncDecl) -> None:
        scope = self.symbols.scopes[func.name]
        self.scope = scope
        self.sp_adjust = 0
        self.epilogue_label = self.new_label(f"Lret_{func.name}_")
        self.emit_label(scope.symbol.label)
        frame = scope.frame_words
        self.emit(f"addi sp, sp, -{frame}")
        self.emit("st ra, 0(sp)")
        for position, param in enumerate(func.params):
            offset = scope.variables[param].frame_offset
            self.emit(f"st a{position}, {offset}(sp)")
        for stmt in func.body.body:
            self.gen_stmt(stmt)
        self.emit_label(self.epilogue_label)
        self.emit("ld ra, 0(sp)")
        self.emit(f"addi sp, sp, {frame}")
        self.emit("ret")

    # ----------------------------------------------------------- statements
    def gen_stmt(self, stmt: ast.Stmt) -> None:  # noqa: C901
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self.gen_stmt(inner)
        elif isinstance(stmt, ast.Assign):
            reg = self.gen_expr(stmt.value)
            self.gen_store(stmt.target, reg)
            self.release(reg)
        elif isinstance(stmt, ast.If):
            else_label = self.new_label("Lelse")
            end_label = self.new_label("Lfi")
            self.gen_cond_false(stmt.condition,
                                else_label if stmt.else_body else end_label)
            self.gen_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self.emit(f"br {end_label}")
                self.emit_label(else_label)
                self.gen_stmt(stmt.else_body)
            self.emit_label(end_label)
        elif isinstance(stmt, ast.While):
            # rotated (bottom-tested) loop: the per-iteration branch is a
            # *backward*, predicted-taken branch the reorganizer can
            # squash-fill; only the entry jump tests at the top.
            top = self.new_label("Lwhile")
            test = self.new_label("Lwtest")
            self.emit(f"br {test}")
            self.emit_label(top)
            self.gen_stmt(stmt.body)
            self.emit_label(test)
            self.gen_cond_true(stmt.condition, top)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Repeat):
            top = self.new_label("Lrepeat")
            self.emit_label(top)
            for inner in stmt.body:
                self.gen_stmt(inner)
            self.gen_cond_false(stmt.condition, top)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self.gen_expr(stmt.value)
                self.emit(f"mov rv, {reg}")
                self.release(reg)
            self.emit(f"br {self.epilogue_label}")
        elif isinstance(stmt, ast.Write):
            reg = self.gen_expr(stmt.value)
            port = 1 if stmt.char else 0
            self.emit(f"st {reg}, {port}(s4)")
            self.release(reg)
        elif isinstance(stmt, ast.ExprStmt):
            reg = self.gen_expr(stmt.expr)
            self.release(reg)
        else:  # pragma: no cover - semantic pass rejects unknowns
            raise CompileError(f"cannot generate {stmt!r}")

    def _gen_for(self, stmt: ast.For) -> None:
        """Rotated for-loop: init, jump to the bottom test, body, step,
        backward continue-branch (predicted taken, squash-fillable)."""
        start = self.gen_expr(stmt.start)
        variable = self.symbols.lookup_var(self.scope, stmt.variable)
        self._store_var(variable, start)
        self.release(start)
        top = self.new_label("Lfor")
        test = self.new_label("Lftest")
        self.emit(f"br {test}")
        self.emit_label(top)
        self.gen_stmt(stmt.body)
        step_reg = self.alloc()
        self._load_var(variable, step_reg)
        self.emit(f"addi {step_reg}, {step_reg}, {-1 if stmt.down else 1}")
        self._store_var(variable, step_reg)
        self.release(step_reg)
        self.emit_label(test)
        var_reg = self.alloc()
        self._load_var(variable, var_reg)
        stop = self.gen_expr(stmt.stop)
        continue_branch = "bge" if stmt.down else "ble"
        self.emit(f"{continue_branch} {var_reg}, {stop}, {top}")
        self.release(stop)
        self.release(var_reg)

    # ------------------------------------------------------ variable access
    def _load_var(self, variable: VarSymbol, reg: str) -> None:
        if variable.is_global:
            self.emit(f"ld {reg}, g_{variable.name}")
        else:
            offset = variable.frame_offset + self.sp_adjust
            self.emit(f"ld {reg}, {offset}(sp)")

    def _store_var(self, variable: VarSymbol, reg: str) -> None:
        if variable.is_global:
            self.emit(f"st {reg}, g_{variable.name}")
        else:
            offset = variable.frame_offset + self.sp_adjust
            self.emit(f"st {reg}, {offset}(sp)")

    def gen_store(self, target: ast.Node, reg: str) -> None:
        if isinstance(target, ast.Name):
            variable = self.symbols.lookup_var(self.scope, target.name,
                                               target.line)
            self._store_var(variable, reg)
            return
        assert isinstance(target, ast.Index)
        variable = self.symbols.lookup_var(self.scope, target.name,
                                           target.line)
        index = self.gen_expr(target.index)
        if variable.is_global:
            self.emit(f"st {reg}, g_{variable.name}({index})")
        else:
            self.emit(f"add {index}, {index}, sp")
            offset = variable.frame_offset + self.sp_adjust
            self.emit(f"st {reg}, {offset}({index})")
        self.release(index)

    # ---------------------------------------------------------- expressions
    def gen_expr(self, expr: ast.Expr) -> str:  # noqa: C901
        if isinstance(expr, ast.Number):
            reg = self.alloc()
            self.emit(f"li {reg}, {expr.value}")
            return reg
        if isinstance(expr, ast.Name):
            variable = self.symbols.lookup_var(self.scope, expr.name,
                                               expr.line)
            reg = self.alloc()
            self._load_var(variable, reg)
            return reg
        if isinstance(expr, ast.Index):
            variable = self.symbols.lookup_var(self.scope, expr.name,
                                               expr.line)
            index = self.gen_expr(expr.index)
            if variable.is_global:
                self.emit(f"ld {index}, g_{variable.name}({index})")
            else:
                self.emit(f"add {index}, {index}, sp")
                offset = variable.frame_offset + self.sp_adjust
                self.emit(f"ld {index}, {offset}({index})")
            return index
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                reg = self.gen_expr(expr.operand)
                self.emit(f"sub {reg}, r0, {reg}")
                return reg
            return self._materialize_bool(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr.name, expr.args)
        raise CompileError(f"cannot evaluate {expr!r}")  # pragma: no cover

    def _gen_binary(self, expr: ast.Binary) -> str:
        op = expr.op
        if op in ("+", "-"):
            # additive with a constant folds into addi
            if isinstance(expr.right, ast.Number) and (
                    -(1 << 15) < expr.right.value < (1 << 15)):
                reg = self.gen_expr(expr.left)
                value = expr.right.value if op == "+" else -expr.right.value
                self.emit(f"addi {reg}, {reg}, {value}")
                return reg
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            mnemonic = "add" if op == "+" else "sub"
            self.emit(f"{mnemonic} {left}, {left}, {right}")
            self.release(right)
            return left
        if op == "*":
            power = _power_of_two(expr.right)
            if power is not None:
                reg = self.gen_expr(expr.left)
                if power:
                    self.emit(f"sll {reg}, {reg}, {power}")
                return reg
            power = _power_of_two(expr.left)
            if power is not None:
                reg = self.gen_expr(expr.right)
                if power:
                    self.emit(f"sll {reg}, {reg}, {power}")
                return reg
            return self.gen_call("__mul", [expr.left, expr.right])
        if op == "div":
            return self.gen_call("__div", [expr.left, expr.right])
        if op == "mod":
            return self.gen_call("__mod", [expr.left, expr.right])
        if op in _COMPARE_BRANCH or op in ("and", "or"):
            return self._materialize_bool(expr)
        raise CompileError(f"unknown operator {op!r}")  # pragma: no cover

    def _materialize_bool(self, expr: ast.Expr) -> str:
        """Boolean value contexts: 1/0 through the branch idiom."""
        reg = self.alloc()
        done = self.new_label("Lbool")
        self.emit(f"li {reg}, 1")
        self.gen_cond_true(expr, done)
        self.emit(f"li {reg}, 0")
        self.emit_label(done)
        return reg

    # ----------------------------------------------------- condition fusion
    def _compare_operand(self, expr: ast.Expr):
        """Comparison operand: the literal 0 is register r0 for free --
        "the constant zero ... is used as a source value for many
        instructions" -- which is what makes sign tests quick-comparable."""
        if isinstance(expr, ast.Number) and expr.value == 0:
            return "r0", False
        return self.gen_expr(expr), True

    def gen_cond_true(self, expr: ast.Expr, label: str) -> None:
        """Branch to ``label`` when ``expr`` is true (short-circuit)."""
        if isinstance(expr, ast.Binary) and expr.op in _COMPARE_BRANCH:
            left, release_left = self._compare_operand(expr.left)
            right, release_right = self._compare_operand(expr.right)
            self.emit(f"{_COMPARE_BRANCH[expr.op]} {left}, {right}, {label}")
            if release_right:
                self.release(right)
            if release_left:
                self.release(left)
            return
        if isinstance(expr, ast.Binary) and expr.op == "or":
            self.gen_cond_true(expr.left, label)
            self.gen_cond_true(expr.right, label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "and":
            skip = self.new_label("Land")
            self.gen_cond_false(expr.left, skip)
            self.gen_cond_true(expr.right, label)
            self.emit_label(skip)
            return
        if isinstance(expr, ast.Unary) and expr.op == "not":
            self.gen_cond_false(expr.operand, label)
            return
        reg = self.gen_expr(expr)
        self.emit(f"bne {reg}, r0, {label}")
        self.release(reg)

    def gen_cond_false(self, expr: ast.Expr, label: str) -> None:
        """Branch to ``label`` when ``expr`` is false (short-circuit)."""
        if isinstance(expr, ast.Binary) and expr.op in _COMPARE_INVERSE:
            left, release_left = self._compare_operand(expr.left)
            right, release_right = self._compare_operand(expr.right)
            self.emit(f"{_COMPARE_INVERSE[expr.op]} {left}, {right}, {label}")
            if release_right:
                self.release(right)
            if release_left:
                self.release(left)
            return
        if isinstance(expr, ast.Binary) and expr.op == "and":
            self.gen_cond_false(expr.left, label)
            self.gen_cond_false(expr.right, label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "or":
            skip = self.new_label("Lor")
            self.gen_cond_true(expr.left, skip)
            self.gen_cond_false(expr.right, label)
            self.emit_label(skip)
            return
        if isinstance(expr, ast.Unary) and expr.op == "not":
            self.gen_cond_true(expr.operand, label)
            return
        reg = self.gen_expr(expr)
        self.emit(f"beq {reg}, r0, {label}")
        self.release(reg)

    # ---------------------------------------------------------------- calls
    def gen_call(self, name: str, args: List[ast.Expr]) -> str:
        if name == "cpuid" and name not in self.symbols.functions:
            # builtin: the per-CPU identity convention (gp at reset); a
            # plain register move, no call machinery
            reg = self.alloc()
            self.emit(f"mov {reg}, gp")
            return reg
        if name.startswith("__"):
            label = name
            self.used_runtime.add(name)
        else:
            label = self.symbols.functions[name].label
        live = list(self.stack)
        if live:
            self.emit(f"addi sp, sp, -{len(live)}")
            self.sp_adjust += len(live)
            for slot, reg in enumerate(live):
                self.emit(f"st {reg}, {slot}(sp)")
        outer_stack = self.stack
        self.stack = []
        arg_regs = [self.gen_expr(arg) for arg in args]
        for position, reg in enumerate(arg_regs):
            self.emit(f"mov a{position}, {reg}")
        self.stack = []
        self.emit(f"call {label}")
        if live:
            for slot, reg in enumerate(live):
                self.emit(f"ld {reg}, {slot}(sp)")
            self.emit(f"addi sp, sp, {len(live)}")
            self.sp_adjust -= len(live)
        self.stack = outer_stack
        result = self.alloc()
        self.emit(f"mov {result}, rv")
        return result

    # -------------------------------------------------------------- runtime
    def _emit_runtime(self) -> None:
        from repro.lang.runtime import RUNTIME_ROUTINES, runtime_dependencies

        needed = set(self.used_runtime)
        for routine in list(needed):
            needed |= runtime_dependencies(routine)
        for name, text in RUNTIME_ROUTINES.items():
            if name in needed:
                self.lines.append(text.rstrip())

    def _emit_globals(self) -> None:
        for name, symbol in self.symbols.globals.items():
            self.emit_label(f"g_{name}")
            if symbol.is_array:
                self.lines.append(f"    .space {symbol.size}")
            else:
                self.lines.append("    .word 0")


def _power_of_two(expr: ast.Expr) -> Optional[int]:
    """log2 of a positive power-of-two literal, else None (0 for *1)."""
    if isinstance(expr, ast.Number) and expr.value > 0 and (
            expr.value & (expr.value - 1)) == 0:
        return expr.value.bit_length() - 1
    return None


def generate(program: ast.Program,
             symbols: Optional[ProgramSymbols] = None,
             node_stack_words: int = 0) -> str:
    """AST -> naive assembly text (the compiler's back end).

    ``node_stack_words`` (a power of two, 0 to disable) emits the
    multiprocessor prologue: ``sp = STACK_TOP - gp * node_stack_words``,
    one private stack per node.  On a uniprocessor ``gp`` is 0, so the
    same image runs unchanged on a single machine.
    """
    if symbols is None:
        symbols = analyze(program)
    return CodeGenerator(program, symbols,
                         node_stack_words=node_stack_words).generate()
