"""Symbol tables and semantic analysis for SPL.

A single pre-codegen pass that catches the usual classes of error --
undefined or duplicate names, arity mismatches, arrays used as scalars and
vice versa -- so the code generator can assume a well-formed program.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.lang import ast_nodes as ast


class SemanticError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclasses.dataclass
class VarSymbol:
    name: str
    is_global: bool
    size: Optional[int]          #: None = scalar; else array word count
    frame_offset: int = 0        #: locals/params: word offset from sp

    @property
    def is_array(self) -> bool:
        return self.size is not None


@dataclasses.dataclass
class FuncSymbol:
    name: str
    params: List[str]
    label: str

    @property
    def arity(self) -> int:
        return len(self.params)


MAX_PARAMS = 6  # a0..a5


@dataclasses.dataclass
class FunctionScope:
    symbol: FuncSymbol
    variables: Dict[str, VarSymbol]
    frame_words: int             #: ra + params + locals (+ local arrays)


@dataclasses.dataclass
class ProgramSymbols:
    globals: Dict[str, VarSymbol]
    functions: Dict[str, FuncSymbol]
    scopes: Dict[str, FunctionScope]
    main_scope: FunctionScope

    def lookup_var(self, scope: FunctionScope, name: str,
                   line: int = 0) -> VarSymbol:
        if name in scope.variables:
            return scope.variables[name]
        if name in self.globals:
            return self.globals[name]
        raise SemanticError(f"undefined variable {name!r}", line)


def analyze(program: ast.Program) -> ProgramSymbols:
    """Build symbol tables and validate the whole program."""
    globals_: Dict[str, VarSymbol] = {}
    for decl in program.globals:
        if decl.name in globals_:
            raise SemanticError(f"duplicate global {decl.name!r}", decl.line)
        if decl.size is not None and decl.size <= 0:
            raise SemanticError(f"array {decl.name!r} has non-positive size",
                                decl.line)
        globals_[decl.name] = VarSymbol(decl.name, True, decl.size)

    functions: Dict[str, FuncSymbol] = {}
    for func in program.functions:
        if func.name in functions:
            raise SemanticError(f"duplicate function {func.name!r}", func.line)
        if len(func.params) > MAX_PARAMS:
            raise SemanticError(
                f"{func.name!r} has more than {MAX_PARAMS} parameters",
                func.line)
        functions[func.name] = FuncSymbol(func.name, func.params,
                                          label=f"f_{func.name}")

    symbols = ProgramSymbols(globals_, functions, {}, main_scope=None)
    for func in program.functions:
        scope = _build_scope(func, symbols)
        symbols.scopes[func.name] = scope
        _check_stmt(func.body, scope, symbols, in_function=True)

    main_scope = FunctionScope(
        symbol=FuncSymbol("<main>", [], label="_start"),
        variables={}, frame_words=0)
    symbols.main_scope = main_scope
    _check_stmt(program.main, main_scope, symbols, in_function=False)
    return symbols


def _build_scope(func: ast.FuncDecl, symbols: ProgramSymbols) -> FunctionScope:
    variables: Dict[str, VarSymbol] = {}
    offset = 1  # slot 0 holds the return address
    for param in func.params:
        if param in variables:
            raise SemanticError(f"duplicate parameter {param!r}", func.line)
        variables[param] = VarSymbol(param, False, None, frame_offset=offset)
        offset += 1
    for decl in func.locals:
        if decl.name in variables:
            raise SemanticError(f"duplicate local {decl.name!r}", decl.line)
        if decl.size is not None and decl.size <= 0:
            raise SemanticError(f"array {decl.name!r} has non-positive size",
                                decl.line)
        variables[decl.name] = VarSymbol(decl.name, False, decl.size,
                                         frame_offset=offset)
        offset += decl.size if decl.size is not None else 1
    return FunctionScope(symbol=symbols.functions[func.name],
                         variables=variables, frame_words=offset)


def _check_stmt(stmt: ast.Stmt, scope: FunctionScope,
                symbols: ProgramSymbols, in_function: bool) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.body:
            _check_stmt(inner, scope, symbols, in_function)
    elif isinstance(stmt, ast.Assign):
        _check_target(stmt.target, scope, symbols)
        _check_expr(stmt.value, scope, symbols)
    elif isinstance(stmt, ast.If):
        _check_expr(stmt.condition, scope, symbols)
        _check_stmt(stmt.then_body, scope, symbols, in_function)
        if stmt.else_body is not None:
            _check_stmt(stmt.else_body, scope, symbols, in_function)
    elif isinstance(stmt, ast.While):
        _check_expr(stmt.condition, scope, symbols)
        _check_stmt(stmt.body, scope, symbols, in_function)
    elif isinstance(stmt, ast.For):
        variable = symbols.lookup_var(scope, stmt.variable, stmt.line)
        if variable.is_array:
            raise SemanticError(
                f"for-loop variable {stmt.variable!r} is an array", stmt.line)
        _check_expr(stmt.start, scope, symbols)
        _check_expr(stmt.stop, scope, symbols)
        _check_stmt(stmt.body, scope, symbols, in_function)
    elif isinstance(stmt, ast.Repeat):
        for inner in stmt.body:
            _check_stmt(inner, scope, symbols, in_function)
        _check_expr(stmt.condition, scope, symbols)
    elif isinstance(stmt, ast.Return):
        if not in_function and stmt.value is not None:
            raise SemanticError("return with a value outside a function",
                                stmt.line)
        if stmt.value is not None:
            _check_expr(stmt.value, scope, symbols)
    elif isinstance(stmt, ast.Write):
        _check_expr(stmt.value, scope, symbols)
    elif isinstance(stmt, ast.ExprStmt):
        _check_expr(stmt.expr, scope, symbols)
    else:  # pragma: no cover
        raise SemanticError(f"unknown statement {stmt!r}")


def _check_target(target: ast.Node, scope: FunctionScope,
                  symbols: ProgramSymbols) -> None:
    if isinstance(target, ast.Name):
        variable = symbols.lookup_var(scope, target.name, target.line)
        if variable.is_array:
            raise SemanticError(
                f"cannot assign to array {target.name!r} without an index",
                target.line)
    elif isinstance(target, ast.Index):
        variable = symbols.lookup_var(scope, target.name, target.line)
        if not variable.is_array:
            raise SemanticError(f"{target.name!r} is not an array",
                                target.line)
        _check_expr(target.index, scope, symbols)
    else:  # pragma: no cover
        raise SemanticError(f"bad assignment target {target!r}")


def _check_expr(expr: ast.Expr, scope: FunctionScope,
                symbols: ProgramSymbols) -> None:
    if isinstance(expr, ast.Number):
        return
    if isinstance(expr, ast.Name):
        variable = symbols.lookup_var(scope, expr.name, expr.line)
        if variable.is_array:
            raise SemanticError(
                f"array {expr.name!r} used without an index", expr.line)
    elif isinstance(expr, ast.Index):
        variable = symbols.lookup_var(scope, expr.name, expr.line)
        if not variable.is_array:
            raise SemanticError(f"{expr.name!r} is not an array", expr.line)
        _check_expr(expr.index, scope, symbols)
    elif isinstance(expr, ast.Unary):
        _check_expr(expr.operand, scope, symbols)
    elif isinstance(expr, ast.Binary):
        _check_expr(expr.left, scope, symbols)
        _check_expr(expr.right, scope, symbols)
    elif isinstance(expr, ast.Call):
        if expr.name == "cpuid" and expr.name not in symbols.functions:
            # builtin: reads the per-CPU identity register (gp)
            if expr.args:
                raise SemanticError("cpuid() takes no arguments", expr.line)
            return
        if expr.name not in symbols.functions:
            raise SemanticError(f"undefined function {expr.name!r}", expr.line)
        func = symbols.functions[expr.name]
        if len(expr.args) != func.arity:
            raise SemanticError(
                f"{expr.name!r} expects {func.arity} arguments, "
                f"got {len(expr.args)}", expr.line)
        for arg in expr.args:
            _check_expr(arg, scope, symbols)
    else:  # pragma: no cover
        raise SemanticError(f"unknown expression {expr!r}")
