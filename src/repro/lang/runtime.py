"""Runtime support routines (multiply, divide, modulo).

MIPS-X has no multiply or divide instruction -- just the ``mstep`` and
``dstep`` one-cycle steps operating with the MD special register -- so the
compiler calls these routines, exactly as the Stanford compiler system did.

All routines are *naive* code (the reorganizer schedules them with the rest
of the program), use only caller-saved registers, and follow the normal
calling convention (arguments in a0/a1, result in rv).

Division semantics: Pascal ``div`` truncates toward zero and ``mod`` takes
the sign of the dividend.  Division by zero yields quotient 0 and remainder
equal to the dividend (the natural output of the restoring ``dstep``
sequence; the real machine would leave it to software convention too).
"""

from __future__ import annotations

from typing import Dict, Set

#: 32 unrolled restoring-divide steps (no branches: one cycle per bit, the
#: whole point of having dstep in the hardware)
_DSTEPS = "\n".join("    dstep t0, t0, a1" for _ in range(32))

MUL = """
__mul:                      ; rv = a0 * a1 (low 32 bits)
    bge  a1, r0, __mul_go   ; normalize: make the multiplier non-negative
    sub  a1, r0, a1         ; (negating both operands keeps the product)
    sub  a0, r0, a0
__mul_go:
    movtos md, a1           ; multiplier into MD
    mov  t0, a0             ; multiplicand, doubled each step
    li   rv, 0
    beq  a1, r0, __mul_done ; zero multiplier: done (tested once per call)
__mul_loop:                 ; rotated: the hot branch is backward + taken
    mstep rv, rv, t0        ; rv += t0 if MD bit 0; MD >>= 1
    sll  t0, t0, 1
    movfrs t1, md           ; early out once every multiplier bit is done
    bne  t1, r0, __mul_loop
__mul_done:
    ret
"""

DIV = f"""
__div:                      ; rv = a0 div a1 (truncating toward zero)
    xor  t8, a0, a1         ; quotient sign in bit 31
    bge  a0, r0, __div_p1
    sub  a0, r0, a0
__div_p1:
    bge  a1, r0, __div_p2
    sub  a1, r0, a1
__div_p2:
    movtos md, a0           ; dividend into MD; quotient accumulates there
    mov  t0, r0             ; remainder accumulator
{_DSTEPS}
    movfrs rv, md
    bge  t8, r0, __div_done
    sub  rv, r0, rv
__div_done:
    ret
"""

MOD = f"""
__mod:                      ; rv = a0 mod a1 (sign follows the dividend)
    mov  t8, a0             ; remember the dividend's sign
    bge  a0, r0, __mod_p1
    sub  a0, r0, a0
__mod_p1:
    bge  a1, r0, __mod_p2
    sub  a1, r0, a1
__mod_p2:
    movtos md, a0
    mov  t0, r0
{_DSTEPS}
    mov  rv, t0
    bge  t8, r0, __mod_done
    sub  rv, r0, rv
__mod_done:
    ret
"""

RUNTIME_ROUTINES: Dict[str, str] = {
    "__mul": MUL,
    "__div": DIV,
    "__mod": MOD,
}

_DEPENDENCIES: Dict[str, Set[str]] = {
    "__mul": set(),
    "__div": set(),
    "__mod": set(),
}


def runtime_dependencies(name: str) -> Set[str]:
    """Transitive runtime routines required by ``name``."""
    return set(_DEPENDENCIES.get(name, set()))
