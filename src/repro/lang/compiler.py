"""The SPL compiler driver: source -> naive assembly -> reorganized program.

Mirrors the paper's software system: the compiler front end knows nothing
about the pipeline; the post-pass reorganizer makes the code correct and
fast for the machine.  The :func:`build` convenience goes all the way to a
loadable :class:`~repro.asm.unit.Program`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.asm.assembler import parse as parse_asm
from repro.asm.unit import AsmUnit, Program
from repro.lang.ast_nodes import Program as AstProgram
from repro.lang.codegen import generate
from repro.lang.parser import parse_program
from repro.lang.symbols import ProgramSymbols, analyze
from repro.reorg.delay_slots import MIPSX_SCHEME, BranchScheme
from repro.reorg.reorganizer import ReorgResult, reorganize


@dataclasses.dataclass
class Compilation:
    """Everything the compiler produced for one source program."""

    ast: AstProgram
    symbols: ProgramSymbols
    asm_text: str                    #: naive assembly (pre-reorganization)
    reorg: Optional[ReorgResult]     #: None when reorganization was skipped

    @property
    def unit(self) -> AsmUnit:
        """The final symbolic unit (reorganized if reorganization ran)."""
        if self.reorg is not None:
            return self.reorg.unit
        return parse_asm(self.asm_text)

    def program(self) -> Program:
        """Assemble to a loadable image."""
        return self.unit.assemble()

    def naive_program(self) -> Program:
        """The un-reorganized image (golden-model semantics)."""
        return parse_asm(self.asm_text).assemble()


def compile_spl(source: str, scheme: Optional[BranchScheme] = MIPSX_SCHEME,
                profile: Optional[dict] = None,
                schedule_loads: bool = True,
                node_stack_words: int = 0) -> Compilation:
    """Compile SPL source.

    ``scheme=None`` skips reorganization (naive output only, for the
    golden model); otherwise the reorganizer runs under ``scheme``.
    ``node_stack_words`` (power of two) emits the multiprocessor
    per-node stack prologue -- see :func:`repro.lang.codegen.generate`.
    """
    tree = parse_program(source)
    symbols = analyze(tree)
    asm_text = generate(tree, symbols, node_stack_words=node_stack_words)
    reorg = None
    if scheme is not None:
        reorg = reorganize(parse_asm(asm_text), scheme, profile=profile,
                           schedule_loads=schedule_loads)
    return Compilation(ast=tree, symbols=symbols, asm_text=asm_text,
                       reorg=reorg)


def build(source: str, scheme: BranchScheme = MIPSX_SCHEME,
          profile: Optional[dict] = None) -> Program:
    """Source straight to a loadable, reorganized program image."""
    return compile_spl(source, scheme, profile).program()
