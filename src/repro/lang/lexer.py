"""Lexer for SPL, the small Pascal-like language of this reproduction.

The MIPS-X evaluation used "large Pascal and Lisp benchmarks" compiled by
the Stanford compiler system.  SPL is the stand-in source language: Pascal
flavoured (``begin``/``end``, ``:=``, ``div``/``mod``, ``for .. to .. do``),
integers only, with arrays and recursive functions -- enough to express the
Stanford benchmark suite (perm, towers, queens, intmm, bubble, quick, ...)
and the cons-cell list workloads that stand in for Lisp.
"""

from __future__ import annotations

import dataclasses
from typing import List

KEYWORDS = {
    "program", "var", "func", "proc", "begin", "end", "if", "then", "else",
    "while", "do", "for", "to", "downto", "repeat", "until", "return",
    "and", "or", "not", "div", "mod", "write", "writec",
}

SYMBOLS = [
    ":=", "<>", "<=", ">=",  # two-character symbols first
    "+", "-", "*", "(", ")", "[", "]", ";", ",", "=", "<", ">", ".",
]


class LexError(SyntaxError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str        #: "name", "number", "keyword", or the symbol itself
    text: str
    line: int

    @property
    def value(self) -> int:
        return int(self.text, 0)


def tokenize(source: str) -> List[Token]:
    """Tokenize SPL source; comments are ``{ ... }`` or ``// ...``."""
    tokens: List[Token] = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            continue
        if ch == "{":
            while index < length and source[index] != "}":
                if source[index] == "\n":
                    line += 1
                index += 1
            if index >= length:
                raise LexError("unterminated comment", line)
            index += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if ch.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            tokens.append(Token("number", source[start:index], line))
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text.lower() in KEYWORDS else "name"
            tokens.append(Token(kind, text.lower() if kind == "keyword"
                                else text, line))
            continue
        if ch == "'":
            if index + 2 < length and source[index + 2] == "'":
                tokens.append(Token("number", str(ord(source[index + 1])),
                                    line))
                index += 3
                continue
            raise LexError("bad character literal", line)
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                tokens.append(Token(symbol, symbol, line))
                index += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
