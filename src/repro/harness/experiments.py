"""Experiment point functions and the sweep grids built from them.

Every function here is a module-level, picklable entry point that
rebuilds its own inputs (trace, programs) deterministically and returns a
plain JSON-able dict -- the contract the :class:`~repro.harness.runner.
Runner` needs to fan points across processes and merge results
reproducibly.

The grids mirror the paper's studies: the six Table 1 branch schemes
(E1), every 512-word Icache organization plus the fetch-back study (E4/
E5), the Ecache size sweep (E15), the coprocessor interface schemes
(E12), and the per-workload CPI measurements behind E6/E7.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.harness.runner import Job

#: trace length used by the cache sweeps (matches benchmarks/bench_icache)
TRACE_LENGTH = 400_000


# ------------------------------------------------------------ point functions
def branch_scheme_point(slots: int, squash: str,
                        squash_if_go: bool = False,
                        names: Optional[Sequence[str]] = None) -> dict:
    """One row of Table 1: average cycles per branch for one scheme."""
    from repro.analysis.branch_schemes import evaluate_scheme
    from repro.reorg.delay_slots import BranchScheme
    from repro.workloads import PASCAL_SUITE

    scheme = BranchScheme(slots, squash, squash_if_go=squash_if_go)
    evaluation = evaluate_scheme(scheme, list(names or PASCAL_SUITE))
    return {
        "slots": slots,
        "squash": squash,
        "cycles_per_branch": evaluation.cycles_per_branch,
        "executions": evaluation.executions,
        "cycles": evaluation.cycles,
    }


def icache_organization_point(sets: int, ways: int, block_words: int,
                              fetchback: int = 2, miss_cycles: int = 2,
                              trace_length: int = TRACE_LENGTH) -> dict:
    """One Icache organization over the calibrated synthetic trace."""
    from repro.core.config import IcacheConfig
    from repro.icache.explorer import evaluate
    from repro.traces.synthetic import paper_regime_program

    trace = list(paper_regime_program().instruction_trace(trace_length))
    config = IcacheConfig(sets=sets, ways=ways, block_words=block_words,
                          fetchback=fetchback, miss_cycles=miss_cycles)
    result = evaluate(config, trace)
    return {
        "sets": sets,
        "ways": ways,
        "block_words": block_words,
        "fetchback": fetchback,
        "miss_cycles": miss_cycles,
        "miss_ratio": result.miss_ratio,
        "fetch_cost": result.fetch_cost,
    }


def ecache_size_point(size_words: int, data_words: int = 400_000,
                      references: int = 400_000,
                      seed: int = 0xBADCAFE) -> dict:
    """One Ecache size over the large synthetic data trace (E15)."""
    from repro.core.config import EcacheConfig
    from repro.ecache.ecache import Ecache
    from repro.traces.synthetic import SyntheticProgram

    program = SyntheticProgram(data_words=data_words, seed=seed)
    cache = Ecache(EcacheConfig(size_words=size_words))
    stall = 0
    count = 0
    for address, is_store in program.data_trace(references):
        if is_store:
            stall += cache.write(address, True)
        else:
            stall += cache.read(address, True)
        count += 1
    return {
        "size_words": size_words,
        "miss_rate": cache.stats.miss_rate,
        "stall_per_ref": stall / count if count else 0.0,
    }


def coproc_scheme_point(name: str) -> dict:
    """Interface-scheme relative performance for one FP workload (E12)."""
    from repro.analysis.common import run_measured
    from repro.coproc.schemes import evaluate_schemes, mix_from_machine

    mix = mix_from_machine(name, run_measured(name))
    outcomes = {}
    for outcome in evaluate_schemes(mix):
        outcomes[outcome.scheme.name] = {
            "cycles": outcome.cycles,
            "relative_performance": outcome.relative_performance,
        }
    return {
        "workload": name,
        "fp_fraction": mix.fp_fraction,
        "schemes": outcomes,
    }


def workload_cpi_point(name: str) -> dict:
    """CPI/no-op/throughput measurement for one workload (E6/E7).

    The row carries the full telemetry snapshot of the run (catalogued
    counter names, see :mod:`repro.telemetry.catalog`) so the harness
    can aggregate ``METRICS_summary.json`` and ``check_results.py
    --metrics-file`` can audit counter-derived CPI against the analysis
    CPI reported here.
    """
    from repro.analysis.cpi import measure_with_metrics, scaled_memory_config

    breakdown, metrics = measure_with_metrics(name, scaled_memory_config())
    return {
        "workload": name,
        "cycles": breakdown.cycles,
        "instructions": breakdown.instructions,
        "cpi": breakdown.cpi,
        "noop_fraction": breakdown.noop_fraction,
        "sustained_mips": breakdown.sustained_mips,
        "metrics": metrics.snapshot(),
    }


def multi_scaling_point(workload: str, nodes: int, bus_latency: int = 0,
                        invalidation: bool = True,
                        size: Optional[int] = None,
                        max_cycles: int = 50_000_000) -> dict:
    """One multiprocessor scaling point: ``workload`` on ``nodes`` nodes.

    Runs one parallel SPL workload on a
    :class:`~repro.multi.system.MultiMachine` with the given bus-latency
    and invalidation knobs, self-checks the console against the
    independently computed expectation, and reports global cycles plus
    the bus counters.  Deliberately carries no wall-clock fields so a
    serial sweep and a Runner-parallel sweep produce byte-identical
    ``multi`` sections.
    """
    from repro.core.config import MachineConfig
    from repro.multi import MultiMachine
    from repro.workloads.parallel import expected_console, parallel_program

    program = parallel_program(workload, nodes, size=size)
    system = MultiMachine(nodes, MachineConfig(), bus_latency=bus_latency,
                          invalidation=invalidation)
    system.load_program(program)
    system.run(max_cycles)
    if not system.all_halted:
        raise RuntimeError(
            f"{workload} on {nodes} nodes did not halt in {max_cycles} "
            "global cycles")
    expected = expected_console(workload, nodes, size=size)
    result = list(system.console.values)
    snapshot = system.metrics().snapshot()
    return {
        "workload": workload,
        "nodes": nodes,
        "bus_latency": bus_latency,
        "invalidation": invalidation,
        "size": size,
        "cycles": system.cycles,
        "node_cycles": [m.stats.cycles for m in system.machines],
        "instructions": snapshot["pipeline.instructions.retired"],
        "bus": {
            "acquisitions": system.bus.acquisitions,
            "contention_cycles": system.bus.contention_cycles,
            "invalidations": system.bus.invalidations,
        },
        "result": result,
        "expected": list(expected),
        "result_ok": result == list(expected),
    }


#: node grids for the multi-scaling sweep (full: the paper's 6-10 range
#: bracketed from 1; quick: the CI smoke grid)
MULTI_FULL_NODES = tuple(range(1, 11))
MULTI_QUICK_NODES = (1, 2, 4)

#: the non-zero bus-latency arm of the contention study
MULTI_BUS_LATENCY = 4


def multi_scaling_jobs(quick: bool = False,
                       nodes: Optional[Sequence[int]] = None,
                       timeout: Optional[float] = None) -> List[Job]:
    """The multi-scaling grid: workloads x nodes (+ psieve knob arms).

    Every workload sweeps the node grid at bus latency 0 with
    invalidation on; the sieve additionally sweeps the non-zero bus
    latency and invalidation-off arms so the BENCH ``multi`` section
    carries one contention curve and one coherence-cost curve.
    """
    from repro.workloads.parallel import PARALLEL_WORKLOADS, QUICK_SIZES

    node_list = [int(n) for n in nodes] if nodes else list(
        MULTI_QUICK_NODES if quick else MULTI_FULL_NODES)
    grid = [(name, n, 0, True) for name in PARALLEL_WORKLOADS
            for n in node_list]
    grid += [("psieve", n, MULTI_BUS_LATENCY, True) for n in node_list]
    grid += [("psieve", n, 0, False) for n in node_list]
    jobs = []
    for name, n, latency, invalidation in grid:
        params = {"workload": name, "nodes": n, "bus_latency": latency,
                  "invalidation": invalidation}
        if quick:
            params["size"] = QUICK_SIZES[name]
        flavor = "inv" if invalidation else "noinv"
        jobs.append(Job(
            id=f"multi/{name}-n{n:02d}-bus{latency}-{flavor}",
            fn=_POINT_FNS["multi-scaling"], params=params,
            timeout=timeout, sweep="multi-scaling"))
    return jobs


# ------------------------------------------------------------------- grids
def icache_design_points(total_words: int = 512) -> List[dict]:
    """The (sets, ways, block) splits of a fixed area budget -- the same
    enumeration as :func:`repro.icache.explorer.sweep_organizations`."""
    points = []
    block = 1
    while block <= total_words:
        lines = total_words // block
        ways = 1
        while ways <= lines:
            sets = lines // ways
            if sets * ways * block == total_words and sets >= 1:
                points.append({"sets": sets, "ways": ways,
                               "block_words": block})
            ways *= 2
        block *= 2
    return points


_POINT_FNS = {
    "branch-schemes": "repro.harness.experiments:branch_scheme_point",
    "icache-organizations":
        "repro.harness.experiments:icache_organization_point",
    "ecache-sweep": "repro.harness.experiments:ecache_size_point",
    "coproc-schemes": "repro.harness.experiments:coproc_scheme_point",
    "workload-cpi": "repro.harness.experiments:workload_cpi_point",
    "multi-scaling": "repro.harness.experiments:multi_scaling_point",
}


def _branch_jobs(quick: bool) -> List[Job]:
    from repro.reorg.delay_slots import TABLE1_SCHEMES
    from repro.workloads import PASCAL_SUITE

    names = list(PASCAL_SUITE[:2]) if quick else None
    jobs = []
    for scheme in TABLE1_SCHEMES:
        params = {"slots": scheme.slots, "squash": scheme.squash,
                  "squash_if_go": scheme.squash_if_go}
        if names:
            params["names"] = names
        jobs.append(Job(id=f"branch/{scheme.slots}-slot-{scheme.squash}",
                        fn=_POINT_FNS["branch-schemes"], params=params,
                        sweep="branch-schemes"))
    return jobs


def _icache_jobs(quick: bool) -> List[Job]:
    trace_length = 60_000 if quick else TRACE_LENGTH
    points = icache_design_points()
    if quick:
        points = points[::4] or points
    jobs = [
        Job(id=f"icache/{p['sets']}set-{p['ways']}way-{p['block_words']}w",
            fn=_POINT_FNS["icache-organizations"],
            params=dict(p, trace_length=trace_length),
            sweep="icache-organizations")
        for p in points
    ]
    # the fetch-back study rides on the paper organization
    for fetchback in (1, 2, 3, 4):
        jobs.append(Job(
            id=f"icache/fetchback-{fetchback}",
            fn=_POINT_FNS["icache-organizations"],
            params={"sets": 4, "ways": 8, "block_words": 16,
                    "fetchback": fetchback,
                    "miss_cycles": max(2, fetchback),
                    "trace_length": trace_length},
            sweep="icache-organizations"))
    return jobs


def _ecache_jobs(quick: bool) -> List[Job]:
    sizes = (16384, 65536) if quick else (4096, 16384, 65536, 262144)
    references = 80_000 if quick else 400_000
    return [Job(id=f"ecache/{size}w",
                fn=_POINT_FNS["ecache-sweep"],
                params={"size_words": size, "references": references},
                sweep="ecache-sweep")
            for size in sizes]


def _coproc_jobs(quick: bool) -> List[Job]:
    from repro.workloads import FP_SUITE

    names = FP_SUITE[:1] if quick else FP_SUITE
    return [Job(id=f"coproc/{name}", fn=_POINT_FNS["coproc-schemes"],
                params={"name": name}, sweep="coproc-schemes")
            for name in names]


def _cpi_jobs(quick: bool) -> List[Job]:
    from repro.workloads import LISP_SUITE, PASCAL_SUITE

    names = list(PASCAL_SUITE) + list(LISP_SUITE)
    if quick:
        names = names[:3]
    return [Job(id=f"cpi/{name}", fn=_POINT_FNS["workload-cpi"],
                params={"name": name}, sweep="workload-cpi")
            for name in names]


#: sweep name -> job-list builder (quick: bool) -> List[Job]
EXPERIMENT_SWEEPS = {
    "branch-schemes": _branch_jobs,
    "icache-organizations": _icache_jobs,
    "ecache-sweep": _ecache_jobs,
    "coproc-schemes": _coproc_jobs,
    "workload-cpi": _cpi_jobs,
}


def sweep_jobs(name: str, quick: bool = False,
               timeout: Optional[float] = None) -> List[Job]:
    """The job grid for one named sweep."""
    jobs = EXPERIMENT_SWEEPS[name](quick)
    if timeout is not None:
        jobs = [Job(id=j.id, fn=j.fn, params=j.params, timeout=timeout,
                    sweep=j.sweep) for j in jobs]
    return jobs


def default_jobs(quick: bool = False,
                 timeout: Optional[float] = None,
                 sweeps: Optional[Sequence[str]] = None) -> List[Job]:
    """The full experiment grid (all sweeps, submission-ordered)."""
    jobs: List[Job] = []
    for name in (sweeps or EXPERIMENT_SWEEPS):
        jobs.extend(sweep_jobs(name, quick=quick, timeout=timeout))
    return jobs


# ----------------------------------------------------------- traced sweeps
# Capture-once / replay-many equivalents of the cache and branch sweeps:
# the event streams are captured (or loaded from the TraceStore) once and
# every configuration is evaluated by the exact trace-replay models.  Row
# ids and result fields match the live jobs', so the two paths are
# directly comparable (and are compared, by tools/check_results.py and
# tests/test_trace_replay.py).

def traced_icache_sweep(quick: bool = False, reuse: bool = True,
                        store=None) -> dict:
    """Replay every Icache organization against one stored fetch trace."""
    import time

    from repro.core.config import IcacheConfig
    from repro.icache import trace_sim
    from repro.traces.store import (
        TraceStore,
        capture_synthetic_fetch,
        synthetic_fetch_descriptor,
    )
    from repro.traces.synthetic import paper_regime_program

    store = store if store is not None else TraceStore()
    trace_length = 60_000 if quick else TRACE_LENGTH
    program = paper_regime_program()
    captured, capture_s, hit = store.get_or_capture(
        synthetic_fetch_descriptor(program, trace_length),
        lambda: capture_synthetic_fetch(program, trace_length),
        reuse=reuse)
    addresses = captured["addresses"]

    points = icache_design_points()
    if quick:
        points = points[::4] or points
    grid = [(f"icache/{p['sets']}set-{p['ways']}way-{p['block_words']}w",
             dict(p, fetchback=2, miss_cycles=2))
            for p in points]
    grid += [(f"icache/fetchback-{fb}",
              {"sets": 4, "ways": 8, "block_words": 16,
               "fetchback": fb, "miss_cycles": max(2, fb)})
             for fb in (1, 2, 3, 4)]

    started = time.perf_counter()
    rows = []
    for job_id, params in grid:
        config = IcacheConfig(**params)
        stats = trace_sim.replay(config, addresses)
        rows.append(dict(
            params, id=job_id, miss_ratio=stats.miss_rate,
            fetch_cost=stats.average_fetch_cost(config.miss_cycles)))
    replay_s = time.perf_counter() - started
    return {"sweep": "icache-organizations", "rows": rows,
            "capture_s": capture_s, "replay_s": replay_s,
            "cache_hits": int(hit), "cache_misses": int(not hit)}


def traced_branch_sweep(quick: bool = False, reuse: bool = True,
                        store=None) -> dict:
    """Replay Table 1 from stored branch counts and scheme plan costs."""
    import time

    from repro.analysis.trace_replay import ReplayTiming, replay_scheme
    from repro.reorg.delay_slots import TABLE1_SCHEMES
    from repro.traces.store import TraceStore
    from repro.workloads import PASCAL_SUITE

    store = store if store is not None else TraceStore()
    names = list(PASCAL_SUITE[:2]) if quick else list(PASCAL_SUITE)
    timing = ReplayTiming()
    started = time.perf_counter()
    rows = []
    for scheme in TABLE1_SCHEMES:
        evaluation = replay_scheme(scheme, names, store=store, reuse=reuse,
                                   timing=timing)
        rows.append({"id": f"branch/{scheme.slots}-slot-{scheme.squash}",
                     "slots": scheme.slots, "squash": scheme.squash,
                     "cycles_per_branch": evaluation.cycles_per_branch,
                     "executions": evaluation.executions,
                     "cycles": evaluation.cycles})
    wall = time.perf_counter() - started
    return {"sweep": "branch-schemes", "rows": rows,
            "capture_s": timing.capture_s,
            "replay_s": max(0.0, wall - timing.capture_s),
            "cache_hits": timing.cache_hits,
            "cache_misses": timing.cache_misses}


def traced_ecache_sweep(quick: bool = False, reuse: bool = True,
                        store=None) -> dict:
    """Replay the Ecache size sweep against one stored data trace."""
    import time

    from repro.core.config import EcacheConfig
    from repro.ecache import trace_sim as ecache_trace_sim
    from repro.traces.store import (
        TraceStore,
        capture_synthetic_data,
        synthetic_data_descriptor,
    )
    from repro.traces.synthetic import SyntheticProgram

    store = store if store is not None else TraceStore()
    sizes = (16384, 65536) if quick else (4096, 16384, 65536, 262144)
    references = 80_000 if quick else 400_000
    program = SyntheticProgram(data_words=400_000, seed=0xBADCAFE)
    captured, capture_s, hit = store.get_or_capture(
        synthetic_data_descriptor(program, references),
        lambda: capture_synthetic_data(program, references),
        reuse=reuse)

    started = time.perf_counter()
    rows = []
    for size in sizes:
        config = EcacheConfig(size_words=size)
        stats, stall = ecache_trace_sim.replay_data(
            config, captured["addresses"], captured["is_store"])
        rows.append({"id": f"ecache/{size}w", "size_words": size,
                     "miss_rate": stats.miss_rate,
                     "stall_per_ref": stall / references if references
                     else 0.0})
    replay_s = time.perf_counter() - started
    return {"sweep": "ecache-sweep", "rows": rows,
            "capture_s": capture_s, "replay_s": replay_s,
            "cache_hits": int(hit), "cache_misses": int(not hit)}


#: sweep name -> traced evaluator (quick, reuse, store) -> result dict
TRACED_SWEEPS = {
    "branch-schemes": traced_branch_sweep,
    "icache-organizations": traced_icache_sweep,
    "ecache-sweep": traced_ecache_sweep,
}
