"""Benchmark telemetry: core throughput and sweep wall-clock.

``collect()`` (the engine behind ``repro bench``) measures

* **core throughput** -- simulated ``cycles/sec`` of the cycle-accurate
  pipeline on compiled workloads, compile time excluded;
* **experiment sweep wall-clock** -- the full grid from
  :mod:`repro.harness.experiments`, run serially and through the parallel
  :class:`~repro.harness.runner.Runner`, with per-job durations;

and writes ``BENCH_pipeline.json`` at the repo root so successive PRs
leave a machine-readable perf trajectory.  ``merge_section`` lets other
producers (the pytest benchmark suite) fold their timings into the same
file without clobbering it.

The workload-cpi sweep's per-job telemetry snapshots (see
:mod:`repro.telemetry`) are aggregated by :func:`build_metrics_summary`
into ``METRICS_summary.json`` -- the file ``tools/check_results.py
--metrics-file`` audits for counter/analysis CPI consistency.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.runner import Job, JobResult, Runner

#: src/repro/harness/bench.py -> repository root
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pipeline.json"
DEFAULT_METRICS_OUTPUT = REPO_ROOT / "METRICS_summary.json"

#: workloads used for the cycles/sec probe: one loop-heavy integer
#: program and one branchy one, both in the Pascal suite
THROUGHPUT_WORKLOADS = ("sieve", "bubble")


def write_json_atomic(path: pathlib.Path, payload: Any) -> None:
    """Crash-durable JSON write: temp file in the target directory,
    fsync, ``os.replace``, then fsync the directory so the *rename
    itself* survives a power cut.  A reader (or a concurrent producer)
    never observes a partially-written telemetry file, only the old or
    the new one -- even if the process is killed between any two steps
    (a leftover ``*.tmp`` is the only possible debris, and it is never
    mistaken for the real file)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               suffix=path.suffix + ".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    directory_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    except OSError:
        pass  # some filesystems refuse directory fsync; rename still atomic
    finally:
        os.close(directory_fd)


def measure_core_throughput(names: Sequence[str] = THROUGHPUT_WORKLOADS,
                            repeats: int = 5) -> Dict[str, Any]:
    """Pure-simulation cycles/sec (programs compiled once, outside the
    timed region)."""
    from repro.core import Machine, MachineConfig
    from repro.workloads import cached_program

    per_workload = {}
    total_cycles = 0
    total_wall = 0.0
    for name in names:
        program = cached_program(name)
        started = time.perf_counter()
        cycles = 0
        for _ in range(repeats):
            machine = Machine(MachineConfig())
            machine.load_program(program)
            cycles += machine.run().cycles
        wall = time.perf_counter() - started
        per_workload[name] = {
            "cycles": cycles,
            "wall_s": round(wall, 4),
            "cycles_per_sec": round(cycles / wall) if wall else 0,
        }
        total_cycles += cycles
        total_wall += wall
    return {
        "workloads": per_workload,
        "repeats": repeats,
        "cycles_per_sec": (round(total_cycles / total_wall)
                           if total_wall else 0),
    }


def measure_jit_throughput(names: Sequence[str] = THROUGHPUT_WORKLOADS,
                           repeats: int = 3) -> Dict[str, Any]:
    """Translated-fast-path speedup per workload: jit vs interpreter.

    Each workload runs ``repeats`` times per configuration (programs
    compiled once, outside the timed region).  Alongside the wall-clock
    ratio, the section records what the timing means: ``equivalent``
    asserts the jit run's cycle and retired-instruction counts match the
    interpretive run's exactly (the fast path is cycle-exact or it is
    broken), ``compile_s`` is the wall time the block compiler spent,
    and ``entry_hit_rate`` is taken entries over dispatch hits -- a low
    rate means guards keep bouncing blocks back to the interpreter.
    """
    import dataclasses as _dc

    from repro.core import Machine, MachineConfig
    from repro.workloads import cached_program

    per_workload: Dict[str, Any] = {}
    total_nojit = 0.0
    total_jit = 0.0
    all_equivalent = True
    for name in names:
        program = cached_program(name)
        row: Dict[str, Any] = {}
        baseline = None
        for jit in (False, True):
            config = _dc.replace(MachineConfig(), jit=jit)
            started = time.perf_counter()
            cycles = 0
            machine = None
            for _ in range(repeats):
                machine = Machine(config)
                machine.load_program(program)
                cycles += machine.run().cycles
            wall = time.perf_counter() - started
            key = "jit" if jit else "nojit"
            row[f"{key}_wall_s"] = round(wall, 4)
            row[f"{key}_cycles_per_sec"] = round(cycles / wall) if wall else 0
            if not jit:
                baseline = (cycles, machine.pipeline.stats.retired)
                total_nojit += wall
            else:
                row["equivalent"] = (
                    (cycles, machine.pipeline.stats.retired) == baseline)
                all_equivalent &= row["equivalent"]
                total_jit += wall
                translator = machine.pipeline._translator
                stats = translator.stats
                hits = stats.entries + stats.entry_rejected
                row["compile_s"] = round(translator.compile_s, 4)
                row["blocks_compiled"] = stats.compiled
                row["entry_hit_rate"] = (round(stats.entries / hits, 4)
                                         if hits else 0.0)
                run_cycles = machine.pipeline.stats.cycles
                row["cycle_coverage"] = (
                    round(stats.cycles / run_cycles, 4) if run_cycles
                    else 0.0)
        row["speedup"] = (round(row["nojit_wall_s"] / row["jit_wall_s"], 2)
                          if row["jit_wall_s"] else 0.0)
        per_workload[name] = row
    return {
        "workloads": per_workload,
        "repeats": repeats,
        "equivalent": all_equivalent,
        "speedup": (round(total_nojit / total_jit, 2) if total_jit else 0.0),
    }


def _results_section(results: Sequence[JobResult]) -> Dict[str, Any]:
    return {
        r.job_id: {
            "status": r.status,
            "sweep": r.sweep,
            "duration_s": round(r.duration, 4),
            "attempts": r.attempts,
        }
        for r in results
    }


def build_metrics_summary(results: Sequence[JobResult]) -> Dict[str, Any]:
    """Aggregate per-job telemetry snapshots into one summary payload.

    Pure and deterministic: no timestamps, counters summed across jobs,
    derived gauges recomputed from the summed counters (never averaged)
    -- so a parallel sweep aggregates **byte-identically** to a serial
    one (pinned by ``tests/test_telemetry.py``).  The payload is what
    ``METRICS_summary.json`` holds and what ``check_results.py
    --metrics-file`` audits: each workload's full snapshot, the analysis
    CPI reported alongside it (the identity under test), and the suite
    totals.
    """
    per_workload: Dict[str, Any] = {}
    analysis: Dict[str, Any] = {}
    for result in results:
        if not result.ok or result.sweep != "workload-cpi":
            continue
        value = result.value or {}
        snapshot = value.get("metrics")
        if not isinstance(snapshot, dict):
            continue
        name = value.get("workload", result.job_id)
        per_workload[name] = {key: snapshot[key] for key in sorted(snapshot)}
        analysis[name] = {
            "cpi": value.get("cpi"),
            "noop_fraction": value.get("noop_fraction"),
            "cycles": value.get("cycles"),
            "instructions": value.get("instructions"),
        }
    from repro.telemetry.metrics import (derived_from_counters,
                                         merge_counter_snapshots)

    totals = merge_counter_snapshots(per_workload.values())
    return {
        "schema": 1,
        "sweep": "workload-cpi",
        "workloads": sorted(per_workload),
        "per_workload": per_workload,
        "analysis": analysis,
        "totals": totals,
        "derived": derived_from_counters(totals),
    }


def build_multi_section(results: Sequence[JobResult]) -> Dict[str, Any]:
    """Aggregate multi-scaling job results into the ``multi`` section.

    Pure and deterministic (no wall-clock fields): per-job rows keyed by
    job id, plus speedup/contention curves grouped by ``(workload,
    bus_latency, invalidation)`` with the curve's smallest node count as
    the speedup baseline -- so ``speedup[0] == 1.0`` by construction and
    a serial sweep aggregates byte-identically to a parallel one.
    """
    rows: Dict[str, Any] = {}
    failures: List[str] = []
    total = 0
    for result in results:
        if result.sweep != "multi-scaling":
            continue
        total += 1
        if not result.ok or not isinstance(result.value, dict):
            failures.append(result.job_id)
            continue
        value = result.value
        rows[result.job_id] = {
            "workload": value["workload"],
            "nodes": value["nodes"],
            "bus_latency": value["bus_latency"],
            "invalidation": value["invalidation"],
            "size": value["size"],
            "cycles": value["cycles"],
            "node_cycles": value["node_cycles"],
            "instructions": value["instructions"],
            "bus": value["bus"],
            "result": value["result"],
            "result_ok": value["result_ok"],
        }
    groups: Dict[tuple, List[dict]] = {}
    for row in rows.values():
        key = (row["workload"], row["bus_latency"], row["invalidation"])
        groups.setdefault(key, []).append(row)
    curves: Dict[str, Any] = {}
    for (workload, latency, invalidation), members in groups.items():
        members.sort(key=lambda row: row["nodes"])
        base = members[0]["cycles"]
        label = (f"{workload}/bus{latency}/"
                 f"{'inv' if invalidation else 'noinv'}")
        curves[label] = {
            "workload": workload,
            "bus_latency": latency,
            "invalidation": invalidation,
            "nodes": [row["nodes"] for row in members],
            "cycles": [row["cycles"] for row in members],
            "speedup": [round(base / row["cycles"], 6) if row["cycles"]
                        else 0.0 for row in members],
            "acquisitions": [row["bus"]["acquisitions"]
                             for row in members],
            "contention_cycles": [row["bus"]["contention_cycles"]
                                  for row in members],
            "invalidations": [row["bus"]["invalidations"]
                              for row in members],
        }
    return {
        "schema": 1,
        "jobs": total,
        "ok": len(rows),
        "failures": sorted(failures),
        "rows": {key: rows[key] for key in sorted(rows)},
        "curves": {key: curves[key] for key in sorted(curves)},
    }


def _traced_section(quick: bool, reuse: bool,
                    serial_results: Sequence[JobResult]) -> Dict[str, Any]:
    """Run the capture-once/replay-many sweeps and compare them with the
    live per-job serial durations (when a serial pass ran)."""
    from repro.harness.experiments import TRACED_SWEEPS

    live_by_sweep: Dict[str, float] = {}
    for result in serial_results:
        live_by_sweep[result.sweep] = (live_by_sweep.get(result.sweep, 0.0)
                                       + result.duration)

    per_sweep: Dict[str, Any] = {}
    total_wall = 0.0
    total_live = 0.0
    for name, evaluate in TRACED_SWEEPS.items():
        started = time.perf_counter()
        outcome = evaluate(quick=quick, reuse=reuse)
        wall = time.perf_counter() - started
        total_wall += wall
        entry: Dict[str, Any] = {
            "wall_s": round(wall, 3),
            "capture_s": round(outcome["capture_s"], 3),
            "replay_s": round(outcome["replay_s"], 3),
            "rows": len(outcome["rows"]),
            "cache_hits": outcome["cache_hits"],
            "cache_misses": outcome["cache_misses"],
        }
        live = live_by_sweep.get(name)
        if live is not None:
            total_live += live
            entry["live_serial_s"] = round(live, 3)
            entry["speedup_vs_serial"] = (round(live / wall, 1) if wall
                                          else None)
        per_sweep[name] = entry
    section: Dict[str, Any] = {
        "reuse": reuse,
        "wall_s": round(total_wall, 3),
        "per_sweep": per_sweep,
    }
    if total_live:
        section["live_serial_s"] = round(total_live, 3)
        section["speedup_vs_serial"] = (round(total_live / total_wall, 1)
                                        if total_wall else None)
    return section


def collect(quick: bool = False,
            workers: Optional[int] = None,
            parallel: bool = True,
            serial_baseline: bool = True,
            timeout: Optional[float] = None,
            output: Optional[pathlib.Path] = None,
            traced: bool = True,
            trace_reuse: bool = True,
            metrics_output: Optional[pathlib.Path] = None,
            multi: bool = False,
            multi_nodes: Optional[Sequence[int]] = None,
            multi_only: bool = False) -> Dict[str, Any]:
    """Run the telemetry suite and persist ``BENCH_pipeline.json``.

    Also aggregates the per-job telemetry snapshots of the workload-cpi
    sweep into ``METRICS_summary.json`` (see :func:`build_metrics_summary`)
    and embeds the suite totals in the bench payload's ``metrics``
    section.

    ``multi=True`` additionally fans the multiprocessor scaling grid
    (:func:`repro.harness.experiments.multi_scaling_jobs`) across the
    Runner and writes the aggregate as the payload's ``multi`` section;
    ``multi_nodes`` restricts the node counts (e.g. ``(1, 2, 4)`` in CI
    smoke jobs) and ``multi_only`` skips the uniprocessor sweeps and
    trace replays so a CI lane can produce just the multi section fast.
    """
    from repro.harness.experiments import default_jobs, multi_scaling_jobs

    if multi_only:
        multi = True
        serial_baseline = False
        traced = False
    runner = Runner(max_workers=workers)
    jobs = [] if multi_only else default_jobs(quick=quick, timeout=timeout)

    core = measure_core_throughput(repeats=2 if quick else 5)
    jit = (None if multi_only
           else measure_jit_throughput(repeats=1 if quick else 3))

    if not serial_baseline and not parallel and not traced:
        serial_baseline = True          # something must produce results
    results: List[JobResult] = []
    serial_results: List[JobResult] = []
    # Parallel first: forked workers must not inherit caches the serial
    # pass warmed in this process, or the speedup figure flatters itself.
    parallel_wall: Optional[float] = None
    if parallel and jobs:
        started = time.perf_counter()
        results = runner.run(jobs, parallel=True)
        parallel_wall = time.perf_counter() - started
    serial_wall: Optional[float] = None
    if serial_baseline:
        started = time.perf_counter()
        serial_results = runner.run(jobs, parallel=False)
        serial_wall = time.perf_counter() - started
        if not parallel:
            results = serial_results

    traced_section: Optional[Dict[str, Any]] = None
    if traced:
        traced_section = _traced_section(quick, trace_reuse, serial_results)

    multi_section: Optional[Dict[str, Any]] = None
    multi_wall: Optional[float] = None
    if multi:
        multi_jobs = multi_scaling_jobs(quick=quick, nodes=multi_nodes,
                                        timeout=timeout)
        started = time.perf_counter()
        multi_results = runner.run(multi_jobs, parallel=parallel)
        multi_wall = time.perf_counter() - started
        # wall-clock stays OUT of the section itself: the section must be
        # byte-identical between serial and parallel runs (pinned by
        # tests/test_multi.py); the timing goes under "sweep" instead
        multi_section = build_multi_section(multi_results)

    payload: Dict[str, Any] = {
        "schema": 1,
        "generated": datetime.datetime.now(datetime.timezone.utc)
                     .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "workers": runner.max_workers,
        },
        "core": core,
        "sweep": {
            "jobs": len(jobs),
            "ok": sum(1 for r in results if r.ok),
            "serial_wall_s": round(serial_wall, 3) if serial_wall else None,
            "parallel_wall_s": (round(parallel_wall, 3)
                                if parallel_wall else None),
            "speedup": (round(serial_wall / parallel_wall, 2)
                        if serial_wall and parallel_wall else None),
            "sweep_wall_s_traced": (traced_section["wall_s"]
                                    if traced_section else None),
            "multi_wall_s": (round(multi_wall, 3)
                             if multi_wall is not None else None),
        },
        "experiments": _results_section(results),
    }
    if jit is not None:
        payload["jit"] = jit
    if traced_section is not None:
        payload["traced"] = traced_section
    if multi_section is not None:
        payload["multi"] = multi_section
    metrics_summary = build_metrics_summary(results)
    if metrics_summary["per_workload"]:
        payload["metrics"] = {
            "workloads": metrics_summary["workloads"],
            "totals": metrics_summary["totals"],
            "derived": metrics_summary["derived"],
        }
        metrics_path = (pathlib.Path(metrics_output) if metrics_output
                        else DEFAULT_METRICS_OUTPUT)
        write_json_atomic(metrics_path, metrics_summary)
    path = pathlib.Path(output) if output else DEFAULT_OUTPUT
    write_json_atomic(path, payload)
    return payload


def merge_section(section: str, data: Any,
                  path: Optional[pathlib.Path] = None) -> None:
    """Read-modify-write one top-level section of the telemetry file.

    Creates a minimal file when none exists, so producers (e.g. the
    pytest benchmark timing hook) can run in any order.
    """
    path = pathlib.Path(path) if path else DEFAULT_OUTPUT
    payload: Dict[str, Any] = {"schema": 1}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            pass
    payload[section] = data
    write_json_atomic(path, payload)


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a telemetry payload."""
    lines: List[str] = []
    core = payload.get("core", {})
    lines.append(f"core throughput   {core.get('cycles_per_sec', 0):,} "
                 "simulated cycles/sec")
    for name, row in sorted(core.get("workloads", {}).items()):
        lines.append(f"  {name:<12} {row['cycles_per_sec']:,} cyc/s "
                     f"({row['cycles']} cycles / {row['wall_s']}s)")
    jit = payload.get("jit")
    if jit:
        lines.append(f"jit speedup       {jit.get('speedup', 0.0)}x vs "
                     "interpreter"
                     + ("" if jit.get("equivalent", True)
                        else "  [NOT CYCLE-EXACT]"))
        for name, row in sorted(jit.get("workloads", {}).items()):
            lines.append(
                f"  {name:<12} {row.get('speedup', 0.0)}x "
                f"({row.get('jit_cycles_per_sec', 0):,} vs "
                f"{row.get('nojit_cycles_per_sec', 0):,} cyc/s, "
                f"{row.get('cycle_coverage', 0.0):.1%} coverage, "
                f"compile {row.get('compile_s', 0.0)}s)")
    metrics = payload.get("metrics")
    if metrics:
        derived = metrics.get("derived", {})
        lines.append(
            f"metrics           {len(metrics.get('workloads', []))} "
            f"workloads aggregated, suite CPI "
            f"{derived.get('pipeline.cpi', 0.0):.3f} "
            "(METRICS_summary.json)")
    sweep = payload.get("sweep", {})
    if sweep.get("serial_wall_s") or sweep.get("parallel_wall_s"):
        lines.append(f"sweep             {sweep.get('ok')}/"
                     f"{sweep.get('jobs')} jobs ok")
    if sweep.get("serial_wall_s") is not None:
        lines.append(f"  serial          {sweep['serial_wall_s']}s")
    if sweep.get("parallel_wall_s") is not None:
        lines.append(f"  parallel        {sweep['parallel_wall_s']}s "
                     f"({payload['host']['workers']} workers)")
    if sweep.get("speedup") is not None:
        lines.append(f"  speedup         {sweep['speedup']}x")
    traced = payload.get("traced")
    if traced:
        lines.append(f"traced (capture-once/replay-many)  "
                     f"{traced['wall_s']}s total"
                     + (f", {traced['speedup_vs_serial']}x vs live serial"
                        if traced.get("speedup_vs_serial") is not None
                        else ""))
        header = (f"  {'sweep':<22} {'live s':>8} {'capture s':>10} "
                  f"{'replay s':>9} {'speedup':>8}")
        lines.append(header)
        for name, row in sorted(traced.get("per_sweep", {}).items()):
            live = row.get("live_serial_s")
            speedup = row.get("speedup_vs_serial")
            lines.append(
                f"  {name:<22} "
                f"{live if live is not None else '-':>8} "
                f"{row['capture_s']:>10} {row['replay_s']:>9} "
                f"{str(speedup) + 'x' if speedup is not None else '-':>8}")
    multi = payload.get("multi")
    if multi:
        wall = payload.get("sweep", {}).get("multi_wall_s")
        lines.append(f"multi scaling     {multi.get('ok')}/"
                     f"{multi.get('jobs')} points ok"
                     + (f" ({wall}s)" if wall is not None else ""))
        for label, curve in sorted(multi.get("curves", {}).items()):
            pairs = ", ".join(
                f"n{n}={s}x" for n, s in zip(curve.get("nodes", []),
                                             curve.get("speedup", [])))
            lines.append(f"  {label:<22} {pairs}")
        for job_id in multi.get("failures", []):
            lines.append(f"  FAILED {job_id}")
    return "\n".join(lines)
