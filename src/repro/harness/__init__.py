"""Throughput layer: fan experiment sweeps across worker processes.

The paper's design studies were sweeps -- six branch schemes, every
512-word Icache organization, Ecache sizes, coprocessor interfaces --
each point an independent, deterministic simulation.  This package runs
those points in parallel:

* :mod:`repro.harness.runner` -- a :class:`Runner` that schedules
  picklable :class:`Job` specs over worker processes with per-job
  timeout, retry-once-on-crash, and deterministic result merging;
* :mod:`repro.harness.experiments` -- the registry of experiment point
  functions and the sweep grids built from them;
* :mod:`repro.harness.bench` -- benchmark telemetry: core ``cycles/sec``
  and sweep wall-clock, persisted to ``BENCH_pipeline.json`` at the repo
  root so every PR leaves a perf trajectory.
"""

from repro.harness.experiments import (EXPERIMENT_SWEEPS, default_jobs,
                                       sweep_jobs)
from repro.harness.runner import Job, JobResult, Runner, resolve

__all__ = [
    "EXPERIMENT_SWEEPS",
    "Job",
    "JobResult",
    "Runner",
    "default_jobs",
    "resolve",
    "sweep_jobs",
]
