"""Process-parallel experiment runner.

Design:

* a :class:`Job` is a picklable spec -- a ``"module:function"`` entry
  point plus keyword params -- so any module-level function can be a
  sweep point;
* one OS process per job (experiment points run for seconds, so process
  startup is noise), results returned over a pipe;
* per-job **timeout**: the scheduler terminates the worker and records a
  ``"timeout"`` result; a runner-wide ``default_timeout`` acts as a
  watchdog for jobs that did not set their own;
* **retry-on-crash with exponential backoff**: a worker that dies
  without reporting (``os._exit``, segfault, OOM kill) is rescheduled up
  to ``max_retries`` times, the respawn before attempt ``n`` delayed by
  ``backoff_base * 2**(n-2)`` seconds, under a runner-wide
  ``retry_budget`` (total respawns per run).  An in-worker Python
  exception is deterministic, so it is recorded as ``"error"`` without a
  retry;
* **deterministic merging**: results come back in submission order keyed
  by job id, regardless of completion order, so serial and parallel runs
  of the same jobs produce identical merged output;
* **chaos mode**: :class:`ChaosMonkey` deterministically ``os._exit``\\ s
  a seeded subset of first-attempt workers mid-job, so the retry/merge
  path is itself under test (the fault campaigns double as this test).

Status taxonomy (``JobResult.status``):

============== ===========================================================
``ok``         the function returned on the first attempt
``retried-ok`` the function returned after one or more crash retries
``error``      the function raised; ``error`` carries the **remote
               traceback**, ``error_kind`` the exception class name
``timeout``    the watchdog killed the worker after ``timeout`` seconds
``crashed``    the worker died on every allowed attempt without
               reporting; ``error_kind`` is ``worker-died``
``interrupted`` the run received SIGTERM/SIGINT before this job started;
               in-flight jobs are drained, queued jobs get this status
============== ===========================================================

``JobResult.ok`` is True for both ``ok`` and ``retried-ok`` -- a retried
job still produced its value.

**Graceful shutdown**: the parallel scheduler installs SIGTERM/SIGINT
handlers (main thread only) for the duration of a run.  On a signal it
stops launching new work, lets the already-running workers finish and
deliver, marks everything still queued ``"interrupted"``, and restores
the previous handlers -- so a Ctrl-C'd campaign still journals every
completed job and leaves no orphan processes or stale lockfiles behind.
Callers can test :attr:`Runner.interrupted` after ``run`` returns.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import multiprocessing
import os
import signal
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

#: the exit code chaos kills use; distinguishable from real crashes in logs
CHAOS_EXIT_CODE = 86


@dataclasses.dataclass(frozen=True)
class Job:
    """One sweep point: ``resolve(fn)(**params)`` in a worker process."""

    id: str
    fn: str                              #: "package.module:function"
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)
    timeout: Optional[float] = None      #: seconds; None = runner default
    sweep: str = ""                      #: owning sweep, for grouping


@dataclasses.dataclass
class JobResult:
    """Outcome of one job, independent of where/when it ran."""

    job_id: str
    status: str     #: "ok" | "retried-ok" | "error" | "timeout" | "crashed"
    value: Any = None
    error: str = ""                      #: remote traceback / kill reason
    error_kind: str = ""                 #: exception class | "timeout" |
    #: "worker-died" -- the structured taxonomy ("" on success)
    duration: float = 0.0                #: wall seconds of the final attempt
    attempts: int = 1
    sweep: str = ""

    @property
    def ok(self) -> bool:
        """True when the job produced its value ("ok" or "retried-ok")."""
        return self.status in ("ok", "retried-ok")


@dataclasses.dataclass(frozen=True)
class ChaosMonkey:
    """Deterministic worker-killer for chaos testing the runner.

    ``rate`` of the jobs (selected by a stable hash of ``seed`` and the
    job id -- never Python's salted ``hash()``) are killed with
    ``os._exit`` *mid-job* on attempts <= ``kill_attempts``.  With
    ``kill_attempts=1`` (the default) every doomed job succeeds on its
    retry, so a chaos run must produce values identical to a serial run.

    ``kill_after`` switches the kill from "between resolve and call" to
    a genuine asynchronous mid-run SIGKILL: a doomed worker arms a
    daemon timer that ``SIGKILL``\\ s its own process ``kill_after``
    seconds into the job, exactly the power-loss-style death the
    checkpoint/resume path (see :mod:`repro.checkpoint`) must survive.
    """

    rate: float = 0.0
    seed: int = 0
    kill_attempts: int = 1
    kill_after: Optional[float] = None

    def dooms(self, job_id: str, attempt: int) -> bool:
        """Whether this (job, attempt) is selected for a chaos kill."""
        if self.rate <= 0.0 or attempt > self.kill_attempts:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{job_id}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.rate


def resolve(fn_spec: str) -> Callable:
    """``"package.module:function"`` -> the callable."""
    module_name, sep, fn_name = fn_spec.partition(":")
    if not sep or not fn_name:
        raise ValueError(f"job fn must be 'module:function', got {fn_spec!r}")
    return getattr(importlib.import_module(module_name), fn_name)


def _worker_main(fn_spec: str, params: Dict[str, Any], conn,
                 chaos_kill: bool,
                 kill_after: Optional[float] = None) -> None:
    """Worker process entry point: run the job, report over the pipe.

    ``chaos_kill`` kills the worker *after* the function started doing
    real work (module resolved, call under way is approximated by
    killing between resolve and call) -- the parent sees a silent death,
    exactly like a segfault or an OOM kill.  With ``kill_after`` set the
    kill is instead a delayed SIGKILL fired from a daemon timer while
    the job runs, so death can land anywhere in the computation.
    """
    # The fork inherits the parent's graceful-shutdown handlers, under
    # which SIGTERM merely sets a flag -- that would make workers immune
    # to terminate().  Shutdown is the *scheduler's* job; workers die.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    try:
        fn = resolve(fn_spec)
        if chaos_kill:
            if kill_after is None:
                os._exit(CHAOS_EXIT_CODE)
            timer = threading.Timer(
                kill_after, os.kill, args=(os.getpid(), signal.SIGKILL))
            timer.daemon = True
            timer.start()
        value = fn(**params)
        conn.send(("ok", value, "", ""))
    except BaseException as exc:
        conn.send(("error", None, traceback.format_exc(),
                   type(exc).__name__))
    finally:
        conn.close()


class _Active:
    """Bookkeeping for one in-flight worker."""

    __slots__ = ("job", "attempt", "process", "conn", "started")

    def __init__(self, job: Job, attempt: int, process, conn):
        self.job = job
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = time.monotonic()


class Runner:
    """Schedules jobs over worker processes (or serially in-process).

    ``max_workers`` defaults to the machine's CPU count.  ``run`` returns
    one :class:`JobResult` per job **in submission order**.

    Resilience knobs:

    * ``max_retries`` -- crash retries per job (default 1: the original
      retry-once-on-crash behaviour);
    * ``backoff_base`` -- first respawn delay in seconds, doubled per
      further attempt (exponential backoff);
    * ``backoff_jitter`` -- deterministic seeded spread on top of the
      exponential delay: attempt ``n`` of job ``j`` waits
      ``base * 2**(n-2) * (1 + jitter * draw(j, n))`` where ``draw`` is
      a stable sha256 hash of ``(jitter_seed, job id, attempt)`` mapped
      into [0, 1).  Coalesced service requests that crash together thus
      retry *spread out* instead of thundering-herding the pool, and
      the schedule is still exactly reproducible (and pinnable in
      tests) because nothing consults a random source at run time;
    * ``retry_budget`` -- total respawns allowed across the whole run
      (None = unlimited); once exhausted, crashes are final;
    * ``default_timeout`` -- watchdog for jobs with ``timeout=None``;
    * ``chaos`` -- a :class:`ChaosMonkey`, for testing the above.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 poll_interval: float = 0.02,
                 max_retries: int = 1,
                 backoff_base: float = 0.05,
                 backoff_jitter: float = 0.0,
                 jitter_seed: int = 0,
                 retry_budget: Optional[int] = None,
                 default_timeout: Optional[float] = None,
                 chaos: Optional[ChaosMonkey] = None):
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.poll_interval = poll_interval
        self.max_retries = max(0, max_retries)
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_jitter = max(0.0, backoff_jitter)
        self.jitter_seed = jitter_seed
        self.retry_budget = retry_budget
        self.default_timeout = default_timeout
        self.chaos = chaos or ChaosMonkey()
        #: set when SIGTERM/SIGINT arrived during the last parallel run
        self.interrupted = False
        self._context = multiprocessing.get_context()

    # ------------------------------------------------------------- serial
    def run_serial(self, jobs: Sequence[Job]) -> List[JobResult]:
        """In-process execution, in order.

        The determinism reference for the parallel path: same jobs, same
        merged results.  Timeouts are not enforced in-process (there is
        no safe way to interrupt arbitrary Python); crashes take the
        whole process down, as they would without the harness.
        """
        results = []
        for job in jobs:
            started = time.monotonic()
            try:
                value = resolve(job.fn)(**job.params)
                result = JobResult(job.id, "ok", value=value, sweep=job.sweep)
            except Exception as exc:
                result = JobResult(job.id, "error",
                                   error=traceback.format_exc(),
                                   error_kind=type(exc).__name__,
                                   sweep=job.sweep)
            result.duration = time.monotonic() - started
            results.append(result)
        return results

    # ----------------------------------------------------------- parallel
    def run(self, jobs: Sequence[Job],
            parallel: bool = True) -> List[JobResult]:
        """Run ``jobs``; results come back in submission order.

        ``parallel=False`` falls back to :meth:`run_serial` -- the
        determinism reference: both paths must merge identically.
        """
        jobs = list(jobs)
        ids = [job.id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within a run")
        if not parallel:
            return self.run_serial(jobs)
        merged = self._run_parallel(jobs)
        return [merged[job.id] for job in jobs]   # deterministic merge

    def _spawn(self, job: Job, attempt: int) -> _Active:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        chaos_kill = self.chaos.dooms(job.id, attempt)
        process = self._context.Process(
            target=_worker_main,
            args=(job.fn, job.params, child_conn, chaos_kill,
                  self.chaos.kill_after),
            daemon=True)
        process.start()
        child_conn.close()   # child's end lives in the child now
        return _Active(job, attempt, process, parent_conn)

    def _backoff(self, attempt: int, job_id: str = "") -> float:
        """Respawn delay before ``attempt`` (exponential: base * 2^(n-2)).

        With ``backoff_jitter`` > 0 the delay is stretched by a
        deterministic per-(job, attempt) factor in
        ``[1, 1 + backoff_jitter)`` so simultaneous crash retries
        (coalesced service requests, a chaos-killed batch) de-correlate
        instead of respawning in lockstep.  The draw hashes
        ``jitter_seed``, the job id, and the attempt with sha256 --
        never Python's salted ``hash()`` -- so the schedule is
        reproducible across processes and pinnable in tests.
        """
        if attempt <= 1 or self.backoff_base <= 0.0:
            return 0.0
        delay = self.backoff_base * (2.0 ** (attempt - 2))
        if self.backoff_jitter > 0.0:
            digest = hashlib.sha256(
                f"{self.jitter_seed}:{job_id}:{attempt}".encode()).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 + self.backoff_jitter * draw
        return delay

    def _install_signal_handlers(self) -> List[tuple]:
        """Arm graceful shutdown for the duration of a parallel run.

        Returns ``(signum, previous_handler)`` pairs to restore, or an
        empty list when not on the main thread (signal handlers can only
        be installed there; nested runners just inherit the outer one).
        """
        self.interrupted = False

        def _handler(signum, frame):
            self.interrupted = True

        installed: List[tuple] = []
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                installed.append((signum, signal.signal(signum, _handler)))
        except ValueError:
            for signum, previous in installed:
                signal.signal(signum, previous)
            return []
        return installed

    def _run_parallel(self, jobs: List[Job]) -> Dict[str, JobResult]:
        queue: List[tuple] = [(job, 1) for job in jobs]
        queue.reverse()                      # pop() takes submission order
        #: crash retries waiting out their backoff: (eligible_at, job,
        #: attempt), respawned in eligibility order
        waiting: List[tuple] = []
        self._retries_left = self.retry_budget
        active: List[_Active] = []
        results: Dict[str, JobResult] = {}
        installed = self._install_signal_handlers()
        try:
            while queue or active or waiting:
                if self.interrupted and (queue or waiting):
                    # graceful shutdown: nothing new is launched; the
                    # in-flight workers drain and deliver normally
                    for job, _attempt in queue:
                        results[job.id] = JobResult(
                            job.id, "interrupted",
                            error="run interrupted by signal before start",
                            error_kind="interrupted", sweep=job.sweep)
                    for _eligible, job, attempt in waiting:
                        results[job.id] = JobResult(
                            job.id, "interrupted",
                            error="retry abandoned: run interrupted",
                            error_kind="interrupted", attempts=attempt - 1,
                            sweep=job.sweep)
                    queue, waiting = [], []
                if waiting:
                    now = time.monotonic()
                    due = [w for w in waiting if w[0] <= now]
                    if due:
                        waiting = [w for w in waiting if w[0] > now]
                        # due retries take priority over fresh jobs
                        for eligible_at, job, attempt in sorted(
                                due, reverse=True):
                            queue.append((job, attempt))
                while queue and len(active) < self.max_workers:
                    job, attempt = queue.pop()
                    active.append(self._spawn(job, attempt))
                made_progress = False
                for slot in list(active):
                    outcome = self._poll(slot)
                    if outcome is None:
                        continue
                    made_progress = True
                    active.remove(slot)
                    if outcome == "retry":
                        if self._retries_left is not None:
                            self._retries_left -= 1
                        attempt = slot.attempt + 1
                        eligible = (time.monotonic()
                                    + self._backoff(attempt, slot.job.id))
                        waiting.append((eligible, slot.job, attempt))
                    else:
                        results[slot.job.id] = outcome
                if not made_progress and (active or waiting):
                    time.sleep(self.poll_interval)
        finally:
            for signum, previous in installed:
                signal.signal(signum, previous)
            for slot in active:              # interrupted: no orphans
                slot.process.terminate()
                slot.process.join()
        return results

    def _effective_timeout(self, job: Job) -> Optional[float]:
        return job.timeout if job.timeout is not None else self.default_timeout

    def _poll(self, slot: _Active):
        """One scheduling decision for one worker; None = still running."""
        job = slot.job
        elapsed = time.monotonic() - slot.started
        if slot.conn.poll():
            try:
                status, value, error, error_kind = slot.conn.recv()
            except (EOFError, OSError):
                return self._crash_outcome(slot, elapsed)
            slot.process.join()
            slot.conn.close()
            if status == "ok" and slot.attempt > 1:
                status = "retried-ok"
            return JobResult(job.id, status, value=value, error=error,
                             error_kind=error_kind,
                             duration=elapsed, attempts=slot.attempt,
                             sweep=job.sweep)
        timeout = self._effective_timeout(job)
        if timeout is not None and elapsed > timeout:
            slot.process.terminate()
            slot.process.join()
            slot.conn.close()
            return JobResult(job.id, "timeout",
                             error=f"exceeded {timeout:.1f}s",
                             error_kind="timeout",
                             duration=elapsed, attempts=slot.attempt,
                             sweep=job.sweep)
        if not slot.process.is_alive():
            return self._crash_outcome(slot, elapsed)
        return None

    def _crash_outcome(self, slot: _Active, elapsed: float):
        """The worker died without delivering a result."""
        slot.process.join()
        slot.conn.close()
        remaining = getattr(self, "_retries_left", self.retry_budget)
        budget_open = remaining is None or remaining > 0
        if slot.attempt <= self.max_retries and budget_open:
            return "retry"
        job = slot.job
        return JobResult(
            job.id, "crashed",
            error=f"worker died {slot.attempt} time(s) "
                  f"(exitcode {slot.process.exitcode})",
            error_kind="worker-died",
            duration=elapsed, attempts=slot.attempt, sweep=job.sweep)


def merge_values(results: Sequence[JobResult]) -> Dict[str, Any]:
    """``{job id: value}`` for the successful results."""
    return {r.job_id: r.value for r in results if r.ok}
