"""Process-parallel experiment runner.

Design:

* a :class:`Job` is a picklable spec -- a ``"module:function"`` entry
  point plus keyword params -- so any module-level function can be a
  sweep point;
* one OS process per job (experiment points run for seconds, so process
  startup is noise), results returned over a pipe;
* per-job **timeout**: the scheduler terminates the worker and records a
  ``"timeout"`` result;
* **retry-once-on-crash**: a worker that dies without reporting
  (``os._exit``, segfault, OOM kill) is rescheduled once; a second death
  records ``"crashed"``.  An in-worker Python exception is deterministic,
  so it is recorded as ``"error"`` without a retry;
* **deterministic merging**: results come back in submission order keyed
  by job id, regardless of completion order, so serial and parallel runs
  of the same jobs produce identical merged output.
"""

from __future__ import annotations

import dataclasses
import importlib
import multiprocessing
import os
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class Job:
    """One sweep point: ``resolve(fn)(**params)`` in a worker process."""

    id: str
    fn: str                              #: "package.module:function"
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)
    timeout: Optional[float] = None      #: seconds; None = no limit
    sweep: str = ""                      #: owning sweep, for grouping


@dataclasses.dataclass
class JobResult:
    """Outcome of one job, independent of where/when it ran."""

    job_id: str
    status: str                      #: "ok" | "error" | "timeout" | "crashed"
    value: Any = None
    error: str = ""
    duration: float = 0.0                #: wall seconds of the final attempt
    attempts: int = 1
    sweep: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def resolve(fn_spec: str) -> Callable:
    """``"package.module:function"`` -> the callable."""
    module_name, sep, fn_name = fn_spec.partition(":")
    if not sep or not fn_name:
        raise ValueError(f"job fn must be 'module:function', got {fn_spec!r}")
    return getattr(importlib.import_module(module_name), fn_name)


def _worker_main(fn_spec: str, params: Dict[str, Any], conn) -> None:
    """Worker process entry point: run the job, report over the pipe."""
    try:
        value = resolve(fn_spec)(**params)
        conn.send(("ok", value, ""))
    except BaseException:
        conn.send(("error", None, traceback.format_exc()))
    finally:
        conn.close()


class _Active:
    """Bookkeeping for one in-flight worker."""

    __slots__ = ("job", "attempt", "process", "conn", "started")

    def __init__(self, job: Job, attempt: int, process, conn):
        self.job = job
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = time.monotonic()


class Runner:
    """Schedules jobs over worker processes (or serially in-process).

    ``max_workers`` defaults to the machine's CPU count.  ``run`` returns
    one :class:`JobResult` per job **in submission order**.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 poll_interval: float = 0.02):
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.poll_interval = poll_interval
        self._context = multiprocessing.get_context()

    # ------------------------------------------------------------- serial
    def run_serial(self, jobs: Sequence[Job]) -> List[JobResult]:
        """In-process execution, in order.

        The determinism reference for the parallel path: same jobs, same
        merged results.  Timeouts are not enforced in-process (there is
        no safe way to interrupt arbitrary Python); crashes take the
        whole process down, as they would without the harness.
        """
        results = []
        for job in jobs:
            started = time.monotonic()
            try:
                value = resolve(job.fn)(**job.params)
                result = JobResult(job.id, "ok", value=value, sweep=job.sweep)
            except Exception:
                result = JobResult(job.id, "error",
                                   error=traceback.format_exc(),
                                   sweep=job.sweep)
            result.duration = time.monotonic() - started
            results.append(result)
        return results

    # ----------------------------------------------------------- parallel
    def run(self, jobs: Sequence[Job],
            parallel: bool = True) -> List[JobResult]:
        jobs = list(jobs)
        ids = [job.id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within a run")
        if not parallel:
            return self.run_serial(jobs)
        merged = self._run_parallel(jobs)
        return [merged[job.id] for job in jobs]   # deterministic merge

    def _spawn(self, job: Job, attempt: int) -> _Active:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main, args=(job.fn, job.params, child_conn),
            daemon=True)
        process.start()
        child_conn.close()   # child's end lives in the child now
        return _Active(job, attempt, process, parent_conn)

    def _run_parallel(self, jobs: List[Job]) -> Dict[str, JobResult]:
        queue: List[tuple] = [(job, 1) for job in jobs]
        queue.reverse()                      # pop() takes submission order
        active: List[_Active] = []
        results: Dict[str, JobResult] = {}
        try:
            while queue or active:
                while queue and len(active) < self.max_workers:
                    job, attempt = queue.pop()
                    active.append(self._spawn(job, attempt))
                made_progress = False
                for slot in list(active):
                    outcome = self._poll(slot)
                    if outcome is None:
                        continue
                    made_progress = True
                    active.remove(slot)
                    if outcome == "retry":
                        queue.append((slot.job, slot.attempt + 1))
                    else:
                        results[slot.job.id] = outcome
                if not made_progress:
                    time.sleep(self.poll_interval)
        finally:
            for slot in active:              # interrupted: no orphans
                slot.process.terminate()
                slot.process.join()
        return results

    def _poll(self, slot: _Active):
        """One scheduling decision for one worker; None = still running."""
        job = slot.job
        elapsed = time.monotonic() - slot.started
        if slot.conn.poll():
            try:
                status, value, error = slot.conn.recv()
            except (EOFError, OSError):
                return self._crash_outcome(slot, elapsed)
            slot.process.join()
            slot.conn.close()
            return JobResult(job.id, status, value=value, error=error,
                             duration=elapsed, attempts=slot.attempt,
                             sweep=job.sweep)
        if job.timeout is not None and elapsed > job.timeout:
            slot.process.terminate()
            slot.process.join()
            slot.conn.close()
            return JobResult(job.id, "timeout",
                             error=f"exceeded {job.timeout:.1f}s",
                             duration=elapsed, attempts=slot.attempt,
                             sweep=job.sweep)
        if not slot.process.is_alive():
            return self._crash_outcome(slot, elapsed)
        return None

    def _crash_outcome(self, slot: _Active, elapsed: float):
        """The worker died without delivering a result."""
        slot.process.join()
        slot.conn.close()
        if slot.attempt < 2:
            return "retry"
        job = slot.job
        return JobResult(
            job.id, "crashed",
            error=f"worker died twice (exitcode {slot.process.exitcode})",
            duration=elapsed, attempts=slot.attempt, sweep=job.sweep)


def merge_values(results: Sequence[JobResult]) -> Dict[str, Any]:
    """``{job id: value}`` for the successful results."""
    return {r.job_id: r.value for r in results if r.ok}
