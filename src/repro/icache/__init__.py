"""On-chip instruction cache: live model, stats, and design-space tools."""

from repro.icache.cache import (
    FetchResult,
    Icache,
    IcacheStats,
    contents_invariants,
    simulate,
)

__all__ = [
    "FetchResult",
    "Icache",
    "IcacheStats",
    "contents_invariants",
    "simulate",
]
