"""The on-chip instruction cache (Icache).

The paper's organization: 512 words total, 8-way set-associative with 4
sets (rows) and 16-word blocks, *sub-block placement* (one valid bit per
word, 512 valid bits, 32 tags), and a two-word fetch-back on each miss.
The double fetch-back is the paper's key cache result: the two miss-service
cycles are used to fetch both the missed word and the next sequential word,
which "almost halves the miss ratio" without touching the critical path.

The class is configuration-driven so the organization explorer can sweep
sets/ways/block size/fetch-back, and it serves both the live pipeline and
trace-driven simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import IcacheConfig


@dataclasses.dataclass
class IcacheStats:
    accesses: int = 0
    misses: int = 0
    words_filled: int = 0
    tag_allocations: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def average_fetch_cost(self, miss_cycles: int) -> float:
        """Average cycles per instruction fetch (1 + miss rate x service)."""
        return 1.0 + self.miss_rate * miss_cycles

    def as_metrics(self) -> "dict[str, int]":
        """Counter values under canonical telemetry catalog names."""
        return {
            "icache.accesses": self.accesses,
            "icache.misses": self.misses,
            "icache.words_filled": self.words_filled,
            "icache.tag_allocations": self.tag_allocations,
        }


@dataclasses.dataclass
class FetchResult:
    """Outcome of one instruction fetch probe."""

    hit: bool
    #: word addresses fetched back from the external cache on a miss
    fill_addresses: List[int] = dataclasses.field(default_factory=list)


class _Way:
    __slots__ = ("tag", "valid")

    def __init__(self, block_words: int):
        self.tag: Optional[int] = None
        self.valid = [False] * block_words


#: Shared result for every hit: the hot path allocates nothing.  Callers
#: treat :class:`FetchResult` as read-only (the pipeline and the explorer
#: only inspect it), so sharing one instance is safe.
_HIT = FetchResult(hit=True)


class Icache:
    """Set-associative sub-block instruction cache.

    System and user mode are separate address spaces, so the mode bit is
    part of the tag.  Replacement applies on *tag allocation* only; a miss
    whose tag already matches (sub-block miss) just fills valid bits.
    """

    def __init__(self, config: IcacheConfig):
        self.config = config
        self.stats = IcacheStats()
        self._sets: List[List[_Way]] = [
            [_Way(config.block_words) for _ in range(config.ways)]
            for _ in range(config.sets)
        ]
        # replacement bookkeeping, per set
        self._order: List[List[int]] = [list(range(config.ways))
                                        for _ in range(config.sets)]
        self._rand_state = 0x2545F491
        # tag -> way index per set: tags are unique within a set (a
        # structural invariant), so the associative search is a dict probe
        self._tag_maps: List[Dict[int, int]] = [{} for _ in range(config.sets)]
        # power-of-two geometries (every organization in the paper's
        # design space) index with shifts and masks instead of divisions
        block, sets = config.block_words, config.sets
        self._pow2 = (block & (block - 1) == 0) and (sets & (sets - 1) == 0)
        self._block_shift = block.bit_length() - 1
        self._block_mask = block - 1
        self._set_shift = sets.bit_length() - 1
        self._set_mask = sets - 1
        self._lru = config.replacement == "lru"

    # ------------------------------------------------------------ indexing
    def _locate(self, address: int, system_mode: bool) -> Tuple[int, int, int]:
        if self._pow2:
            block = address >> self._block_shift
            tag = ((block >> self._set_shift) << 1) | (1 if system_mode else 0)
            return block & self._set_mask, tag, address & self._block_mask
        block = address // self.config.block_words
        index = block % self.config.sets
        tag = (block // self.config.sets) * 2 + (1 if system_mode else 0)
        word = address % self.config.block_words
        return index, tag, word

    def _find_way(self, index: int, tag: int) -> Optional[int]:
        return self._tag_maps[index].get(tag)

    # ------------------------------------------------ translator support
    def locate(self, address: int, system_mode: bool) -> Tuple[int, int, int]:
        """Public ``(set_index, tag, word_offset)`` mapping for an
        address -- the geometry the translated fast path compiles its
        line tables against."""
        return self._locate(address, system_mode)

    def residency(self, index: int, tag: int
                  ) -> Optional[Tuple[int, List[bool]]]:
        """Non-observing residency probe: ``(way, valid_bits)`` when the
        tag is allocated in the set, else ``None``.  Touches no stats
        and no replacement state -- entry guards use it to prove a
        block's fetches will all hit before committing to the fast
        path."""
        way = self._tag_maps[index].get(tag)
        if way is None:
            return None
        return way, self._sets[index][way].valid

    def bulk_touch(self, ways, count: int) -> None:
        """Apply ``count`` deferred LRU touches, one ``(set_index,
        way)`` pair each, in fetch order -- the batched equivalent of
        the MRU promotion each individual hit performs.  A full pass's
        touch sequence is idempotent (it leaves each set's order with
        the pass's ways as the MRU suffix), which is what lets a
        translated block collapse many passes into one application."""
        order_table = self._order
        for j in range(count):
            index, way = ways[j]
            order = order_table[index]
            if order[-1] != way:
                order.remove(way)
                order.append(way)

    def _victim(self, index: int) -> int:
        policy = self.config.replacement
        if policy == "random":
            # xorshift: deterministic, seedless runs are reproducible
            state = self._rand_state
            state ^= (state << 13) & 0xFFFFFFFF
            state ^= state >> 17
            state ^= (state << 5) & 0xFFFFFFFF
            self._rand_state = state
            return state % self.config.ways
        # both LRU and FIFO evict the head of the per-set order list
        return self._order[index][0]

    def _touch(self, index: int, way_index: int, allocation: bool) -> None:
        if self._lru or allocation:
            order = self._order[index]
            if order[-1] != way_index:  # already most recent: nothing to move
                order.remove(way_index)
                order.append(way_index)

    # -------------------------------------------------------------- access
    def lookup(self, address: int, system_mode: bool = True) -> bool:
        """Probe without side effects (no fill, no stats)."""
        index, tag, word = self._locate(address, system_mode)
        way_index = self._find_way(index, tag)
        return way_index is not None and self._sets[index][way_index].valid[word]

    def fetch(self, address: int, system_mode: bool = True) -> FetchResult:
        """One instruction fetch: probe, and on a miss fill
        ``config.fetchback`` sequential words."""
        self.stats.accesses += 1
        if self._pow2:  # inlined _locate: this probe runs once per cycle
            block = address >> self._block_shift
            index = block & self._set_mask
            tag = ((block >> self._set_shift) << 1) | (1 if system_mode else 0)
            word = address & self._block_mask
        else:
            index, tag, word = self._locate(address, system_mode)
        way_index = self._tag_maps[index].get(tag)
        if way_index is not None and self._sets[index][way_index].valid[word]:
            self._touch(index, way_index, allocation=False)
            return _HIT  # hits share one immutable-by-convention result
        self.stats.misses += 1
        fills = [address + k for k in range(max(1, self.config.fetchback))]
        for fill_address in fills:
            self._fill(fill_address, system_mode)
        return FetchResult(hit=False, fill_addresses=fills)

    def _fill(self, address: int, system_mode: bool) -> None:
        index, tag, word = self._locate(address, system_mode)
        way_index = self._tag_maps[index].get(tag)
        if way_index is None:
            way_index = self._victim(index)
            way = self._sets[index][way_index]
            tag_map = self._tag_maps[index]
            if way.tag is not None:
                del tag_map[way.tag]
            tag_map[tag] = way_index
            way.tag = tag
            way.valid = [False] * self.config.block_words
            self.stats.tag_allocations += 1
            self._touch(index, way_index, allocation=True)
        else:
            # a fill into a live way (sub-block miss, or a fetch-back word
            # landing in a resident block) is a use of that block: under
            # LRU it must refresh recency, exactly as a hit does --
            # otherwise a block serving a long streak of sub-block misses
            # looks idle and gets evicted over genuinely cold ways
            self._touch(index, way_index, allocation=False)
        way = self._sets[index][way_index]
        if not way.valid[word]:
            way.valid[word] = True
            self.stats.words_filled += 1

    # ------------------------------------------------------ fault injection
    def inject_valid_flips(self, rng, count: int = 1) -> int:
        """Flip up to ``count`` randomly-chosen *set* sub-block valid bits.

        Models single-event upsets in the 512-valid-bit array.  Clearing a
        valid bit is always safe for correctness (the word refetches from
        the Ecache; purely a timing fault), which is why only set bits are
        targeted -- setting a stale bit would be a *functional* cache, and
        this Icache is timing-only by design.  Returns the number of bits
        actually flipped (0 when the cache holds no valid words).
        """
        candidates = [
            (index, way_index, word)
            for index, cache_set in enumerate(self._sets)
            for way_index, way in enumerate(cache_set)
            if way.tag is not None
            for word, valid in enumerate(way.valid) if valid
        ]
        if not candidates:
            return 0
        flipped = 0
        for _ in range(count):
            index, way_index, word = candidates[rng.randrange(len(candidates))]
            way = self._sets[index][way_index]
            if way.valid[word]:
                way.valid[word] = False
                flipped += 1
        return flipped

    def inject_tag_corruption(self, rng, count: int = 1) -> int:
        """Corrupt up to ``count`` tags by flipping one random tag bit.

        Preserves the unique-tags-per-set structural invariant the rest of
        the cache relies on: if the corrupted value collides with another
        live way in the set, that way is invalidated first (on hardware the
        duplicate would make the associative match undefined; the model
        resolves it the conservative way).  All valid bits of the corrupted
        way are cleared -- its contents now describe the wrong block, and a
        stale "valid" word under a wrong tag would be a functional fault a
        timing-only cache cannot express.  Returns tags corrupted.
        """
        live = [
            (index, way_index)
            for index, cache_set in enumerate(self._sets)
            for way_index, way in enumerate(cache_set)
            if way.tag is not None
        ]
        if not live:
            return 0
        corrupted = 0
        for _ in range(count):
            index, way_index = live[rng.randrange(len(live))]
            way = self._sets[index][way_index]
            if way.tag is None:      # already victimized by a collision
                continue
            tag_map = self._tag_maps[index]
            new_tag = way.tag ^ (1 << rng.randrange(8))
            del tag_map[way.tag]
            collider = tag_map.pop(new_tag, None)
            if collider is not None:
                other = self._sets[index][collider]
                other.tag = None
                other.valid = [False] * self.config.block_words
            way.tag = new_tag
            way.valid = [False] * self.config.block_words
            tag_map[new_tag] = way_index
            corrupted += 1
        return corrupted

    def flush(self) -> None:
        for cache_set in self._sets:
            for way in cache_set:
                way.tag = None
                way.valid = [False] * self.config.block_words
        self._order = [list(range(self.config.ways))
                       for _ in range(self.config.sets)]
        self._tag_maps = [{} for _ in range(self.config.sets)]

    # ------------------------------------------------------ trace interface
    def simulate_trace(self, addresses: Iterable[int],
                       system_mode: bool = True) -> IcacheStats:
        """Run a stream of fetch addresses through the cache (trace-driven
        simulation, as the paper's cache studies were done)."""
        for address in addresses:
            self.fetch(address, system_mode)
        return self.stats


def simulate(config: IcacheConfig, addresses: Iterable[int]) -> IcacheStats:
    """Trace-driven simulation of one organization (fresh cache)."""
    return Icache(config).simulate_trace(addresses)


def contents_invariants(cache: Icache) -> Dict[str, bool]:
    """Structural invariants used by the property-based tests."""
    tags_ok = True
    orders_ok = True
    for index, cache_set in enumerate(cache._sets):
        live_tags = [way.tag for way in cache_set if way.tag is not None]
        tags_ok &= len(live_tags) == len(set(live_tags))
        orders_ok &= sorted(cache._order[index]) == list(range(cache.config.ways))
    return {"unique_tags_per_set": tags_ok, "replacement_order_complete": orders_ok}
