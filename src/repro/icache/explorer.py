"""Instruction-cache organization design-space explorer.

Reproduces the cache study behind the paper (and its companion paper,
"On-chip Instruction Caches for High Performance Processors"): given an
instruction fetch trace, sweep organizations under the 512-word area budget
and compare them on *average instruction fetch cost* --

    cost = 1 + miss_ratio x miss_service_cycles

The paper's two key findings, both measurable here:

* performance is more sensitive to the miss **service time** (2 vs 3
  cycles, set by whether the tags live in the datapath) than to the miss
  **ratio** differences between organizations;
* using the two miss-service cycles to fetch back two words "almost halves
  the miss ratio", making the double fetch-back the dominant win.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

from repro.core.config import IcacheConfig
from repro.icache.cache import Icache, IcacheStats


@dataclasses.dataclass
class OrganizationResult:
    """One point in the design space."""

    config: IcacheConfig
    stats: IcacheStats
    label: str = ""

    @property
    def miss_ratio(self) -> float:
        return self.stats.miss_rate

    @property
    def fetch_cost(self) -> float:
        return self.stats.average_fetch_cost(self.config.miss_cycles)

    def describe(self) -> str:
        cache = self.config
        return (f"{cache.sets}set x {cache.ways}way x {cache.block_words}w "
                f"fb={cache.fetchback} svc={cache.miss_cycles}")


def evaluate(config: IcacheConfig, trace: Sequence[int],
             label: str = "") -> OrganizationResult:
    """Run one organization over a fetch trace."""
    cache = Icache(config)
    cache.simulate_trace(trace)
    return OrganizationResult(config=config, stats=cache.stats, label=label)


def sweep_organizations(trace: Sequence[int],
                        total_words: int = 512,
                        miss_cycles: int = 2,
                        fetchback: int = 2) -> List[OrganizationResult]:
    """All (sets, ways, block) splits of a fixed ``total_words`` budget."""
    results = []
    block = 1
    while block <= total_words:
        lines = total_words // block
        ways = 1
        while ways <= lines:
            sets = lines // ways
            if sets * ways * block == total_words and sets >= 1:
                config = IcacheConfig(sets=sets, ways=ways, block_words=block,
                                      fetchback=fetchback,
                                      miss_cycles=miss_cycles)
                results.append(evaluate(config, trace))
            ways *= 2
        block *= 2
    return results


def fetchback_study(trace: Sequence[int],
                    base: Optional[IcacheConfig] = None,
                    counts: Iterable[int] = (1, 2, 3, 4)
                    ) -> List[OrganizationResult]:
    """Miss ratio / fetch cost as a function of the fetch-back count.

    The paper argues 2 is optimal: the two miss cycles fully use the cache
    write bandwidth; more words would not fit the miss service window (we
    model k > 2 as costing k service cycles)."""
    base = base or IcacheConfig()
    results = []
    for count in counts:
        config = dataclasses.replace(base, fetchback=count,
                                     miss_cycles=max(2, count))
        results.append(evaluate(config, trace, label=f"fetchback={count}"))
    return results


def service_time_study(trace: Sequence[int],
                       organizations: Optional[List[IcacheConfig]] = None
                       ) -> List[OrganizationResult]:
    """The paper's central tradeoff: tags in the datapath (2-cycle miss)
    versus a 'better' organization with a 3-cycle miss.

    Returns results for: the paper's organization at 2 and 3 cycle service
    times, and the best-miss-ratio organization from a sweep at 3 cycles.
    """
    results = []
    paper2 = IcacheConfig(miss_cycles=2)
    paper3 = dataclasses.replace(paper2, miss_cycles=3)
    results.append(evaluate(paper2, trace, label="paper org, 2-cycle miss"))
    results.append(evaluate(paper3, trace, label="paper org, 3-cycle miss"))
    if organizations is None:
        sweep = sweep_organizations(trace, miss_cycles=3)
        best = min(sweep, key=lambda r: r.miss_ratio)
        best.label = f"best miss ratio ({best.describe()}), 3-cycle miss"
        results.append(best)
    else:
        for config in organizations:
            results.append(evaluate(config, trace))
    return results
