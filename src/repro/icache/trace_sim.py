"""Vectorized trace-driven Icache replay.

The paper's cache study captured instruction traces once and swept every
organization against them; :func:`replay` is that second phase.  It is an
*exact* re-implementation of :class:`repro.icache.cache.Icache` semantics
-- sub-block placement (per-word valid bits), tag allocation vs sub-block
miss, cross-block fetch-back fills, LRU/FIFO order bookkeeping and the
deterministic xorshift random policy -- so replayed counters equal the
live cache's bit for bit (pinned by tests/test_trace_replay.py).

Why it is fast: instruction streams are long stride-1 bursts, so the
trace is decomposed once (config-independently, in numpy) into maximal
stride-1 runs.  Each run is walked block-portion by block-portion with
integer valid-bit masks, which turns per-*access* Python work into
per-*miss* work:

* a fully-valid portion is one dict probe + one mask compare for the
  whole burst of accesses;
* the first invalid word inside a portion falls out of one bit trick
  (``(inv & -inv).bit_length() - 1``);
* replacement state lives in one ``OrderedDict`` per set whose key order
  *is* the live cache's per-set order list (head == victim,
  ``move_to_end`` == touch), so victim selection is O(1) instead of an
  order-list scan.

A hit burst inside one portion touches a single way, so collapsing its
per-access LRU touches into one ``move_to_end`` at the end of the burst
is exact: nothing else can interleave within a portion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence, Union

import numpy as np

from repro.core.config import IcacheConfig
from repro.icache.cache import Icache, IcacheStats

_XORSHIFT_SEED = 0x2545F491


def replay(config: IcacheConfig,
           addresses: Union[Sequence[int], np.ndarray],
           system_mode: bool = True) -> IcacheStats:
    """Replay a fetch-address trace against one organization.

    Exact equivalent of ``Icache(config).simulate_trace(addresses)`` for
    power-of-two geometries; other geometries fall back to the live model.
    """
    trace = np.ascontiguousarray(np.asarray(addresses, dtype=np.int64))
    block, sets = config.block_words, config.sets
    pow2 = (block & (block - 1) == 0) and (sets & (sets - 1) == 0)
    if not pow2:
        return Icache(config).simulate_trace(trace.tolist(), system_mode)
    if trace.size == 0:
        return IcacheStats()
    # The mode bit only disambiguates system vs user tags; a single-mode
    # trace yields identical stats either way, so replay keys by block.
    return _replay_runs(config, trace)


def _run_starts(trace: np.ndarray) -> np.ndarray:
    """Start indices of the maximal stride-1 runs of ``trace``."""
    breaks = np.flatnonzero(trace[1:] != trace[:-1] + 1) + 1
    return np.concatenate(([0], breaks))


def _replay_runs(config: IcacheConfig, trace: np.ndarray) -> IcacheStats:
    block, sets, ways = config.block_words, config.sets, config.ways
    fetchback = max(1, config.fetchback)
    bshift = block.bit_length() - 1
    bmask = block - 1
    smask = sets - 1
    lru = config.replacement == "lru"
    random = config.replacement == "random"
    rand_state = _XORSHIFT_SEED

    starts = _run_starts(trace)
    a0s = trace[starts]
    lens = np.diff(np.concatenate((starts, [trace.size])))
    # Loop trips re-issue the identical stride-1 run back to back.  A
    # repeat of a run that just completed without a single miss can be
    # skipped outright: it would only repeat the same LRU touches in the
    # same order (idempotent -- nothing else interleaves between two
    # consecutive runs), so counters and final state are untouched.
    repeat = np.empty(a0s.size, dtype=bool)
    repeat[0] = False
    repeat[1:] = (a0s[1:] == a0s[:-1]) & (lens[1:] == lens[:-1])
    run_a0 = a0s.tolist()
    run_len = lens.tolist()
    run_repeat = repeat.tolist()

    # per-set state; OrderedDict key order == the live order list
    # restricted to allocated ways (never-used ways stay in front of it,
    # in index order -- ``used`` hands them out before the od head).
    # Keys are raw block numbers: at a fixed mode bit, block <-> tag is a
    # bijection within a set, so probing by block is exact and skips the
    # tag arithmetic on every access.
    tags = [OrderedDict() for _ in range(sets)]
    way_tag = [[None] * ways for _ in range(sets)]
    valid = [[0] * ways for _ in range(sets)]
    used = [0] * sets
    misses = 0
    filled = 0
    allocs = 0

    def fill(addr: int) -> None:
        nonlocal filled, allocs, rand_state
        blk = addr >> bshift
        s = blk & smask
        od = tags[s]
        way = od.get(blk)
        if way is None:
            if random:
                x = rand_state
                x ^= (x << 13) & 0xFFFFFFFF
                x ^= x >> 17
                x ^= (x << 5) & 0xFFFFFFFF
                rand_state = x
                way = x % ways
                old = way_tag[s][way]
                if old is not None:
                    del od[old]
            elif used[s] < ways:
                way = used[s]
                used[s] = way + 1
            else:
                way = od.popitem(last=False)[1]
            od[blk] = way
            way_tag[s][way] = blk
            valid[s][way] = 0
            allocs += 1
        elif lru:
            od.move_to_end(blk)  # fill into a live way refreshes recency
        bit = 1 << (addr & bmask)
        v = valid[s][way]
        if not v & bit:
            valid[s][way] = v | bit
            filled += 1

    in_block_fill = fetchback - 1  # last fill offset that can stay in-block
    clean = False  # previous run completed without a miss

    if block == 1:
        # One word per block: an allocated block always has its single
        # valid bit set (fill() sets it in the same call that allocates),
        # so hit == block present and the sub-block machinery drops out.
        for a0, length, is_repeat in zip(run_a0, run_len, run_repeat):
            if is_repeat and clean:
                continue
            run_misses = misses
            if lru:
                for a in range(a0, a0 + length):
                    od = tags[a & smask]
                    if a in od:
                        od.move_to_end(a)
                    else:
                        misses += 1
                        for k in range(fetchback):
                            fill(a + k)
            else:
                for a in range(a0, a0 + length):
                    if a not in tags[a & smask]:
                        misses += 1
                        for k in range(fetchback):
                            fill(a + k)
            clean = misses == run_misses
        return IcacheStats(accesses=int(trace.size), misses=misses,
                           words_filled=filled, tag_allocations=allocs)

    for a0, length, is_repeat in zip(run_a0, run_len, run_repeat):
        if is_repeat and clean:
            continue
        run_misses = misses
        a_end = a0 + length - 1
        blk = a0 >> bshift
        blk_end = a_end >> bshift
        w = a0 & bmask
        while True:
            w_hi = bmask if blk != blk_end else a_end & bmask
            s = blk & smask
            od = tags[s]
            valid_s = valid[s]
            while w <= w_hi:
                way = od.get(blk)
                if way is None:
                    misses += 1
                    base = (blk << bshift) | w
                    for k in range(fetchback):
                        fill(base + k)
                    w += 1
                    continue
                v = valid_s[way]
                span = ((2 << (w_hi - w)) - 1) << w  # bits w..w_hi
                inv = span & ~v
                if inv == 0:
                    if lru:
                        od.move_to_end(blk)
                    break
                j = (inv & -inv).bit_length() - 1
                if lru:  # leading hits and the sub-block miss's own fill
                    od.move_to_end(blk)  # both touch this way exactly once
                misses += 1
                if j + in_block_fill <= bmask:
                    add = (((1 << fetchback) - 1) << j) & ~v
                    valid_s[way] = v | add
                    filled += add.bit_count()
                else:
                    base = (blk << bshift) | j
                    for k in range(fetchback):
                        fill(base + k)
                w = j + 1
            if blk == blk_end:
                break
            blk += 1
            w = 0
        clean = misses == run_misses

    return IcacheStats(accesses=int(trace.size), misses=misses,
                       words_filled=filled, tag_allocations=allocs)
