"""Trace-driven replay of the Table 1 branch-scheme study.

The live evaluation (:func:`repro.analysis.branch_schemes.evaluate_scheme`)
needs a full profiling run of every workload on the cycle-exact pipeline
before it can cost a scheme.  But the study's inputs are tiny and
scheme-separable:

* per-branch dynamic (taken, not-taken) counts -- captured once per
  workload (this is the expensive pipeline run);
* per-branch slot costs for each scheme -- a cheap reorganization pass,
  captured once per (workload, scheme).

Both are stored as arrays in the :class:`~repro.traces.store.TraceStore`,
content-addressed by workload source hash and scheme parameters, and a
scheme evaluation replays as two aligned dot products.  Replayed
executions and cycle totals equal the live evaluation's exactly (the
same counts-and-plans intersection; pinned by tests/test_trace_replay.py).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.branch_schemes import SchemeEvaluation, WorkloadBranchCost
from repro.analysis.common import (
    conditional_plans_by_index,
    profiled_result,
    workload_branch_counts,
)
from repro.reorg.delay_slots import TABLE1_SCHEMES, BranchScheme
from repro.traces.store import CapturedTrace, TraceStore
from repro.workloads import PASCAL_SUITE, get


@dataclasses.dataclass
class ReplayTiming:
    """Capture/replay cost bookkeeping for one traced evaluation."""

    capture_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


def workload_source_hash(name: str) -> str:
    """Content hash of a workload's source: edits invalidate its traces."""
    workload = get(name)
    material = f"{workload.is_assembly}\n{workload.source}"
    return hashlib.sha256(material.encode()).hexdigest()[:24]


# ------------------------------------------------------------------ capture
def branch_counts_descriptor(name: str) -> Dict[str, object]:
    return {"kind": "branch-counts", "workload": name,
            "source": workload_source_hash(name)}


def capture_branch_counts(name: str) -> CapturedTrace:
    """Profile one workload (the expensive cycle-exact run)."""
    counts = workload_branch_counts(name)
    index = np.array([i for i, _ in counts], dtype=np.int64)
    taken = np.array([t for _, (t, _) in counts], dtype=np.int64)
    not_taken = np.array([n for _, (_, n) in counts], dtype=np.int64)
    return CapturedTrace(
        arrays={"index": index, "taken": taken, "not_taken": not_taken},
        meta={"kind": "branch-counts", "workload": name})


def branch_plans_descriptor(name: str,
                            scheme: BranchScheme) -> Dict[str, object]:
    return {"kind": "branch-plans", "workload": name,
            "source": workload_source_hash(name),
            "slots": scheme.slots, "squash": scheme.squash,
            "squash_if_go": scheme.squash_if_go}


def capture_branch_plans(name: str, scheme: BranchScheme) -> CapturedTrace:
    """Reorganize one workload under one scheme and record slot costs."""
    plans = conditional_plans_by_index(profiled_result(name, scheme))
    index = np.array(sorted(plans), dtype=np.int64)
    cost_taken = np.array([int(plans[i].cost(True)) for i in index],
                          dtype=np.int64)
    cost_not_taken = np.array([int(plans[i].cost(False)) for i in index],
                              dtype=np.int64)
    return CapturedTrace(
        arrays={"index": index, "cost_taken": cost_taken,
                "cost_not_taken": cost_not_taken},
        meta={"kind": "branch-plans", "workload": name,
              "scheme": scheme.name})


# ------------------------------------------------------------------- replay
def _workload_cost(counts: CapturedTrace,
                   plans: CapturedTrace) -> WorkloadBranchCost:
    """Cost one workload under one scheme from stored arrays.

    Mirrors the live evaluation's semantics: only branches present in
    both the profile counts and the scheme's plan set contribute.
    """
    _, count_pos, plan_pos = np.intersect1d(
        counts["index"], plans["index"],
        assume_unique=True, return_indices=True)
    taken = counts["taken"][count_pos]
    not_taken = counts["not_taken"][count_pos]
    executions = int(taken.sum() + not_taken.sum())
    cycles = int(taken @ plans["cost_taken"][plan_pos]
                 + not_taken @ plans["cost_not_taken"][plan_pos])
    return WorkloadBranchCost(str(counts.meta.get("workload", "")),
                              executions, cycles)


def replay_scheme(scheme: BranchScheme, names: Sequence[str],
                  store: Optional[TraceStore] = None, reuse: bool = True,
                  timing: Optional[ReplayTiming] = None) -> SchemeEvaluation:
    """Trace-driven equivalent of :func:`evaluate_scheme`."""
    store = store or TraceStore()
    per_workload = []
    for name in names:
        counts = _fetch(store, branch_counts_descriptor(name),
                        lambda: capture_branch_counts(name), reuse, timing)
        plans = _fetch(store, branch_plans_descriptor(name, scheme),
                       lambda: capture_branch_plans(name, scheme), reuse,
                       timing)
        cost = _workload_cost(counts, plans)
        per_workload.append(WorkloadBranchCost(name, cost.executions,
                                               cost.cycles))
    return SchemeEvaluation(scheme=scheme, per_workload=per_workload)


def _fetch(store: TraceStore, descriptor, capture, reuse: bool,
           timing: Optional[ReplayTiming]) -> CapturedTrace:
    trace, elapsed, hit = store.get_or_capture(descriptor, capture,
                                               reuse=reuse)
    if timing is not None:
        timing.capture_s += elapsed
        if hit:
            timing.cache_hits += 1
        else:
            timing.cache_misses += 1
    return trace


def table1_traced(names: Optional[Sequence[str]] = None,
                  store: Optional[TraceStore] = None, reuse: bool = True,
                  timing: Optional[ReplayTiming] = None
                  ) -> List[SchemeEvaluation]:
    """Trace-replayed Table 1 -- exact-equal to ``table1(names)``."""
    names = list(names) if names is not None else list(PASCAL_SUITE)
    store = store or TraceStore()
    return [replay_scheme(scheme, names, store=store, reuse=reuse,
                          timing=timing)
            for scheme in TABLE1_SCHEMES]
