"""Table 1: average cycles per branch under the six branch schemes.

Method (the same trace-driven evaluation the design team ran before
committing to squash-optional):

1. each workload is compiled once and *profiled* -- per-branch dynamic
   (taken, not-taken) counts, which are invariant across schemes;
2. for each scheme, the reorganizer produces per-branch
   :class:`~repro.reorg.delay_slots.BranchPlan` fill decisions under
   profile-guided static prediction;
3. a branch execution costs ``1 + wasted slots``: a slot is wasted when it
   holds a no-op, or a squash fill that went the wrong way (footnote 2 of
   the paper: no-ops in delay slots are attributed to the branch, so a
   branch with two no-op slots costs 3).

``squash-if-go`` fills are costed even though MIPS-X hardware cannot run
them -- exactly how the paper's Table 1 could evaluate schemes the final
machine dropped.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.reorg.delay_slots import TABLE1_SCHEMES, BranchScheme
from repro.workloads import PASCAL_SUITE

from repro.analysis.common import (
    conditional_plans_by_index,
    profiled_result,
    workload_branch_counts,
)


@dataclasses.dataclass
class WorkloadBranchCost:
    name: str
    executions: int
    cycles: int

    @property
    def cycles_per_branch(self) -> float:
        return self.cycles / self.executions if self.executions else 0.0


@dataclasses.dataclass
class SchemeEvaluation:
    scheme: BranchScheme
    per_workload: List[WorkloadBranchCost]

    @property
    def executions(self) -> int:
        return sum(w.executions for w in self.per_workload)

    @property
    def cycles(self) -> int:
        return sum(w.cycles for w in self.per_workload)

    @property
    def cycles_per_branch(self) -> float:
        return self.cycles / self.executions if self.executions else 0.0


def evaluate_scheme(scheme: BranchScheme,
                    names: Sequence[str]) -> SchemeEvaluation:
    """Cost one scheme over a set of workloads."""
    per_workload = []
    for name in names:
        counts = dict(workload_branch_counts(name))
        result = profiled_result(name, scheme)
        plans = conditional_plans_by_index(result)
        executions = 0
        cycles = 0
        for index, (taken, not_taken) in counts.items():
            plan = plans.get(index)
            if plan is None:
                continue
            executions += taken + not_taken
            cycles += taken * plan.cost(True) + not_taken * plan.cost(False)
        per_workload.append(WorkloadBranchCost(name, executions, cycles))
    return SchemeEvaluation(scheme=scheme, per_workload=per_workload)


def table1(names: Optional[Sequence[str]] = None) -> List[SchemeEvaluation]:
    """Reproduce Table 1 over the Pascal suite (default)."""
    names = list(names) if names is not None else list(PASCAL_SUITE)
    return [evaluate_scheme(scheme, names) for scheme in TABLE1_SCHEMES]


def table1_rows(names: Optional[Sequence[str]] = None) -> List[tuple]:
    """(scheme name, cycles/branch) rows in the paper's order."""
    return [(evaluation.scheme.name, round(evaluation.cycles_per_branch, 2))
            for evaluation in table1(names)]


# Paper's Table 1 for reference (cycles per branch):
PAPER_TABLE1: Dict[str, float] = {
    "2-slot no squash": 2.0,
    "2-slot always squash": 1.5,
    "2-slot squash optional": 1.3,
    "1-slot no squash": 1.4,
    "1-slot always squash": 1.3,
    "1-slot squash optional": 1.1,
}
