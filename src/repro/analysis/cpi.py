"""CPI decomposition, throughput, and bandwidth (E6, E7, E11).

Reproduces the paper's performance accounting:

* no-op fractions: 15.6% for Pascal, 18.3% for Lisp ("no-ops due to unused
  branch delays or other pipeline interlocks that cannot be optimized
  away");
* overall CPI of about 1.7 once Icache and Ecache overheads are included,
  for a sustained throughput above 11 MIPS at the 20 MHz clock;
* memory bandwidth: ~26 MWords/s average (one instruction per cycle plus
  data roughly every third cycle), 40 MWords/s peak.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, perfect_memory_config
from repro.telemetry.metrics import Metrics, collect_machine
from repro.workloads import LISP_SUITE, PASCAL_SUITE

from repro.analysis.common import profiled_result, run_measured


@dataclasses.dataclass
class CpiBreakdown:
    """Per-workload performance decomposition."""

    name: str
    cycles: int
    instructions: int          #: retired, including no-ops
    noops: int
    squashed: int
    icache_stalls: int
    data_stalls: int
    loads: int
    stores: int
    fetched: int
    branches: int
    jumps: int
    icache_miss_rate: float
    static_code_words: int
    clock_mhz: float = 20.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions

    @property
    def noop_fraction(self) -> float:
        return self.noops / self.instructions

    @property
    def wasted_fraction(self) -> float:
        """No-ops plus squashed slots over all issued instructions."""
        issued = self.instructions + self.squashed
        return (self.noops + self.squashed) / issued

    @property
    def memory_overhead_cpi(self) -> float:
        """Cycles per instruction lost to the memory system."""
        return (self.icache_stalls + self.data_stalls) / self.instructions

    @property
    def base_cpi(self) -> float:
        """CPI excluding memory stalls (pipe-only)."""
        return self.cpi - self.memory_overhead_cpi

    @property
    def sustained_mips(self) -> float:
        return self.clock_mhz / self.cpi

    @property
    def average_fetch_cost(self) -> float:
        """Cycles per instruction fetch (paper: 1.24 at a 12% miss rate)."""
        return 1.0 + self.icache_stalls / self.fetched if self.fetched else 0.0

    @property
    def data_reference_density(self) -> float:
        return (self.loads + self.stores) / self.instructions

    @property
    def average_bandwidth_mwords(self) -> float:
        """Average memory traffic in MWords/s (instruction + data)."""
        words = self.fetched + self.loads + self.stores
        return words / self.cycles * self.clock_mhz

    @property
    def peak_bandwidth_mwords(self) -> float:
        """One instruction and one data word per cycle."""
        return 2 * self.clock_mhz

    @classmethod
    def from_metrics(cls, name: str, snapshot: Mapping[str, object],
                     static_code_words: int,
                     clock_mhz: float = 20.0) -> "CpiBreakdown":
        """Build a breakdown from a telemetry snapshot.

        ``snapshot`` is the flat ``{metric name: value}`` mapping of
        :meth:`repro.telemetry.Metrics.snapshot` -- the audited catalog
        names, not raw stat attributes.  This makes the analysis module
        and the ``check_results.py --metrics-file`` gate read the *same*
        numbers by construction.
        """
        def value(metric: str) -> int:
            return int(snapshot.get(metric, 0))

        return cls(
            name=name,
            cycles=value("pipeline.cycles"),
            instructions=value("pipeline.instructions.retired"),
            noops=value("pipeline.instructions.noops"),
            squashed=value("pipeline.instructions.squashed"),
            icache_stalls=value("pipeline.stall.icache_miss"),
            data_stalls=value("pipeline.stall.ecache_late_miss"),
            loads=value("pipeline.mem.loads"),
            stores=value("pipeline.mem.stores"),
            fetched=value("pipeline.instructions.fetched"),
            branches=value("pipeline.branch.executed"),
            jumps=value("pipeline.jumps"),
            icache_miss_rate=float(snapshot.get("icache.miss_rate", 0.0)),
            static_code_words=static_code_words,
            clock_mhz=clock_mhz,
        )


def measure_with_metrics(
        name: str, config: Optional[MachineConfig] = None,
) -> Tuple[CpiBreakdown, Metrics]:
    """Run the profiled build of a workload; decompose via telemetry.

    Returns the :class:`CpiBreakdown` *and* the telemetry registry it
    was built from, so callers (the harness, the metrics gate) can keep
    the raw counters alongside the derived view.
    """
    config = config or MachineConfig()
    machine = run_measured(name, config)
    metrics = collect_machine(machine)
    program = profiled_result(name).unit.assemble()
    breakdown = CpiBreakdown.from_metrics(
        name, metrics.snapshot(), static_code_words=program.code_size,
        clock_mhz=config.clock_mhz)
    return breakdown, metrics


def measure(name: str, config: Optional[MachineConfig] = None) -> CpiBreakdown:
    """Run the profiled build of a workload and decompose its cycles."""
    return measure_with_metrics(name, config)[0]


@dataclasses.dataclass
class SuiteSummary:
    breakdowns: List[CpiBreakdown]

    def _ratio(self, numerator, denominator) -> float:
        total_n = sum(numerator(b) for b in self.breakdowns)
        total_d = sum(denominator(b) for b in self.breakdowns)
        return total_n / total_d if total_d else 0.0

    @property
    def cpi(self) -> float:
        return self._ratio(lambda b: b.cycles, lambda b: b.instructions)

    @property
    def noop_fraction(self) -> float:
        """Instruction-weighted suite no-op fraction."""
        return self._ratio(lambda b: b.noops, lambda b: b.instructions)

    @property
    def mean_noop_fraction(self) -> float:
        """Unweighted mean over workloads (each benchmark counts once --
        the conventional way suite numbers like the paper's 15.6% are
        quoted)."""
        if not self.breakdowns:
            return 0.0
        return sum(b.noop_fraction for b in self.breakdowns) / len(
            self.breakdowns)

    @property
    def sustained_mips(self) -> float:
        clock = self.breakdowns[0].clock_mhz if self.breakdowns else 20.0
        return clock / self.cpi

    @property
    def average_bandwidth_mwords(self) -> float:
        clock = self.breakdowns[0].clock_mhz if self.breakdowns else 20.0
        return self._ratio(
            lambda b: b.fetched + b.loads + b.stores,
            lambda b: b.cycles) * clock

    @property
    def data_reference_density(self) -> float:
        return self._ratio(lambda b: b.loads + b.stores,
                           lambda b: b.instructions)

    @property
    def icache_miss_rate(self) -> float:
        return self._ratio(
            lambda b: b.icache_miss_rate * b.fetched,
            lambda b: b.fetched)


def suite(names: Optional[Sequence[str]] = None,
          config: Optional[MachineConfig] = None) -> SuiteSummary:
    names = list(names) if names is not None else list(PASCAL_SUITE)
    return SuiteSummary([measure(name, config) for name in names])


def scaled_memory_config(icache_words: int = 48,
                         ecache_words: int = 128) -> MachineConfig:
    """Machine config with the memory hierarchy scaled to the workloads.

    The paper's benchmarks were 50-270 KB against a 2 KB Icache (a 25x to
    135x footprint ratio); our compiled workloads are a few hundred words.
    To study the same *regime* (miss rates around the paper's 12%), the
    caches are scaled down so the footprint-to-cache ratios are
    comparable.  Organization ratios are preserved: sub-block placement,
    2-word fetch-back, 2-cycle miss service.  The defaults land the suite
    at ~12.5% Icache miss and ~1.66 CPI -- the paper's operating point.
    """
    config = MachineConfig()
    block = max(icache_words // 32, 2)
    config.icache.sets = 4
    config.icache.ways = max(icache_words // (4 * block), 1)
    config.icache.block_words = block
    config.ecache.size_words = ecache_words
    return config


def noop_fractions() -> tuple:
    """(Pascal, Lisp) suite no-op fractions on perfect memory -- the
    experiment behind the paper's 15.6% / 18.3%."""
    config = perfect_memory_config()
    pascal = suite(PASCAL_SUITE, config)
    lisp = suite(LISP_SUITE, config)
    return pascal.noop_fraction, lisp.noop_fraction
