"""Branch prediction study: branch cache vs static prediction.

The paper: "The branch cache was quickly discarded when we discovered that
it had to be fairly large (much greater than 16 entries) to get a high hit
rate ... Besides, it never did much better than static prediction and was
much more complex."

We reproduce that comparison over the workloads' dynamic branch traces:

* **static BTFN** -- backward taken / forward not-taken (no profile);
* **static profile** -- per-branch majority direction (what the shipped
  reorganizer uses);
* **branch cache** of N entries -- a fully-associative LRU cache of branch
  PCs, allocated when a branch takes, evicted on capacity; a branch is
  predicted taken iff present.  Swept over N.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.traces.capture import BranchEvent, TraceCollector
from repro.workloads import LISP_SUITE, PASCAL_SUITE

from repro.analysis.common import run_measured


@dataclasses.dataclass
class PredictorResult:
    name: str
    branches: int
    mispredictions: int

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredict_rate


def collect_branch_events(names: Sequence[str],
                          quantum: int = 0) -> List[BranchEvent]:
    """One combined dynamic branch trace over the given workloads.

    Branch PCs are disambiguated across workloads by tagging the high bits
    with the workload index (traces never reach those addresses).

    With ``quantum > 0`` the per-workload streams are *interleaved* every
    ``quantum`` events instead of concatenated -- the standard
    trace-driven stand-in for one large program whose working set of
    branch sites exceeds any single small benchmark (Smith's cache studies
    switched traces every Q references for exactly this reason).  A small
    branch cache thrashes under interleaving; static prediction does not.
    """
    streams: List[List[BranchEvent]] = []
    for offset, name in enumerate(names):
        collector = TraceCollector(fetches=False, data=False, branches=True)
        run_measured(name, trace=collector)
        tag = (offset + 1) << 24
        streams.append([BranchEvent(e.pc | tag, e.taken, e.target | tag)
                        for e in collector.branch_events])
    if quantum <= 0:
        return [event for stream in streams for event in stream]
    events: List[BranchEvent] = []
    cursors = [0] * len(streams)
    while any(cursors[k] < len(streams[k]) for k in range(len(streams))):
        for k, stream in enumerate(streams):
            take = stream[cursors[k]:cursors[k] + quantum]
            events.extend(take)
            cursors[k] += len(take)
    return events


def static_btfn(events: Sequence[BranchEvent]) -> PredictorResult:
    """Backward-taken / forward-not-taken static prediction."""
    wrong = sum(1 for e in events if (e.target <= e.pc) != e.taken)
    return PredictorResult("static BTFN", len(events), wrong)


def static_profile(events: Sequence[BranchEvent]) -> PredictorResult:
    """Per-branch majority direction (profile-guided static prediction).

    The profile is taken over the same trace, which is exactly what the
    paper's profiling workflow does (train = test was the practice)."""
    outcomes: Dict[int, List[int]] = collections.defaultdict(lambda: [0, 0])
    for event in events:
        outcomes[event.pc][0 if event.taken else 1] += 1
    majority = {pc: taken >= not_taken
                for pc, (taken, not_taken) in outcomes.items()}
    wrong = sum(1 for e in events if majority[e.pc] != e.taken)
    return PredictorResult("static profile", len(events), wrong)


def branch_cache(events: Sequence[BranchEvent],
                 entries: int) -> PredictorResult:
    """Fully-associative LRU branch cache: predict taken iff present."""
    cache: "collections.OrderedDict[int, bool]" = collections.OrderedDict()
    wrong = 0
    for event in events:
        predicted_taken = event.pc in cache
        if predicted_taken:
            cache.move_to_end(event.pc)
        if predicted_taken != event.taken:
            wrong += 1
        if event.taken:
            cache[event.pc] = True
            cache.move_to_end(event.pc)
            if len(cache) > entries:
                cache.popitem(last=False)
        elif event.pc in cache:
            del cache[event.pc]
    return PredictorResult(f"branch cache ({entries} entries)",
                           len(events), wrong)


@dataclasses.dataclass
class PredictionStudy:
    static_btfn: PredictorResult
    static_profile: PredictorResult
    caches: List[PredictorResult]

    def rows(self) -> List[tuple]:
        out = [(self.static_btfn.name,
                round(self.static_btfn.mispredict_rate, 3))]
        out.append((self.static_profile.name,
                    round(self.static_profile.mispredict_rate, 3)))
        for result in self.caches:
            out.append((result.name, round(result.mispredict_rate, 3)))
        return out

    def smallest_cache_beating_profile(self) -> Optional[int]:
        """Entries needed for the branch cache to match static profile."""
        target = self.static_profile.mispredict_rate
        for result, entries in zip(self.caches, self._entry_sizes):
            if result.mispredict_rate <= target:
                return entries
        return None

    _entry_sizes: List[int] = dataclasses.field(default_factory=list)


def run_study(names: Optional[Sequence[str]] = None,
              sizes: Sequence[int] = (4, 8, 16, 32, 64, 128, 256),
              quantum: int = 200) -> PredictionStudy:
    names = list(names) if names is not None else (
        list(PASCAL_SUITE) + list(LISP_SUITE))
    events = collect_branch_events(names, quantum=quantum)
    study = PredictionStudy(
        static_btfn=static_btfn(events),
        static_profile=static_profile(events),
        caches=[branch_cache(events, size) for size in sizes],
    )
    study._entry_sizes = list(sizes)
    return study
