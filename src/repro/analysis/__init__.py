"""Experiment machinery for every table and figure (see DESIGN.md)."""

from repro.analysis.area import (
    AreaBudget,
    fsm_area_fraction,
    icache_fraction,
    icache_size_tradeoff,
    transistor_budget,
)
from repro.analysis.branch_schemes import (
    PAPER_TABLE1,
    SchemeEvaluation,
    evaluate_scheme,
    table1,
    table1_rows,
)
from repro.analysis.common import (
    naive_unit,
    profiled_result,
    run_measured,
    workload_branch_counts,
    workload_profile,
)
from repro.analysis.cpi import (
    CpiBreakdown,
    SuiteSummary,
    measure,
    noop_fractions,
    scaled_memory_config,
    suite,
)
from repro.analysis.multiprogramming import (
    collect_workload_traces,
    quantum_sweep,
    warm_miss_ratio,
)
from repro.analysis.prediction import (
    PredictionStudy,
    branch_cache,
    collect_branch_events,
    run_study,
    static_btfn,
    static_profile,
)
from repro.analysis.quick_compare import (
    BranchConditionStats,
    classify_branches,
    suite_stats,
)
from repro.analysis.reporting import format_table
from repro.analysis.vax import (
    Comparison,
    VaxEstimator,
    compare_suite,
    compare_workload,
)

__all__ = [
    "AreaBudget",
    "BranchConditionStats",
    "Comparison",
    "CpiBreakdown",
    "PAPER_TABLE1",
    "PredictionStudy",
    "SchemeEvaluation",
    "SuiteSummary",
    "VaxEstimator",
    "branch_cache",
    "classify_branches",
    "collect_branch_events",
    "collect_workload_traces",
    "compare_suite",
    "compare_workload",
    "evaluate_scheme",
    "format_table",
    "fsm_area_fraction",
    "icache_fraction",
    "icache_size_tradeoff",
    "measure",
    "naive_unit",
    "noop_fractions",
    "profiled_result",
    "quantum_sweep",
    "run_measured",
    "run_study",
    "scaled_memory_config",
    "static_btfn",
    "static_profile",
    "suite",
    "suite_stats",
    "table1",
    "table1_rows",
    "transistor_budget",
    "warm_miss_ratio",
    "workload_branch_counts",
    "workload_profile",
]
