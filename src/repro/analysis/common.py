"""Shared helpers for the experiment machinery.

Experiments need *profiled* reorganization (the paper's best results use
profile-guided static prediction), workload runs on arbitrary machine
configurations, and consistent branch-index bookkeeping.  Everything here
is cached where determinism allows.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Tuple

from repro.asm.assembler import parse as parse_asm
from repro.coproc.fpu import Fpu
from repro.core.config import MachineConfig, perfect_memory_config
from repro.core.processor import Machine
from repro.lang.compiler import compile_spl
from repro.reorg.delay_slots import MIPSX_SCHEME, BranchScheme
from repro.reorg.profiler import (
    collect_profile,
)
from repro.reorg.reorganizer import ReorgResult, reorganize
from repro.traces.capture import TraceCollector
from repro.workloads import Workload, get


def naive_unit(workload: Workload):
    """Fresh naive (un-reorganized) symbolic unit for a workload."""
    if workload.is_assembly:
        return parse_asm(workload.source)
    return parse_asm(compile_spl(workload.source, scheme=None).asm_text)


@functools.lru_cache(maxsize=None)
def workload_profile(name: str) -> Tuple[Tuple[int, bool], ...]:
    """Profiled branch directions for a workload (hashable, cached).

    Profiling runs the statically-predicted build once on a perfect-memory
    machine; branch outcomes do not depend on the memory system.
    """
    workload = get(name)
    first = reorganize(naive_unit(workload), MIPSX_SCHEME)
    cops = (Fpu(),) if workload.needs_fpu else ()
    profile = collect_profile(first, _profile_config(workload),
                              coprocessors=cops)
    return tuple(sorted(profile.directions.items()))


@functools.lru_cache(maxsize=None)
def workload_branch_counts(name: str) -> Tuple[Tuple[int, Tuple[int, int]], ...]:
    """Per-conditional-branch-index (taken, not-taken) dynamic counts.

    Branch *outcomes* are invariant across schemes and memory systems, so
    one canonical run serves every scheme evaluation.
    """
    workload = get(name)
    first = reorganize(naive_unit(workload), MIPSX_SCHEME)
    cops = (Fpu(),) if workload.needs_fpu else ()
    profile = collect_profile(first, _profile_config(workload),
                              coprocessors=cops)
    return tuple(sorted(profile.counts.items()))


def _profile_config(workload: Workload) -> MachineConfig:
    return perfect_memory_config()


@functools.lru_cache(maxsize=None)
def profiled_result_cached(name: str, slots: int, squash: str,
                           squash_if_go: bool) -> ReorgResult:
    """Reorganize a workload under a scheme with its profiled directions."""
    scheme = BranchScheme(slots, squash, squash_if_go=squash_if_go)
    directions = dict(workload_profile(name))
    return reorganize(naive_unit(get(name)), scheme, profile=directions)


def profiled_result(name: str,
                    scheme: BranchScheme = MIPSX_SCHEME) -> ReorgResult:
    return profiled_result_cached(name, scheme.slots, scheme.squash,
                                  scheme.squash_if_go)


def run_measured(name: str, config: Optional[MachineConfig] = None,
                 scheme: BranchScheme = MIPSX_SCHEME,
                 trace: Optional[TraceCollector] = None,
                 max_cycles: int = 60_000_000) -> Machine:
    """Run the profiled build of a workload on a given machine config."""
    workload = get(name)
    result = profiled_result(name, scheme)
    machine = Machine(config)
    if workload.needs_fpu:
        machine.attach_coprocessor(Fpu())
    if trace is not None:
        machine.set_trace(trace)
    machine.load_program(result.unit.assemble())
    machine.run(max_cycles)
    if not machine.halted:
        raise RuntimeError(f"{name} did not halt within {max_cycles} cycles")
    return machine


def conditional_plans_by_index(result: ReorgResult) -> Dict[int, object]:
    """Map conditional-branch index -> BranchPlan for one reorganization."""
    from repro.asm.unit import Op

    plan_by_op = {id(plan.op): plan for plan in result.plans}
    plans: Dict[int, object] = {}
    index = 0
    for item in result.unit.items:
        if isinstance(item, Op) and item.instr.is_branch:
            # index counts *source* conditional branches: always-taken br
            # pseudo-branches were never profiled, matching reorganize()
            plan = plan_by_op.get(id(item))
            if plan is not None and plan.conditional:
                plans[index] = plan
            if _counts_for_profile(item):
                index += 1
    return plans


def _counts_for_profile(item) -> bool:
    """Mirror the branch-index convention of repro.reorg.profiler."""
    return item.instr.is_branch
