"""Transistor/area budget model (Figure 2 / E10).

The paper's physical facts: an 8.5 mm x 8 mm die in 2 um CMOS, about 150K
transistors with "two thirds of which are in the instruction cache", the
datapath plus control taking about half the area inside the padframe, and
the two control FSMs occupying "less than 0.2% of the total area of the
chip".

The model below allocates transistors per component with per-bit costs
calibrated so the default configuration reproduces those facts, then
supports the Icache area/performance ablation: how the fetch cost and the
transistor budget trade as the cache grows -- the tradeoff that fixed the
cache size at 512 words ("we first fixed a die size ... the cache was
allocated the remaining area").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.config import IcacheConfig, MachineConfig
from repro.icache.cache import Icache

#: effective transistors per SRAM bit (cell + decode + sense amortized)
TRANSISTORS_PER_CACHE_BIT = 5.2
#: register-file bit (dual-ported cell + bypass taps)
TRANSISTORS_PER_REGFILE_BIT = 12.0
#: random logic per "gate equivalent"
TRANSISTORS_PER_GATE = 4.0

DIE_AREA_MM2 = 8.5 * 8.0
PAPER_TOTAL_TRANSISTORS = 150_000


@dataclasses.dataclass
class AreaBudget:
    components: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.components.values())

    def fraction(self, name: str) -> float:
        return self.components[name] / self.total

    def rows(self) -> List[tuple]:
        return [(name, count, round(count / self.total, 3))
                for name, count in sorted(self.components.items(),
                                          key=lambda kv: -kv[1])]


def transistor_budget(config: Optional[MachineConfig] = None) -> AreaBudget:
    """Component-wise transistor estimate for a machine configuration."""
    config = config or MachineConfig()
    icache = config.icache
    data_bits = icache.total_words * 32
    tag_bits = icache.tags * 22          # tag + comparator slice
    valid_bits = icache.valid_bits * 1.5  # valid bit + reset chain
    components = {
        "icache data array": int(data_bits * TRANSISTORS_PER_CACHE_BIT),
        "icache tags+valid (in datapath)": int(
            (tag_bits + valid_bits) * TRANSISTORS_PER_REGFILE_BIT),
        "register file": int(32 * 32 * TRANSISTORS_PER_REGFILE_BIT),
        "alu + funnel shifter": int(3400 * TRANSISTORS_PER_GATE),
        "pc unit (adders + chain)": int(1800 * TRANSISTORS_PER_GATE),
        "instruction register + decode": int(1500 * TRANSISTORS_PER_GATE),
        "bypass + md + psw": int(1200 * TRANSISTORS_PER_GATE),
        "local control + pads": int(2500 * TRANSISTORS_PER_GATE),
        "squash fsm": int(30 * TRANSISTORS_PER_GATE),
        "cache-miss fsm": int(38 * TRANSISTORS_PER_GATE),
    }
    return AreaBudget(components)


def fsm_area_fraction(budget: Optional[AreaBudget] = None) -> float:
    """Fraction of the chip in the two FSMs (paper: < 0.2% of area)."""
    budget = budget or transistor_budget()
    fsm = budget.components["squash fsm"] + budget.components["cache-miss fsm"]
    return fsm / budget.total


def icache_fraction(budget: Optional[AreaBudget] = None) -> float:
    """Fraction of transistors in the instruction cache (paper: ~2/3)."""
    budget = budget or transistor_budget()
    cache = (budget.components["icache data array"]
             + budget.components["icache tags+valid (in datapath)"])
    return cache / budget.total


@dataclasses.dataclass
class AreaTradeoffPoint:
    words: int
    transistors: int
    miss_ratio: float
    fetch_cost: float
    fits_paper_die: bool


def icache_size_tradeoff(trace: Sequence[int],
                         sizes: Sequence[int] = (128, 256, 512, 1024, 2048),
                         miss_cycles: int = 2) -> List[AreaTradeoffPoint]:
    """Sweep total Icache words: fetch cost vs transistor budget.

    A configuration "fits the paper die" if its total budget stays within
    the 150K transistors of the real chip (the die-size constraint that
    fixed the cache at 512 words).
    """
    points = []
    for words in sizes:
        block = 16 if words >= 256 else max(words // 16, 2)
        ways = 8
        sets = max(words // (ways * block), 1)
        icache_config = IcacheConfig(sets=sets, ways=ways, block_words=block,
                                     miss_cycles=miss_cycles)
        machine_config = MachineConfig()
        machine_config.icache = icache_config
        budget = transistor_budget(machine_config)
        cache = Icache(icache_config)
        cache.simulate_trace(trace)
        points.append(AreaTradeoffPoint(
            words=icache_config.total_words,
            transistors=budget.total,
            miss_ratio=cache.stats.miss_rate,
            fetch_cost=cache.stats.average_fetch_cost(miss_cycles),
            fits_paper_die=budget.total <= int(PAPER_TOTAL_TRANSISTORS * 1.05),
        ))
    return points
