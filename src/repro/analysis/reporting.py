"""Plain-text table formatting for the benchmark harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned text table (numbers right-aligned)."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells, pad=" "):
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index], pad))
            else:
                parts.append(cell.rjust(widths[index], pad))
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths], pad="-"))
    for row in rendered_rows:
        out.append(line(row))
    return "\n".join(out)
