"""Branch condition statistics (the quick-compare and condition-code
discussions of the paper).

Two claims are reproduced:

* "In roughly 80% of the branches an explicit compare operation must be
  performed to set the condition codes" -- i.e. on a condition-code
  machine, the value a branch tests is rarely the by-product of an
  arithmetic instruction that would have set the codes anyway;
* "the number of branches that could be handled using a quick compare was
  between 70% and 80%" -- the quick compare (a comparator on the register
  file outputs) supports only equality and sign tests.

Both are measured dynamically over branch traces of the compiled
workloads.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.traces.capture import TraceCollector
from repro.workloads import LISP_SUITE, PASCAL_SUITE

from repro.analysis.common import profiled_result, run_measured


@dataclasses.dataclass
class BranchConditionStats:
    total: int = 0
    #: equality tests (any registers) -- quick-comparable
    equality: int = 0
    #: sign tests (ordered compare against r0) -- quick-comparable
    sign_test: int = 0
    #: ordered compare against r0 that is not a pure sign test (bgt/ble):
    #: quick-comparable "by changing the compiler slightly" (test >=1 as >0)
    near_sign_test: int = 0
    #: ordered register-register compares -- need the full ALU compare
    ordered_reg: int = 0
    #: branches whose tested value was just produced by a nearby ALU op
    #: (a condition-code machine would reuse the codes: no explicit compare)
    cc_free: int = 0

    @property
    def quick_fraction_strict(self) -> float:
        """Fraction handled by the quick compare as literally proposed."""
        if not self.total:
            return 0.0
        return (self.equality + self.sign_test) / self.total

    @property
    def quick_fraction(self) -> float:
        """Fraction quick-comparable after the small compiler change the
        paper describes (Katevenis's ~80% number)."""
        if not self.total:
            return 0.0
        return (self.equality + self.sign_test
                + self.near_sign_test) / self.total

    @property
    def explicit_compare_fraction(self) -> float:
        """Fraction needing an explicit compare on a condition-code
        machine (paper: roughly 80%)."""
        if not self.total:
            return 0.0
        return 1.0 - self.cc_free / self.total


_SIGN_TESTS = {Opcode.BLT, Opcode.BGE}
_NEAR_SIGN_TESTS = {Opcode.BGT, Opcode.BLE}
_ALU_PRODUCER_WINDOW = 2  # how close a producer must be to reuse its codes


def classify_branches(name: str,
                      stats: Optional[BranchConditionStats] = None
                      ) -> BranchConditionStats:
    """Accumulate dynamic branch-condition statistics for one workload."""
    stats = stats or BranchConditionStats()
    collector = TraceCollector(fetches=False, data=False, branches=True)
    run_measured(name, trace=collector)
    result = profiled_result(name)
    program = result.unit.assemble()
    listing = program.listing
    for event in collector.branch_events:
        instr = listing.get(event.pc)
        if instr is None or not instr.is_branch:
            continue
        if instr.src1 == 0 and instr.src2 == 0:
            continue  # `br` pseudo-jump
        stats.total += 1
        if instr.opcode in (Opcode.BEQ, Opcode.BNE):
            stats.equality += 1
        elif instr.src2 == 0 or instr.src1 == 0:
            if instr.opcode in _SIGN_TESTS:
                stats.sign_test += 1
            else:
                stats.near_sign_test += 1
        else:
            stats.ordered_reg += 1
        if _condition_codes_free(listing, event.pc, instr):
            stats.cc_free += 1
    return stats


def _condition_codes_free(listing: Dict[int, Instruction], pc: int,
                          branch: Instruction) -> bool:
    """Would a CC machine have the codes already set for this branch?

    True when a compute instruction within the preceding couple of words
    writes the tested register and the branch compares it against zero --
    the case where the arithmetic op's condition codes suffice.
    """
    if branch.src2 != 0 and branch.src1 != 0:
        return False  # register-register compare always needs a compare op
    tested = branch.src1 if branch.src2 == 0 else branch.src2
    for distance in range(1, _ALU_PRODUCER_WINDOW + 1):
        producer = listing.get(pc - distance)
        if producer is None:
            break
        if producer.is_control:
            break
        if producer.writes_register() == tested:
            return (producer.opcode == Opcode.COMPUTE
                    or producer.opcode == Opcode.ADDI)
    return False


def suite_stats(names: Optional[Sequence[str]] = None) -> BranchConditionStats:
    """Aggregate branch-condition statistics over a workload suite."""
    names = list(names) if names is not None else (
        list(PASCAL_SUITE) + list(LISP_SUITE))
    stats = BranchConditionStats()
    for name in names:
        classify_branches(name, stats)
    return stats
