"""VAX 11/780 comparison (E13).

The paper: "Comparison of Pascal programs with a VAX 11/780 shows that
MIPS-X executes about 25% more instructions but executes the programs
about 14 times faster for unoptimized code.  The static code size for
MIPS-X is also about 25% greater than VAX code."  (Against the Berkeley
compiler the path length gap was 80% and the speedup 10x.)

Substitution: the 11/780 is modelled by an execution-driven cost model --
a tree-walking interpreter of the same SPL ASTs that counts VAX
instructions, cycles, and static bytes per construct.  The per-construct
costs below are calibrated to DEC-published 11/780 characteristics (a
5 MHz clock, multi-cycle microcoded instructions averaging roughly 10
cycles, memory-to-memory three-operand ALU forms, the famously expensive
CALLS/RET pair, and compact variable-length encodings averaging under 4
bytes per instruction).  The *shape* of the comparison -- VAX executes
fewer, fatter instructions; MIPS-X wins by roughly an order of magnitude
on wall clock -- is what this reproduces.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.datapath import to_signed, to_unsigned
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_program
from repro.lang.symbols import ProgramSymbols, analyze
from repro.workloads import PASCAL_SUITE, get

from repro.analysis.common import profiled_result, run_measured

VAX_CLOCK_MHZ = 5.0
MIPSX_CLOCK_MHZ = 20.0


@dataclasses.dataclass(frozen=True)
class VaxCost:
    """(instructions, cycles, static bytes) for one construct."""

    instructions: int
    cycles: int
    bytes: int


#: calibrated per-construct costs for the unoptimized-code comparison.
#: An unoptimized (pcc-style) VAX compiler loads operands into registers
#: with MOVLs and uses two-operand register ALU forms, so expression
#: evaluation charges an operand move per variable reference plus an ALU
#: instruction per operator.
COSTS: Dict[str, VaxCost] = {
    # MOVL mem, Rn -- operand load by the unoptimized compiler
    "operand_move": VaxCost(1, 5, 4),
    # two-operand register ALU: ADDL2/SUBL2/...
    "alu3": VaxCost(1, 4, 4),
    # multiply / divide are single (slow) instructions
    "mul": VaxCost(1, 15, 5),
    "div": VaxCost(1, 38, 5),
    "mod": VaxCost(2, 46, 9),         # EDIV or DIV+MUL+SUB sequence
    # MOVL for plain copies / stores back to memory
    "move": VaxCost(1, 5, 5),
    # CMPL + conditional branch
    "compare_branch": VaxCost(2, 8, 6),
    # unconditional BRB/JMP
    "jump": VaxCost(1, 4, 3),
    # the 11/780 procedure call pair (CALLS builds a full frame)
    "call": VaxCost(1, 40, 5),
    "ret": VaxCost(1, 22, 1),
    "push_arg": VaxCost(1, 5, 4),
    # AOBLEQ/SOBGEQ-style loop close (add, test and branch in one)
    "loop_close": VaxCost(1, 7, 4),
    # array indexing uses an index-mode operand: extra cycles, no instr
    "index_mode": VaxCost(0, 2, 2),
    # console write: MOVL to an I/O address
    "write": VaxCost(1, 7, 6),
}


class VaxRuntimeError(RuntimeError):
    pass


@dataclasses.dataclass
class VaxMeasurement:
    name: str
    instructions: int
    cycles: int
    static_bytes: int
    console: List[int]

    @property
    def seconds(self) -> float:
        return self.cycles / (VAX_CLOCK_MHZ * 1e6)


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class VaxEstimator:
    """Execution-driven VAX cost model: interpret the AST, count costs.

    Doubles as an independent reference implementation of SPL semantics
    (32-bit wraparound, truncating division) -- the tests exploit that.
    """

    def __init__(self, program: ast.Program,
                 symbols: Optional[ProgramSymbols] = None):
        self.program = program
        self.symbols = symbols or analyze(program)
        self.globals: Dict[str, object] = {}
        for decl in program.globals:
            if decl.size is not None:
                self.globals[decl.name] = [0] * decl.size
            else:
                self.globals[decl.name] = 0
        self.functions = {f.name: f for f in program.functions}
        self.console: List[int] = []
        self.instructions = 0
        self.cycles = 0
        self._step_budget = 50_000_000

    # ------------------------------------------------------------ charging
    def charge(self, kind: str) -> None:
        cost = COSTS[kind]
        self.instructions += cost.instructions
        self.cycles += cost.cycles
        self._step_budget -= 1
        if self._step_budget < 0:
            raise VaxRuntimeError("VAX model exceeded its step budget")

    # ------------------------------------------------------------- running
    def run(self) -> VaxMeasurement:
        self._exec_block(self.program.main, {})
        return VaxMeasurement(
            name=self.program.name,
            instructions=self.instructions,
            cycles=self.cycles,
            static_bytes=static_bytes(self.program),
            console=self.console,
        )

    # ----------------------------------------------------------- statements
    def _exec_block(self, block: ast.Block, frame: Dict[str, object]) -> None:
        for stmt in block.body:
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt: ast.Stmt, frame) -> None:  # noqa: C901
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, frame)
            # a three-operand ALU form writes the destination directly; a
            # plain value needs a MOVL
            if not isinstance(stmt.value, ast.Binary):
                self.charge("move")
            if isinstance(stmt.target, ast.Index):
                self.charge("index_mode")
                index = self._eval_operand(stmt.target.index, frame)
                self._array(stmt.target.name, frame)[index] = value
            else:
                self._store(stmt.target.name, value, frame)
        elif isinstance(stmt, ast.If):
            self.charge("compare_branch")
            if self._truth(stmt.condition, frame):
                self._exec_stmt(stmt.then_body, frame)
            elif stmt.else_body is not None:
                self.charge("jump")
                self._exec_stmt(stmt.else_body, frame)
        elif isinstance(stmt, ast.While):
            while True:
                self.charge("compare_branch")
                if not self._truth(stmt.condition, frame):
                    break
                self._exec_stmt(stmt.body, frame)
                self.charge("jump")
        elif isinstance(stmt, ast.For):
            start = self._eval(stmt.start, frame)
            self.charge("move")
            self._store(stmt.variable, start, frame)
            while True:
                stop = self._eval_operand(stmt.stop, frame)
                current = self._load(stmt.variable, frame)
                done = current < stop if stmt.down else current > stop
                self.charge("loop_close")
                if done:
                    break
                self._exec_stmt(stmt.body, frame)
                step = -1 if stmt.down else 1
                self._store(stmt.variable,
                            to_signed(to_unsigned(current + step)), frame)
        elif isinstance(stmt, ast.Repeat):
            while True:
                for inner in stmt.body:
                    self._exec_stmt(inner, frame)
                self.charge("compare_branch")
                if self._truth(stmt.condition, frame):
                    break
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, frame) if stmt.value else 0
            raise _Return(value)
        elif isinstance(stmt, ast.Write):
            self.charge("write")
            self.console.append(self._eval(stmt.value, frame))
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        else:  # pragma: no cover
            raise VaxRuntimeError(f"unknown statement {stmt!r}")

    # ---------------------------------------------------------- expressions
    def _truth(self, expr: ast.Expr, frame) -> bool:
        # the compare is charged by the caller (compare_branch)
        return self._eval_raw(expr, frame) != 0

    def _eval(self, expr: ast.Expr, frame) -> int:
        return self._eval_raw(expr, frame)

    def _eval_operand(self, expr: ast.Expr, frame) -> int:
        """Operands that fold into an addressing mode (no extra charge for
        literals and scalars)."""
        return self._eval_raw(expr, frame, operand_position=True)

    def _eval_raw(self, expr, frame, operand_position=False):  # noqa: C901
        if isinstance(expr, ast.Number):
            return to_signed(to_unsigned(expr.value))
        if isinstance(expr, ast.Name):
            if not operand_position:
                self.charge("operand_move")
            return self._load(expr.name, frame)
        if isinstance(expr, ast.Index):
            if not operand_position:
                self.charge("operand_move")
            self.charge("index_mode")
            index = self._eval_operand(expr.index, frame)
            array = self._array(expr.name, frame)
            if not 0 <= index < len(array):
                raise VaxRuntimeError(
                    f"index {index} out of bounds for {expr.name}")
            return array[index]
        if isinstance(expr, ast.Unary):
            value = self._eval_raw(expr.operand, frame)
            self.charge("alu3")
            if expr.op == "-":
                return to_signed(to_unsigned(-value))
            return 0 if value else 1
        if isinstance(expr, ast.Binary):
            return self._binary(expr, frame)
        if isinstance(expr, ast.Call):
            return self._call(expr, frame)
        raise VaxRuntimeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _binary(self, expr: ast.Binary, frame) -> int:
        op = expr.op
        if op == "and":
            self.charge("compare_branch")
            if self._eval_raw(expr.left, frame) == 0:
                return 0
            self.charge("compare_branch")
            return 1 if self._eval_raw(expr.right, frame) != 0 else 0
        if op == "or":
            self.charge("compare_branch")
            if self._eval_raw(expr.left, frame) != 0:
                return 1
            self.charge("compare_branch")
            return 1 if self._eval_raw(expr.right, frame) != 0 else 0
        left = self._eval_raw(expr.left, frame)
        right = self._eval_raw(expr.right, frame)
        if op == "+":
            self.charge("alu3")
            return to_signed(to_unsigned(left + right))
        if op == "-":
            self.charge("alu3")
            return to_signed(to_unsigned(left - right))
        if op == "*":
            self.charge("mul")
            return to_signed(to_unsigned(left * right))
        if op == "div":
            self.charge("div")
            return 0 if right == 0 else to_signed(to_unsigned(
                int(left / right)))
        if op == "mod":
            self.charge("mod")
            if right == 0:
                return left
            return to_signed(to_unsigned(left - int(left / right) * right))
        self.charge("compare_branch")
        return 1 if {
            "=": left == right, "<>": left != right, "<": left < right,
            "<=": left <= right, ">": left > right, ">=": left >= right,
        }[expr.op] else 0

    def _call(self, expr: ast.Call, frame) -> int:
        func = self.functions[expr.name]
        values = []
        for arg in expr.args:
            values.append(self._eval_raw(arg, frame))
            self.charge("push_arg")
        self.charge("call")
        new_frame: Dict[str, object] = {}
        for param, value in zip(func.params, values):
            new_frame[param] = value
        for decl in func.locals:
            new_frame[decl.name] = ([0] * decl.size
                                    if decl.size is not None else 0)
        try:
            self._exec_block(func.body, new_frame)
            result = 0
        except _Return as ret:
            result = ret.value
        self.charge("ret")
        return result

    # ------------------------------------------------------------- storage
    def _load(self, name: str, frame) -> int:
        if name in frame:
            return frame[name]
        return self.globals[name]

    def _store(self, name: str, value: int, frame) -> None:
        value = to_signed(to_unsigned(value))
        if name in frame:
            frame[name] = value
        else:
            self.globals[name] = value

    def _array(self, name: str, frame):
        if name in frame:
            return frame[name]
        return self.globals[name]


def static_bytes(program: ast.Program) -> int:
    """Static VAX code size: walk the AST charging bytes per construct."""
    total = 0

    def expr_bytes(expr) -> int:
        if isinstance(expr, ast.Number):
            return 0
        if isinstance(expr, ast.Name):
            return COSTS["operand_move"].bytes
        if isinstance(expr, ast.Index):
            return (COSTS["operand_move"].bytes + COSTS["index_mode"].bytes
                    + expr_bytes(expr.index))
        if isinstance(expr, ast.Unary):
            return COSTS["alu3"].bytes + expr_bytes(expr.operand)
        if isinstance(expr, ast.Binary):
            kind = {"*": "mul", "div": "div", "mod": "mod"}.get(
                expr.op, "alu3" if expr.op in "+-" else "compare_branch")
            return (COSTS[kind].bytes + expr_bytes(expr.left)
                    + expr_bytes(expr.right))
        if isinstance(expr, ast.Call):
            return (COSTS["call"].bytes
                    + sum(COSTS["push_arg"].bytes + expr_bytes(a)
                          for a in expr.args))
        return 0

    def stmt_bytes(stmt) -> int:
        if isinstance(stmt, ast.Block):
            return sum(stmt_bytes(s) for s in stmt.body)
        if isinstance(stmt, ast.Assign):
            extra = 0 if isinstance(stmt.value, ast.Binary) else \
                COSTS["move"].bytes
            target = (COSTS["index_mode"].bytes
                      if isinstance(stmt.target, ast.Index) else 0)
            return extra + target + expr_bytes(stmt.value)
        if isinstance(stmt, ast.If):
            total = COSTS["compare_branch"].bytes + expr_bytes(stmt.condition)
            total += stmt_bytes(stmt.then_body)
            if stmt.else_body is not None:
                total += COSTS["jump"].bytes + stmt_bytes(stmt.else_body)
            return total
        if isinstance(stmt, ast.While):
            return (COSTS["compare_branch"].bytes + COSTS["jump"].bytes
                    + expr_bytes(stmt.condition) + stmt_bytes(stmt.body))
        if isinstance(stmt, ast.For):
            return (COSTS["move"].bytes + COSTS["loop_close"].bytes
                    + expr_bytes(stmt.start) + expr_bytes(stmt.stop)
                    + stmt_bytes(stmt.body))
        if isinstance(stmt, ast.Repeat):
            return (COSTS["compare_branch"].bytes
                    + expr_bytes(stmt.condition)
                    + sum(stmt_bytes(s) for s in stmt.body))
        if isinstance(stmt, ast.Return):
            return COSTS["ret"].bytes + (
                expr_bytes(stmt.value) if stmt.value else 0)
        if isinstance(stmt, ast.Write):
            return COSTS["write"].bytes + expr_bytes(stmt.value)
        if isinstance(stmt, ast.ExprStmt):
            return expr_bytes(stmt.expr)
        return 0

    total += stmt_bytes(program.main)
    for func in program.functions:
        total += COSTS["ret"].bytes + 4  # entry mask + return
        total += stmt_bytes(func.body)
    return total


# ------------------------------------------------------------- comparison
@dataclasses.dataclass
class Comparison:
    name: str
    vax: VaxMeasurement
    mipsx_instructions: int
    mipsx_cycles: int
    mipsx_code_bytes: int

    @property
    def path_length_ratio(self) -> float:
        """MIPS-X dynamic instructions / VAX dynamic instructions."""
        return self.mipsx_instructions / self.vax.instructions

    @property
    def speedup(self) -> float:
        """Wall-clock speedup of MIPS-X (20 MHz) over the VAX (5 MHz)."""
        mipsx_seconds = self.mipsx_cycles / (MIPSX_CLOCK_MHZ * 1e6)
        return self.vax.seconds / mipsx_seconds

    @property
    def code_size_ratio(self) -> float:
        return self.mipsx_code_bytes / self.vax.static_bytes


def compare_workload(name: str) -> Comparison:
    """MIPS-X (full machine) vs the VAX model on one Pascal workload."""
    workload = get(name)
    if workload.is_assembly:
        raise ValueError("the VAX comparison needs an SPL workload")
    tree = parse_program(workload.source)
    vax = VaxEstimator(tree).run()
    machine = run_measured(name)
    program = profiled_result(name).unit.assemble()
    comparison = Comparison(
        name=name,
        vax=vax,
        mipsx_instructions=machine.stats.retired,
        mipsx_cycles=machine.stats.cycles,
        mipsx_code_bytes=program.code_size * 4,
    )
    if vax.console != machine.console.values:
        raise VaxRuntimeError(
            f"VAX model and MIPS-X disagree on {name}: "
            f"{vax.console} vs {machine.console.values}")
    return comparison


def compare_suite(names: Optional[Sequence[str]] = None) -> List[Comparison]:
    names = list(names) if names is not None else list(PASCAL_SUITE)
    return [compare_workload(name) for name in names]
