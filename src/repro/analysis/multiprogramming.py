"""Multiprogramming / task-switch effects on the instruction cache.

The paper derived its external-cache effects from Smith's methodology
(*Cache Memories*, reference [15]), whose trace-driven studies switch
between program traces every Q references to model multiprogramming.
The same sweep on our Icache reproduces the survey's three regimes:

* very small Q -- processes time-share the cache finely enough that each
  finds some of its working set still resident when it resumes;
* intermediate Q -- the worst case: a process runs long enough for the
  others to evict it, but not long enough to amortize reloading;
* very large Q -- the reload cost amortizes over a long run, so the miss
  ratio approaches the single-program (warm) value.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.config import IcacheConfig
from repro.icache.cache import Icache
from repro.traces.capture import TraceCollector
from repro.traces.synthetic import combined_fetch_trace


@dataclasses.dataclass
class QuantumPoint:
    quantum: int
    miss_ratio: float
    cold_misses: int    #: misses in the first pass over each program


def collect_workload_traces(names: Sequence[str]) -> List[List[int]]:
    """Fetch traces for a set of workloads (one pipeline run each)."""
    from repro.analysis.common import run_measured

    traces = []
    for name in names:
        collector = TraceCollector(fetches=True, data=False, branches=False)
        run_measured(name, trace=collector)
        traces.append(collector.fetch_trace)
    return traces


def quantum_sweep(traces: List[List[int]],
                  quanta: Sequence[int] = (250, 1000, 4000, 16000, 64000),
                  config: Optional[IcacheConfig] = None
                  ) -> List[QuantumPoint]:
    """Miss ratio of the combined trace as a function of the switch
    quantum Q (Smith's Figures 23/24 methodology)."""
    points = []
    for quantum in quanta:
        combined = combined_fetch_trace(traces, quantum=quantum)
        cache = Icache(config or IcacheConfig())
        cache.simulate_trace(combined)
        points.append(QuantumPoint(
            quantum=quantum,
            miss_ratio=cache.stats.miss_rate,
            cold_misses=cache.stats.tag_allocations,
        ))
    return points


def warm_miss_ratio(traces: List[List[int]],
                    config: Optional[IcacheConfig] = None) -> float:
    """Single-program (no switching) aggregate miss ratio: the floor the
    large-Q regime approaches."""
    accesses = 0
    misses = 0
    for trace in traces:
        cache = Icache(config or IcacheConfig())
        cache.simulate_trace(trace)
        accesses += cache.stats.accesses
        misses += cache.stats.misses
    return misses / accesses if accesses else 0.0
