"""Export cycle traces as Chrome/Perfetto ``trace_event`` JSON.

The output is the classic ``traceEvents`` JSON accepted by
``ui.perfetto.dev`` and ``chrome://tracing``: one process (the MIPS-X
core), one thread per pipestage of Figure 1 (IF, RF, ALU, MEM, WB), so
the staircase of instructions moving down the pipe -- and the plateaus
where a stall freezes it -- reads directly off the timeline.

Timebase: **1 clock cycle = 1 microsecond** of trace time (``ts``/
``dur`` are in µs per the trace_event spec).  At the paper's 20 MHz
clock a real cycle is 50 ns; the 20x inflation is deliberate so cycle
boundaries stay legible at default zoom.

Track layout (``pid`` 1 for a single core; a multiprocessor export
uses one pid per node, ``pid = node index + 1``):

====  ======================  =========================================
tid   track                   contents
====  ======================  =========================================
1-5   IF, RF, ALU, MEM, WB    one ``X`` slice per instruction per stage
6     Icache miss stall       ``X`` slices, one per miss-service span
7     Ecache late-miss stall  ``X`` slices, one per late-miss span
8     events                  ``i`` instants: branch squashes,
                              exceptions
9     Bus wait                ``X`` slices, one per bus-contention
                              episode (multiprocessor traces only)
10    Translated blocks       ``X`` slices, one per translated-block
                              activation (jit span exports only)
====  ======================  =========================================

The *Translated blocks* track comes from
:attr:`~repro.core.translate.Translator.spans` rather than the cycle
tracer: an attached tracer forces the interpretive path (translated
closures do not drive per-stage hooks), so block-activation spans are
recorded on un-traced jit runs and exported separately via
:func:`write_jit_trace`.

:func:`validate_trace_events` is the schema gate the tests and the
``repro trace`` CLI run before writing anything to disk.
:func:`multi_trace_events` renders one
:class:`~repro.telemetry.tracer.CycleTracer` per node of a
:class:`~repro.multi.system.MultiMachine` into a single payload so
cross-node stall interleaving is visible on one timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.telemetry.tracer import STAGES, CycleTracer

#: pid for the single simulated core
CORE_PID = 1
#: tid of the first pipestage track (IF); stage k maps to tid k+1
STAGE_TID_BASE = 1
#: tids for the stall tracks and the instant-event track
STALL_TIDS = {"icache_miss": 6, "ecache_late_miss": 7, "bus_wait": 9}
EVENT_TID = 8
#: tid of the translated-block activation track (jit span exports)
TRANSLATE_TID = 10

#: display names for the stall tracks
_STALL_TRACK_NAMES = {"icache_miss": "Icache miss stall",
                      "ecache_late_miss": "Ecache late-miss stall",
                      "bus_wait": "Bus wait"}


def _metadata_events(pid: int, process_name: str,
                     bus_track: bool = False) -> List[Dict[str, Any]]:
    """Process/thread-name ``M`` events that label one process's tracks."""
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "ts": 0, "args": {"name": process_name},
    }]
    names = {STAGE_TID_BASE + k: f"{k + 1}. {stage}"
             for k, stage in enumerate(STAGES)}
    names[STALL_TIDS["icache_miss"]] = _STALL_TRACK_NAMES["icache_miss"]
    names[STALL_TIDS["ecache_late_miss"]] = (
        _STALL_TRACK_NAMES["ecache_late_miss"])
    names[EVENT_TID] = "events"
    if bus_track:
        names[STALL_TIDS["bus_wait"]] = _STALL_TRACK_NAMES["bus_wait"]
    for tid, name in sorted(names.items()):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "ts": 0, "args": {"name": name}})
    return events


def _tracer_events(tracer: CycleTracer, pid: int) -> List[Dict[str, Any]]:
    """One tracer's ring buffers as ``X``/``i`` events under ``pid``."""
    events: List[Dict[str, Any]] = []
    for record in tracer.records:
        label = record.text
        if record.squashed:
            label += " (squashed)"
        for stage, span in enumerate(record.spans):
            if span is None:
                continue
            start, end = span
            events.append({
                "name": label, "ph": "X", "cat": "pipeline",
                "pid": pid, "tid": STAGE_TID_BASE + stage,
                "ts": start, "dur": end - start + 1,
                "args": {"pc": f"{record.pc:#x}", "stage": STAGES[stage],
                         "squashed": record.squashed},
            })
    for kind, start, end in tracer.stall_spans:
        events.append({
            "name": _STALL_TRACK_NAMES[kind], "ph": "X", "cat": "stall",
            "pid": pid, "tid": STALL_TIDS[kind],
            "ts": start, "dur": end - start + 1,
            "args": {"cycles": end - start + 1},
        })
    for cycle, name, args in tracer.instants:
        events.append({
            "name": name, "ph": "i", "cat": "event", "s": "t",
            "pid": pid, "tid": EVENT_TID, "ts": cycle,
            "args": dict(args),
        })
    return events


def trace_events(tracer: CycleTracer) -> Dict[str, Any]:
    """Render a :class:`CycleTracer`'s ring buffers as trace JSON.

    Returns the ``{"traceEvents": [...]}`` payload;
    :func:`write_trace` serialises it, :func:`validate_trace_events`
    schema-checks it.
    """
    has_bus = any(kind == "bus_wait" for kind, _, _ in tracer.stall_spans)
    events = _metadata_events(CORE_PID, "MIPS-X core", bus_track=has_bus)
    events.extend(_tracer_events(tracer, CORE_PID))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "1 us = 1 cycle",
                      "source": "repro.telemetry.perfetto"},
    }


def multi_trace_events(tracers: Iterable[CycleTracer]) -> Dict[str, Any]:
    """Render per-node tracers as one payload, one pid per node.

    ``tracers[k]`` becomes process ``pid = k + 1`` named ``node k``;
    every node carries the full track layout including the bus-wait
    track, so cross-node stall interleaving (one node's Ecache miss
    freezing its neighbours on the bus) lines up on a shared timeline.
    """
    events: List[Dict[str, Any]] = []
    for index, tracer in enumerate(tracers):
        pid = index + 1
        events.extend(_metadata_events(pid, f"node {index}",
                                       bus_track=True))
        events.extend(_tracer_events(tracer, pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "1 us = 1 global cycle",
                      "source": "repro.telemetry.perfetto"},
    }


def translate_span_events(spans: Iterable[Dict[str, Any]],
                          pid: int = CORE_PID) -> List[Dict[str, Any]]:
    """Translator activation spans as ``X`` slices on the jit track.

    Each span dict (``head``/``n``/``start_cycle``/``end_cycle``/
    ``cycles``, as recorded by ``Translator.record_spans``) becomes one
    slice covering the machine cycles the closure executed.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        start = span["start_cycle"]
        events.append({
            "name": f"block {span['head']:#x}", "ph": "X",
            "cat": "translate", "pid": pid, "tid": TRANSLATE_TID,
            "ts": start, "dur": max(span["end_cycle"] - start, 1),
            "args": {"head": f"{span['head']:#x}",
                     "words": span["n"], "cycles": span["cycles"]},
        })
    return events


def jit_trace_events(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Render translated-block activation spans as a trace payload.

    A jit-only companion to :func:`trace_events`: process metadata plus
    the *Translated blocks* track, on the same cycle timebase, so a jit
    run's block coverage can be eyeballed on the Perfetto timeline.
    """
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": CORE_PID, "tid": 0,
         "ts": 0, "args": {"name": "MIPS-X core"}},
        {"name": "thread_name", "ph": "M", "pid": CORE_PID,
         "tid": TRANSLATE_TID, "ts": 0,
         "args": {"name": "Translated blocks"}},
    ]
    events.extend(translate_span_events(spans))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "1 us = 1 cycle",
                      "source": "repro.telemetry.perfetto"},
    }


def write_jit_trace(path, spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Validate and write a translated-block span trace to ``path``.

    Same schema gate as :func:`write_trace`; returns the payload.
    """
    payload = jit_trace_events(spans)
    problems = validate_trace_events(payload)
    if problems:
        raise ValueError("invalid trace payload: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def validate_trace_events(payload: Any) -> List[str]:
    """Schema-check a trace payload; returns problems ([] = valid).

    Enforces the subset of the trace_event format the exporter uses:
    a ``traceEvents`` list whose members carry ``name``/``ph``/``pid``/
    ``tid``/``ts``, with ``dur >= 0`` on complete (``X``) slices and a
    scope field on instants (``i``).
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected dict"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")
    for k, event in enumerate(events):
        where = f"traceEvents[{k}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                problems.append(f"{where} missing {field!r}")
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            problems.append(f"{where} has unexpected ph {phase!r}")
        for field in ("ts", "dur"):
            value = event.get(field)
            if value is not None and (not isinstance(value, (int, float))
                                      or value < 0):
                problems.append(f"{where} has bad {field}: {value!r}")
        if phase == "X" and "dur" not in event:
            problems.append(f"{where} is a complete slice without dur")
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"{where} instant has bad scope "
                            f"{event.get('s')!r}")
    return problems


def write_trace(path, tracer: CycleTracer) -> Dict[str, Any]:
    """Validate and write the trace JSON for ``tracer`` to ``path``.

    Raises ``ValueError`` listing the problems if the payload fails
    :func:`validate_trace_events`; returns the payload on success.
    """
    payload = trace_events(tracer)
    problems = validate_trace_events(payload)
    if problems:
        raise ValueError("invalid trace payload: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def write_multi_trace(path, tracers: Iterable[CycleTracer]) -> Dict[str, Any]:
    """Validate and write a per-node multiprocessor trace to ``path``.

    The multiprocessor analogue of :func:`write_trace`: same schema
    gate, one pid per node (see :func:`multi_trace_events`).
    """
    payload = multi_trace_events(tracers)
    problems = validate_trace_events(payload)
    if problems:
        raise ValueError("invalid trace payload: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload
