"""Ring-buffer cycle tracer: instruction lifecycles and stall spans.

The tracer records, per instruction in flight, the cycle span it spent
in each of the five pipestages of Figure 1 (IF, RF, ALU, MEM, WB), plus
spans for every Icache-miss and Ecache-late-miss stall and instant
events for squashing branches and exceptions.  The result exports to
Chrome/Perfetto ``trace_event`` JSON (:mod:`repro.telemetry.perfetto`)
so a run can be opened in ``ui.perfetto.dev`` and read directly off the
timeline.

Attachment pattern (the same deal the fault injector gets): tracing is
**opt-in and external**.  The tracer drives the pipeline one
:meth:`~repro.core.pipeline.Pipeline.cycle` at a time and observes the
architectural stage latches (``pipeline.s``) between cycles; a machine
with no tracer attached executes exactly the code it always did --
including the bulk-stall fast path -- at zero added cost.  Tracing
therefore trades the fast path for observability, which is the right
trade for the bounded windows it is used on (the ring buffer keeps the
last ``capacity`` instructions).

The tracer is architecturally invisible: a traced run retires the same
instructions, in the same cycles, with the same
:class:`~repro.core.pipeline.PipelineStats`, as an untraced run
(pinned by ``tests/test_telemetry.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.pipeline import TraceSink
from repro.telemetry.metrics import Metrics

#: stage names, in pipeline order (Figure 1)
STAGES = ("IF", "RF", "ALU", "MEM", "WB")

#: stall span kinds -> the histogram metric each feeds
STALL_KINDS = {
    "icache_miss": "pipeline.stall.icache_miss.length",
    "ecache_late_miss": "pipeline.stall.ecache_late_miss.length",
    "bus_wait": "multi.bus.wait.length",
}


class FlightTrace:
    """The recorded lifecycle of one instruction through the pipe."""

    __slots__ = ("pc", "text", "squashed", "spans")

    def __init__(self, pc: int, text: str):
        """Start a lifecycle record for the instruction at ``pc``."""
        self.pc = pc
        self.text = text
        self.squashed = False
        #: per-stage inclusive [start, end] cycle spans (None = skipped)
        self.spans: List[Optional[List[int]]] = [None] * len(STAGES)

    @property
    def first_cycle(self) -> Optional[int]:
        """First cycle this instruction occupied any stage."""
        for span in self.spans:
            if span is not None:
                return span[0]
        return None

    @property
    def last_cycle(self) -> Optional[int]:
        """Last cycle this instruction occupied any stage."""
        for span in reversed(self.spans):
            if span is not None:
                return span[1]
        return None

    @property
    def lifetime(self) -> int:
        """Cycles from first stage entry to last stage exit, inclusive."""
        first, last = self.first_cycle, self.last_cycle
        if first is None or last is None:
            return 0
        return last - first + 1

    def __repr__(self) -> str:
        """Debug form: pc, text, and the per-stage spans."""
        mark = " squashed" if self.squashed else ""
        return f"<FlightTrace {self.pc:#x} {self.text}{mark} {self.spans}>"


class _ChainingSink(TraceSink):
    """Captures branch/exception instants; forwards to a prior sink."""

    def __init__(self, tracer: "CycleTracer",
                 previous: Optional[TraceSink]):
        self._tracer = tracer
        self._previous = previous

    def on_fetch(self, pc: int) -> None:
        """Forward the fetch event to the chained sink."""
        if self._previous is not None:
            self._previous.on_fetch(pc)

    def on_retire(self, pc, instr, squashed) -> None:
        """Forward the retire event to the chained sink."""
        if self._previous is not None:
            self._previous.on_retire(pc, instr, squashed)

    def on_branch(self, pc, instr, taken, target) -> None:
        """Record a squash instant on wrong-way squashing branches."""
        if instr.squash and not taken:
            self._tracer._instant("branch squash",
                                  {"pc": f"{pc:#x}",
                                   "target": f"{target:#x}"})
        if self._previous is not None:
            self._previous.on_branch(pc, instr, taken, target)

    def on_data(self, pc, address, is_store) -> None:
        """Forward the data-reference event to the chained sink."""
        if self._previous is not None:
            self._previous.on_data(pc, address, is_store)

    def on_ecache(self, kind, address) -> None:
        """Forward the external-cache event to the chained sink."""
        if self._previous is not None:
            self._previous.on_ecache(kind, address)

    def on_exception(self, cause: str) -> None:
        """Record an exception instant, then forward."""
        self._tracer._instant(f"exception {cause}", {"cause": cause})
        if self._previous is not None:
            self._previous.on_exception(cause)


class CycleTracer:
    """Drives a machine cycle-by-cycle, recording lifecycle spans.

    ``capacity`` bounds all three ring buffers (retired instruction
    records, stall spans, instant events); the most recent entries win,
    so tracing an arbitrarily long run keeps memory bounded.

    Pass a :class:`~repro.telemetry.metrics.Metrics` registry to also
    feed the stall-length and instruction-lifetime histograms.
    """

    def __init__(self, machine, capacity: int = 65536,
                 metrics: Optional[Metrics] = None):
        """Attach to ``machine``; chains any already-installed sink."""
        self.machine = machine
        self.capacity = capacity
        self.metrics = metrics
        self.records: Deque[FlightTrace] = deque(maxlen=capacity)
        #: (kind, start_cycle, end_cycle) inclusive stall spans
        self.stall_spans: Deque[Tuple[str, int, int]] = deque(maxlen=capacity)
        #: (cycle, name, args) point events (squashes, exceptions)
        self.instants: Deque[Tuple[int, str, Dict[str, str]]] = deque(
            maxlen=capacity)
        self._live: Dict[int, FlightTrace] = {}
        self._live_flights: Dict[int, object] = {}
        self._open_stall: Optional[List] = None  # [kind, start, end]
        pipeline = machine.pipeline
        self._sink = _ChainingSink(self, pipeline.trace)
        pipeline.trace = self._sink

    # ------------------------------------------------------------- driving
    def step(self, cycles: int = 1) -> None:
        """Advance the machine ``cycles`` clock cycles, recording each."""
        pipeline = self.machine.pipeline
        for _ in range(cycles):
            if pipeline.halted:
                break
            before = self.begin_cycle()
            pipeline.cycle()
            self.end_cycle(before)

    def begin_cycle(self) -> Tuple[int, int]:
        """Snapshot the stall counters before an externally-driven cycle.

        For drivers that own the clock (``MultiMachine``): call this,
        execute exactly one ``pipeline.cycle()`` (or ``machine.step()``)
        yourself, then hand the returned snapshot to :meth:`end_cycle`.
        """
        stats = self.machine.pipeline.stats
        return (stats.icache_stall_cycles, stats.data_stall_cycles)

    def end_cycle(self, before: Tuple[int, int]) -> None:
        """Classify and record the cycle an external driver just ran."""
        pipeline = self.machine.pipeline
        stats = pipeline.stats
        cycle = stats.cycles
        icache_stalls, data_stalls = before
        if stats.icache_stall_cycles != icache_stalls:
            self._stall_cycle("icache_miss", cycle)
        elif stats.data_stall_cycles != data_stalls:
            self._stall_cycle("ecache_late_miss", cycle)
        else:
            self._close_stall()
        self._observe_stages(pipeline, cycle)

    def observe_wait(self, cycle: int) -> None:
        """Record one bus-wait cycle (node frozen on a contended bus)."""
        self._stall_cycle("bus_wait", cycle)

    def run(self, max_cycles: int = 10_000_000):
        """Run to halt (or ``max_cycles``), then finalize open spans.

        Returns the machine's :class:`~repro.core.pipeline.PipelineStats`
        -- the same object an untraced ``machine.run()`` returns.
        """
        pipeline = self.machine.pipeline
        while not pipeline.halted and pipeline.stats.cycles < max_cycles:
            self.step()
        self.finalize()
        return pipeline.stats

    def finalize(self) -> None:
        """Close open stall spans and flush still-in-flight records."""
        self._close_stall()
        for key in list(self._live):
            self._retire(key)

    # ----------------------------------------------------------- recording
    def _observe_stages(self, pipeline, cycle: int) -> None:
        current = pipeline.s
        seen = set()
        for stage, flight in enumerate(current):
            if flight is None:
                continue
            key = id(flight)
            seen.add(key)
            record = self._live.get(key)
            if record is None:
                record = FlightTrace(flight.pc, str(flight.instr))
                self._live[key] = record
                # hold the flight so ids stay unique while live
                self._live_flights[key] = flight
            record.squashed = flight.squashed
            span = record.spans[stage]
            if span is None:
                record.spans[stage] = [cycle, cycle]
            else:
                span[1] = cycle
        for key in [k for k in self._live if k not in seen]:
            self._retire(key)

    def _retire(self, key: int) -> None:
        record = self._live.pop(key)
        self._live_flights.pop(key, None)
        self.records.append(record)
        if self.metrics is not None and record.lifetime:
            self.metrics.histogram(
                "pipeline.instruction.lifetime").observe(record.lifetime)

    def _stall_cycle(self, kind: str, cycle: int) -> None:
        if self._open_stall is not None and self._open_stall[0] == kind:
            self._open_stall[2] = cycle
        else:
            self._close_stall()
            self._open_stall = [kind, cycle, cycle]

    def _close_stall(self) -> None:
        if self._open_stall is None:
            return
        kind, start, end = self._open_stall
        self._open_stall = None
        self.stall_spans.append((kind, start, end))
        if self.metrics is not None:
            self.metrics.histogram(STALL_KINDS[kind]).observe(
                end - start + 1)

    def _instant(self, name: str, args: Dict[str, str]) -> None:
        self.instants.append(
            (self.machine.pipeline.stats.cycles, name, args))
