"""The metric name catalog: every telemetry name the machine reports.

One :class:`MetricSpec` per counter/gauge/histogram, carrying the unit,
a one-line description, and the paper table or claim the metric feeds
(experiment ids match EXPERIMENTS.md / DESIGN.md).  The catalog is the
contract between the machine components and every consumer:

* :func:`repro.telemetry.metrics.collect_machine` emits **only**
  catalogued names (pinned by ``tests/test_telemetry.py``);
* ``docs/OBSERVABILITY.md`` documents **every** catalogued name (pinned
  by ``tests/test_docs.py``);
* ``tools/check_results.py --metrics-file`` validates counter
  consistency using the catalogued names.

Names are hierarchical, dot-separated, ``component.noun[.qualifier]``:
``pipeline.stall.icache_miss``, ``ecache.late_miss.retries``.  A name
never changes meaning; retire a name rather than repurposing it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

#: metric kinds a :class:`MetricSpec` may declare
KINDS = ("counter", "gauge", "histogram")


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: name, kind, unit, and provenance."""

    name: str          #: hierarchical dotted name (the registry key)
    kind: str          #: "counter" | "gauge" | "histogram"
    unit: str          #: "cycles", "instructions", "events", "ratio", ...
    description: str   #: one line; shown in docs/OBSERVABILITY.md
    paper: str         #: experiment id / claim this metric feeds

    def __post_init__(self) -> None:
        """Validate the kind and name shape at construction time."""
        if self.kind not in KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if not all(part.isidentifier() for part in self.name.split(".")):
            raise ValueError(f"malformed metric name {self.name!r}")


#: every metric the machine components report, in catalog order
CATALOG: Tuple[MetricSpec, ...] = (
    # ------------------------------------------------------------ pipeline
    MetricSpec("pipeline.cycles", "counter", "cycles",
               "Total clock cycles, including stall cycles.",
               "E7 (CPI ~1.7)"),
    MetricSpec("pipeline.instructions.fetched", "counter", "instructions",
               "Instruction words fetched into IF (includes later-squashed "
               "slots).", "E11 (bandwidth)"),
    MetricSpec("pipeline.instructions.retired", "counter", "instructions",
               "Instructions completing WB, no-ops included -- the paper's "
               "executed-instruction count and the CPI denominator.",
               "E6/E7"),
    MetricSpec("pipeline.instructions.squashed", "counter", "instructions",
               "In-flight instructions converted to no-ops by a squashing "
               "branch or an exception.", "E1 (Table 1)"),
    MetricSpec("pipeline.instructions.noops", "counter", "instructions",
               "Retired architectural no-ops (unfilled delay slots and "
               "interlock padding).", "E6 (15.6%/18.3%)"),
    MetricSpec("pipeline.branch.executed", "counter", "events",
               "Conditional branches reaching their resolution stage "
               "un-squashed.", "E1/E8"),
    MetricSpec("pipeline.branch.taken", "counter", "events",
               "Conditional branches that redirected the PC.", "E8"),
    MetricSpec("pipeline.branch.squashes", "counter", "events",
               "Squashing branches that went the wrong way and annulled "
               "their delay slots.", "E1 (Table 1)"),
    MetricSpec("pipeline.jumps", "counter", "events",
               "Unconditional control transfers (jspci, jpc, jpcrs).",
               "E8"),
    MetricSpec("pipeline.mem.loads", "counter", "events",
               "Data loads completing MEM (ld, ldf, movfrc).",
               "E11 (~1/3 data refs)"),
    MetricSpec("pipeline.mem.stores", "counter", "events",
               "Data stores completing MEM (st, stf, movtoc).",
               "E11 (~1/3 data refs)"),
    MetricSpec("pipeline.coproc.ops", "counter", "events",
               "Coprocessor operations issued over the address-line "
               "interface.", "E12"),
    MetricSpec("pipeline.exceptions.taken", "counter", "events",
               "Synchronous exceptions taken (overflow, trap, privilege, "
               "page fault).", "E14"),
    MetricSpec("pipeline.interrupts.taken", "counter", "events",
               "Asynchronous interrupts/NMIs delivered through the "
               "exception machinery.", "E14"),
    MetricSpec("pipeline.page_faults", "counter", "events",
               "Data page faults fielded by the demand pager.",
               "E18 (restartability)"),
    MetricSpec("pipeline.stall.icache_miss", "counter", "cycles",
               "Cycles the qualified w1 clock was withheld for Icache miss "
               "service (the miss FSM of Figure 4).", "E4/E5"),
    MetricSpec("pipeline.stall.ecache_late_miss", "counter", "cycles",
               "Cycles stalled re-executing phase 2 of MEM under the "
               "Ecache late-miss protocol.", "E15"),
    # -------------------------------------------------------------- icache
    MetricSpec("icache.accesses", "counter", "events",
               "Instruction fetch probes of the on-chip cache.", "E4"),
    MetricSpec("icache.misses", "counter", "events",
               "Probes that missed (tag or sub-block valid bit).", "E4"),
    MetricSpec("icache.words_filled", "counter", "events",
               "Words written into the cache by miss fills, fetch-back "
               "included.", "E4 (2-word fetch-back)"),
    MetricSpec("icache.tag_allocations", "counter", "events",
               "Misses that displaced a tag (replacement events).",
               "E16 (replacement ablation)"),
    # -------------------------------------------------------------- ecache
    MetricSpec("ecache.reads", "counter", "events",
               "Data-read probes of the external cache.", "E15"),
    MetricSpec("ecache.read_misses", "counter", "events",
               "Data reads that went to main memory.", "E15"),
    MetricSpec("ecache.writes", "counter", "events",
               "Data-write probes (write-through never stalls).", "E15"),
    MetricSpec("ecache.write_misses", "counter", "events",
               "Data writes that missed the external cache.", "E15"),
    MetricSpec("ecache.ifetches", "counter", "events",
               "Icache fill words requested from the external cache.",
               "E15 (ifetch side)"),
    MetricSpec("ecache.ifetch_misses", "counter", "events",
               "Fill words that had to come from main memory.", "E15"),
    MetricSpec("ecache.late_miss.retries", "counter", "events",
               "Late-miss protocol invocations: read + ifetch misses, each "
               "of which re-executes phase 2 of MEM until data arrives.",
               "E15 (late miss)"),
    MetricSpec("ecache.fault.forced_misses", "counter", "events",
               "Injected late-miss retry storms consumed (repro.faults).",
               "robustness (DESIGN.md fault model)"),
    # -------------------------------------------------------------- coproc
    MetricSpec("coproc.operations", "counter", "events",
               "cop instructions dispatched to an attached coprocessor.",
               "E12"),
    MetricSpec("coproc.data_transfers", "counter", "events",
               "movtoc/movfrc data-bus transfers.", "E12"),
    MetricSpec("coproc.fault.busy_events", "counter", "events",
               "Injected coprocessor-busy stalls consumed (repro.faults).",
               "robustness (DESIGN.md fault model)"),
    # ------------------------------------------- translated fast path (jit)
    MetricSpec("core.translate.blocks.compiled", "counter", "events",
               "Hot basic blocks translated into specialized closures.",
               "perf (translated fast path)"),
    MetricSpec("core.translate.blocks.rejected", "counter", "events",
               "Hot heads the block compiler refused (constructs outside "
               "the exact-translation subset).",
               "perf (translated fast path)"),
    MetricSpec("core.translate.blocks.invalidated", "counter", "events",
               "Blocks killed by stores into their instruction words "
               "(self-modifying code).", "perf (translated fast path)"),
    MetricSpec("core.translate.blocks.evicted", "counter", "events",
               "Blocks evicted LRU by the translation-cache admission "
               "bound.", "perf (translated fast path)"),
    MetricSpec("core.translate.entries.taken", "counter", "events",
               "Closure activations: every entry guard held and the block "
               "ran at least one cycle.", "perf (translated fast path)"),
    MetricSpec("core.translate.entries.rejected", "counter", "events",
               "Dispatch hits on a compiled block that failed an entry "
               "guard and fell back to the interpreter.",
               "perf (translated fast path)"),
    MetricSpec("core.translate.cycles", "counter", "cycles",
               "Machine cycles executed inside translated closures "
               "(coverage numerator over pipeline.cycles).",
               "perf (translated fast path)"),
    MetricSpec("core.translate.instructions", "counter", "instructions",
               "Instructions retired by translated closures.",
               "perf (translated fast path)"),
    MetricSpec("core.translate.bails", "counter", "events",
               "Mid-block fallbacks to the interpreter (MMIO touch, dirty "
               "store, cold fall-through segment).",
               "perf (translated fast path)"),
    MetricSpec("core.translate.side_exits", "counter", "events",
               "Exact mid-block exits via a taken side branch.",
               "perf (translated fast path)"),
    # ------------------------------------------------------ derived gauges
    MetricSpec("pipeline.cpi", "gauge", "ratio",
               "Cycles per retired instruction "
               "(pipeline.cycles / pipeline.instructions.retired).",
               "E7 (CPI ~1.7)"),
    MetricSpec("pipeline.noop_fraction", "gauge", "ratio",
               "Retired no-ops over retired instructions.",
               "E6 (15.6%/18.3%)"),
    MetricSpec("icache.miss_rate", "gauge", "ratio",
               "icache.misses / icache.accesses.", "E4 (12%)"),
    MetricSpec("ecache.miss_rate", "gauge", "ratio",
               "External-cache misses over accesses, all reference kinds.",
               "E15"),
    # ---------------------------------------------------- tracer histograms
    MetricSpec("pipeline.stall.icache_miss.length", "histogram", "cycles",
               "Distribution of individual Icache miss-service stall "
               "lengths observed by the cycle tracer.", "E5 (service time)"),
    MetricSpec("pipeline.stall.ecache_late_miss.length", "histogram",
               "cycles",
               "Distribution of individual late-miss stall lengths observed "
               "by the cycle tracer.", "E15"),
    MetricSpec("pipeline.instruction.lifetime", "histogram", "cycles",
               "Cycles from IF entry to WB completion per retired "
               "instruction (5 on an unstalled pipe).", "Figure 1"),
    # ------------------------------------------------- multiprocessor (bus)
    MetricSpec("multi.cycles", "counter", "cycles",
               "Global clock cycles of the shared-bus multiprocessor (one "
               "tick steps every live node once).",
               "E13 (multiprocessor endgame)"),
    MetricSpec("multi.bus.acquisitions", "counter", "events",
               "Times a stalled node won ownership of the shared "
               "memory bus.", "E13 (bus bandwidth)"),
    MetricSpec("multi.bus.contention_cycles", "counter", "cycles",
               "Cycles nodes spent frozen waiting for a bus another node "
               "owned.", "E13 (bus bandwidth)"),
    MetricSpec("multi.bus.invalidations", "counter", "events",
               "Ecache lines invalidated by the write-through broadcast "
               "(Smith's transmit-all-stores policy).",
               "E13 (cache consistency)"),
    MetricSpec("multi.nodes", "gauge", "count",
               "Number of processor nodes sharing the bus (the paper "
               "targets 6-10).", "E13 (multiprocessor endgame)"),
    MetricSpec("multi.bus.wait.length", "histogram", "cycles",
               "Distribution of individual bus-wait episode lengths "
               "observed by the per-node cycle tracers.",
               "E13 (bus bandwidth)"),
    # ------------------------------------------------- checkpoint/restore
    MetricSpec("checkpoint.snapshots", "counter", "events",
               "Snapshots committed to the generation ladder (data file "
               "plus sha256 sidecar, under the run lock).",
               "robustness (checkpoint/restore)"),
    MetricSpec("checkpoint.restores", "counter", "events",
               "Successful restores of a snapshot into a machine.",
               "robustness (checkpoint/restore)"),
    MetricSpec("checkpoint.resumes", "counter", "events",
               "Runs that started from a restored snapshot instead of "
               "cold (the chaos gate requires at least one).",
               "robustness (checkpoint/restore)"),
    MetricSpec("checkpoint.restore_rejects", "counter", "events",
               "Snapshot loads rejected by integrity or format checks "
               "(truncated, corrupted, mis-versioned).",
               "robustness (checkpoint/restore)"),
    MetricSpec("checkpoint.fallbacks", "counter", "events",
               "Times resume skipped an invalid newest generation and "
               "fell back to an older good one.",
               "robustness (checkpoint/restore)"),
    MetricSpec("checkpoint.bytes_written", "counter", "bytes",
               "Total snapshot bytes written to the store.",
               "robustness (checkpoint/restore)"),
    MetricSpec("checkpoint.drain_cycles", "counter", "cycles",
               "Extra cycles spent draining the pipeline to a quiescent "
               "boundary before each snapshot.",
               "robustness (checkpoint/restore)"),
    # ------------------------------------------- simulation as a service
    MetricSpec("service.requests", "counter", "events",
               "Requests received by the job server (every kind, "
               "including pings and requests later shed).",
               "robustness (simulation as a service)"),
    MetricSpec("service.responses.ok", "counter", "events",
               "Responses delivered with status ok (hits, coalesced "
               "shares, and completed computations).",
               "robustness (simulation as a service)"),
    MetricSpec("service.responses.error", "counter", "events",
               "Responses delivered with an error or bad-request "
               "status (named reason, never a silent drop).",
               "robustness (simulation as a service)"),
    MetricSpec("service.shed", "counter", "events",
               "Requests shed by admission control, the open breaker, "
               "or drain -- each with a Retry-After hint.",
               "robustness (simulation as a service)"),
    MetricSpec("service.cache.hits", "counter", "events",
               "Result-cache hits: the canonical payload replayed "
               "without touching the worker pool.",
               "robustness (simulation as a service)"),
    MetricSpec("service.cache.misses", "counter", "events",
               "Result-cache misses (includes integrity rejections).",
               "robustness (simulation as a service)"),
    MetricSpec("service.cache.coalesced", "counter", "events",
               "Requests that shared an identical in-flight "
               "computation instead of spawning their own.",
               "robustness (simulation as a service)"),
    MetricSpec("service.cache.integrity_failures", "counter", "events",
               "Cached payloads rejected by sha256 re-verification and "
               "recomputed (bit rot or injected corruption).",
               "robustness (simulation as a service)"),
    MetricSpec("service.cache.evictions", "counter", "events",
               "LRU evictions past the result-cache entry bound.",
               "robustness (simulation as a service)"),
    MetricSpec("service.deadline.expired", "counter", "events",
               "Requests whose deadline expired while queued; answered "
               "with a deadline error, never run late.",
               "robustness (simulation as a service)"),
    MetricSpec("service.frames.malformed", "counter", "events",
               "Protocol frames rejected (oversize length header, "
               "truncation, undecodable or non-object body).",
               "robustness (simulation as a service)"),
    MetricSpec("service.clients.slow_disconnects", "counter", "events",
               "Connections dropped for stalling mid-frame past the "
               "frame timeout (slow-client defense).",
               "robustness (simulation as a service)"),
    MetricSpec("service.breaker.opens", "counter", "events",
               "Circuit-breaker transitions into the open state "
               "(failure-rate window or queue-depth trip).",
               "robustness (simulation as a service)"),
    MetricSpec("service.breaker.closes", "counter", "events",
               "Circuit-breaker recoveries: half-open probe succeeded "
               "and normal service resumed.",
               "robustness (simulation as a service)"),
    MetricSpec("service.jobs.dispatched", "counter", "events",
               "Runner jobs dispatched onto the worker pool (sweep "
               "requests fan out to one job per point).",
               "robustness (simulation as a service)"),
    MetricSpec("service.jobs.failed", "counter", "events",
               "Dispatched jobs that did not produce a value (error, "
               "timeout, or crashed after retries).",
               "robustness (simulation as a service)"),
    MetricSpec("service.queue.depth", "gauge", "events",
               "Admitted requests waiting for a dispatch batch at "
               "harvest time.",
               "robustness (simulation as a service)"),
    MetricSpec("service.breaker.state", "gauge", "events",
               "Breaker state code: 0 closed, 1 open, 2 half-open.",
               "robustness (simulation as a service)"),
    MetricSpec("service.cache.entries", "gauge", "events",
               "Result-cache entries resident at harvest time.",
               "robustness (simulation as a service)"),
)

#: name -> spec, for validation and documentation lookups
CATALOG_BY_NAME: Dict[str, MetricSpec] = {spec.name: spec
                                          for spec in CATALOG}


def spec_for(name: str) -> MetricSpec:
    """Look up the catalog entry for ``name`` (KeyError if unknown)."""
    return CATALOG_BY_NAME[name]
