"""The metrics registry: counters, gauges, histograms, and harvesting.

Design constraint (the acceptance budget of ISSUE 5): **zero overhead
when disabled**.  The machine's per-cycle hot loop never tests a metrics
flag; components keep maintaining the cheap plain-integer stat structs
they always had (:class:`~repro.core.pipeline.PipelineStats`,
:class:`~repro.icache.cache.IcacheStats`, ...), and telemetry *harvests*
those into one hierarchical registry after (or during) a run:

* :func:`collect_machine` snapshots every component of a
  :class:`~repro.core.processor.Machine` into canonical catalogued names
  (``pipeline.stall.icache_miss``, ``ecache.late_miss.retries``, ...) --
  the audited source of truth the harness, the CLI, and the
  ``check_results.py --metrics-file`` gate all read;
* the :class:`~repro.telemetry.tracer.CycleTracer` feeds histograms
  (stall lengths, instruction lifetimes) into the same registry, using
  the attach-a-hook pattern the fault injector uses: when no tracer is
  attached, nothing in the machine changes.

Aggregation across harness jobs sums counters and recomputes derived
gauges from the summed counters (never by averaging gauges), so a
parallel run aggregates byte-identically to a serial one.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.telemetry.catalog import CATALOG_BY_NAME, MetricSpec

#: snapshot value types: counters/gauges are numbers, histograms dicts
SnapshotValue = Union[int, float, Dict[str, Any]]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        """Create the counter at zero."""
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (ratios, rates, derived quantities)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        """Create the gauge at 0.0."""
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)


class Histogram:
    """A distribution summary: count/total/min/max plus fixed buckets.

    Buckets are cumulative-upper-bound style (``le``), powers of two by
    default -- stall lengths and instruction lifetimes span a few orders
    of magnitude and the paper's analyses only need coarse shape.
    """

    DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds: Iterable[int] = DEFAULT_BOUNDS):
        """Create an empty histogram with ``bounds`` as upper edges."""
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for k, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[k] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-able summary: count/total/min/max/mean + bucket counts."""
        buckets = {f"le_{bound}": self.bucket_counts[k]
                   for k, bound in enumerate(self.bounds)}
        buckets["overflow"] = self.bucket_counts[-1]
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "mean": round(self.mean, 6), "buckets": buckets}


class Metrics:
    """A registry of named counters, gauges, and histograms.

    Names are hierarchical dotted strings.  By default only names in the
    :mod:`repro.telemetry.catalog` are accepted -- an unknown name is a
    typo or an undocumented metric, both bugs (``strict=False`` lifts
    this for scratch/experimental use).
    """

    def __init__(self, strict: bool = True):
        """Create an empty registry (``strict``: catalog-only names)."""
        self.strict = strict
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ---------------------------------------------------------- validation
    def _check(self, name: str, kind: str) -> None:
        if not self.strict:
            return
        spec = CATALOG_BY_NAME.get(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not in the catalog "
                "(repro.telemetry.catalog) -- add a MetricSpec and "
                "document it in docs/OBSERVABILITY.md, or use "
                "Metrics(strict=False)")
        if spec.kind != kind:
            raise TypeError(
                f"metric {name!r} is catalogued as a {spec.kind}, "
                f"not a {kind}")

    # ----------------------------------------------------------- accessors
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check(name, "histogram")
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ---------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, SnapshotValue]:
        """One flat, sorted, JSON-able ``{name: value}`` view.

        Counters and gauges map to their numeric values, histograms to
        their :meth:`Histogram.summary` dict.
        """
        out: Dict[str, SnapshotValue] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.summary()
        return {name: out[name] for name in sorted(out)}

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def specs(self) -> List[MetricSpec]:
        """Catalog entries for every registered metric, sorted by name."""
        names = sorted(set(self._counters) | set(self._gauges)
                       | set(self._histograms))
        return [CATALOG_BY_NAME[name] for name in names
                if name in CATALOG_BY_NAME]


# --------------------------------------------------------------- harvesting
def collect_machine(machine, metrics: Optional[Metrics] = None) -> Metrics:
    """Harvest every component of ``machine`` into canonical names.

    This is the **one audited mapping** from component stat structs to
    hierarchical metric names; every consumer (CpiBreakdown, the harness
    metrics summary, ``repro trace --metrics``, the CLI ``--stats``
    printout) reads this mapping rather than scraping attributes.

    Zero run-time overhead: nothing here executes during simulation; the
    stat structs the components always maintained are read once, after
    the run.
    """
    from repro.core.translate import TranslateStats

    metrics = metrics if metrics is not None else Metrics()
    components = [machine.pipeline.stats, machine.icache.stats,
                  machine.ecache, machine.coprocessors]
    translator = machine.pipeline._translator
    # interpretive runs report the core.translate.* names as zeros, so
    # every single-machine snapshot carries the full counter set and
    # jit-vs-interpreter snapshots diff cleanly name-for-name
    components.append(translator.stats if translator is not None
                      else TranslateStats())
    for component in components:
        for name, value in component.as_metrics().items():
            metrics.counter(name).inc(value)
    set_derived_gauges(metrics)
    return metrics


def collect_multi(system, metrics: Optional[Metrics] = None) -> Metrics:
    """Harvest a :class:`~repro.multi.system.MultiMachine` into one registry.

    Every node is harvested through :func:`collect_machine` (counters
    sum across nodes, exactly the aggregation rule the harness uses for
    jobs), then the shared-bus counters land under the ``multi.*``
    catalog names and the derived gauges are recomputed from the summed
    totals.  Per-node views remain available by calling
    :func:`collect_machine` on ``system.machines[i]`` directly.
    """
    metrics = metrics if metrics is not None else Metrics()
    for machine in system.machines:
        collect_machine(machine, metrics)
    metrics.counter("multi.cycles").inc(system.cycles)
    metrics.counter("multi.bus.acquisitions").inc(system.bus.acquisitions)
    metrics.counter("multi.bus.contention_cycles").inc(
        system.bus.contention_cycles)
    metrics.counter("multi.bus.invalidations").inc(system.bus.invalidations)
    metrics.gauge("multi.nodes").set(len(system.machines))
    set_derived_gauges(metrics)
    return metrics


def set_derived_gauges(metrics: Metrics) -> None:
    """(Re)compute the catalogued derived gauges from the counters.

    Always derived from counters -- never aggregated directly -- so the
    same function serves a single machine and a summed multi-job total.
    """
    def _value(name: str) -> int:
        counter = metrics._counters.get(name)
        return counter.value if counter is not None else 0

    retired = _value("pipeline.instructions.retired")
    cycles = _value("pipeline.cycles")
    metrics.gauge("pipeline.cpi").set(cycles / retired if retired else 0.0)
    metrics.gauge("pipeline.noop_fraction").set(
        _value("pipeline.instructions.noops") / retired if retired else 0.0)
    accesses = _value("icache.accesses")
    metrics.gauge("icache.miss_rate").set(
        _value("icache.misses") / accesses if accesses else 0.0)
    e_accesses = (_value("ecache.reads") + _value("ecache.writes")
                  + _value("ecache.ifetches"))
    e_misses = (_value("ecache.read_misses") + _value("ecache.write_misses")
                + _value("ecache.ifetch_misses"))
    metrics.gauge("ecache.miss_rate").set(
        e_misses / e_accesses if e_accesses else 0.0)


# -------------------------------------------------------------- aggregation
def merge_counter_snapshots(
        snapshots: Iterable[Mapping[str, SnapshotValue]]) -> Dict[str, int]:
    """Sum the counter entries of several snapshots into one total.

    Gauges and histograms are skipped (gauges must be re-derived from
    the summed counters via :func:`derived_from_counters`; histograms
    live in per-run traces, not cross-job totals).  Deterministic:
    output keys are sorted, values are order-independent sums.
    """
    totals: Dict[str, int] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            spec = CATALOG_BY_NAME.get(name)
            if spec is None or spec.kind != "counter":
                continue
            totals[name] = totals.get(name, 0) + int(value)
    return {name: totals[name] for name in sorted(totals)}


def derived_from_counters(
        counters: Mapping[str, int]) -> Dict[str, float]:
    """The catalogued derived gauges, computed from a counter mapping."""
    metrics = Metrics()
    for name, value in counters.items():
        spec = CATALOG_BY_NAME.get(name)
        if spec is not None and spec.kind == "counter":
            metrics.counter(name).inc(int(value))
    set_derived_gauges(metrics)
    return {name: gauge.value
            for name, gauge in sorted(metrics._gauges.items())}


@dataclasses.dataclass(frozen=True)
class ConsistencyIssue:
    """One accounting identity a metrics snapshot failed."""

    name: str       #: short identity id, e.g. "cpi-identity"
    message: str    #: human-readable explanation with both sides


def check_counter_consistency(
        counters: Mapping[str, int],
        analysis_cpi: Optional[float] = None) -> List[ConsistencyIssue]:
    """Audit the accounting identities a machine snapshot must satisfy.

    These are the cross-checks behind ``check_results.py
    --metrics-file``: the counter-derived CPI must equal the analysis
    module's CPI, stall cycles cannot exceed total cycles, retirement
    cannot exceed fetch, and the late-miss retry counter must equal the
    read+ifetch miss counters it is defined from.
    """
    def _value(name: str) -> int:
        return int(counters.get(name, 0))

    issues: List[ConsistencyIssue] = []
    retired = _value("pipeline.instructions.retired")
    cycles = _value("pipeline.cycles")
    if analysis_cpi is not None and retired:
        counter_cpi = cycles / retired
        if abs(counter_cpi - analysis_cpi) > 1e-9:
            issues.append(ConsistencyIssue(
                "cpi-identity",
                f"counter-derived CPI {counter_cpi!r} != analysis CPI "
                f"{analysis_cpi!r}"))
    stalls = (_value("pipeline.stall.icache_miss")
              + _value("pipeline.stall.ecache_late_miss"))
    if stalls > cycles:
        issues.append(ConsistencyIssue(
            "stall-bound", f"stall cycles {stalls} exceed total cycles "
                           f"{cycles}"))
    fetched = _value("pipeline.instructions.fetched")
    if retired + _value("pipeline.instructions.squashed") > fetched:
        issues.append(ConsistencyIssue(
            "retire-bound",
            f"retired+squashed {retired}+"
            f"{_value('pipeline.instructions.squashed')} exceed fetched "
            f"{fetched}"))
    if _value("pipeline.instructions.noops") > retired:
        issues.append(ConsistencyIssue(
            "noop-bound", "no-ops exceed retired instructions"))
    late = _value("ecache.late_miss.retries")
    expected_late = (_value("ecache.read_misses")
                     + _value("ecache.ifetch_misses"))
    if late != expected_late:
        issues.append(ConsistencyIssue(
            "late-miss-identity",
            f"ecache.late_miss.retries {late} != read+ifetch misses "
            f"{expected_late}"))
    return issues
