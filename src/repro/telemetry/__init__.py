"""Unified observability: metric registry, cycle tracer, Perfetto export.

The observability pillar of the repo (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.telemetry.catalog` -- the audited catalog of every metric
  name, its unit, and the paper table/claim it feeds;
* :mod:`repro.telemetry.metrics` -- counters/gauges/histograms, the
  :func:`collect_machine` harvest of a run into catalogued names, and
  the accounting-identity checks behind ``check_results.py
  --metrics-file``;
* :mod:`repro.telemetry.tracer` -- the ring-buffer cycle tracer that
  records instruction lifecycles per pipestage and stall spans;
* :mod:`repro.telemetry.perfetto` -- Chrome/Perfetto ``trace_event``
  JSON export for ``ui.perfetto.dev``.

Everything is opt-in and external to the machine's hot loop: with no
telemetry attached, the simulator runs the exact code it always did.
"""

from repro.telemetry.catalog import (CATALOG, CATALOG_BY_NAME, MetricSpec,
                                     spec_for)
from repro.telemetry.metrics import (ConsistencyIssue, Counter, Gauge,
                                     Histogram, Metrics,
                                     check_counter_consistency,
                                     collect_machine, collect_multi,
                                     derived_from_counters,
                                     merge_counter_snapshots,
                                     set_derived_gauges)
from repro.telemetry.perfetto import (jit_trace_events, multi_trace_events,
                                      trace_events, translate_span_events,
                                      validate_trace_events, write_jit_trace,
                                      write_multi_trace, write_trace)
from repro.telemetry.tracer import STAGES, CycleTracer, FlightTrace

__all__ = [
    "CATALOG", "CATALOG_BY_NAME", "MetricSpec", "spec_for",
    "ConsistencyIssue", "Counter", "Gauge", "Histogram", "Metrics",
    "check_counter_consistency", "collect_machine", "collect_multi",
    "derived_from_counters", "merge_counter_snapshots",
    "set_derived_gauges",
    "jit_trace_events", "multi_trace_events", "trace_events",
    "translate_span_events", "validate_trace_events", "write_jit_trace",
    "write_multi_trace", "write_trace",
    "STAGES", "CycleTracer", "FlightTrace",
]
