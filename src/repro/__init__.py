"""Reproduction of "Architectural Tradeoffs in the Design of MIPS-X"
(Paul Chow and Mark Horowitz, ISCA 1987).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.isa` -- the instruction set;
* :mod:`repro.asm` -- assembler and disassembler;
* :mod:`repro.core` -- the cycle-accurate processor model;
* :mod:`repro.icache` / :mod:`repro.ecache` -- the memory hierarchy;
* :mod:`repro.coproc` -- the coprocessor interface and FPU;
* :mod:`repro.reorg` -- the post-pass code reorganizer;
* :mod:`repro.lang` -- the mini-Pascal compiler used to build workloads;
* :mod:`repro.workloads` -- the benchmark programs;
* :mod:`repro.traces` -- trace capture and synthetic trace generation;
* :mod:`repro.analysis` -- the experiment machinery behind every table
  and figure (see DESIGN.md for the per-experiment index).
"""

__version__ = "1.0.0"
