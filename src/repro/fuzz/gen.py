"""Seeded random program generator for differential fuzzing.

Two modes, selected by :attr:`GenConfig.mode`:

* ``"isa"`` -- structured random instruction sequences emitted as
  assembly text.  The programs are *naive* code (no delay slots filled,
  no scheduling): exactly what the compiler hands the reorganizer, so
  the golden-vs-pipeline oracle exercises the full reorganizer contract.
* ``"lang"`` -- random small SPL programs sent through the compiler;
  the naive and reorganized outputs of one compilation are compared.

Programs are **terminating and memory-bounded by construction**:

* conditional branches only jump *forward*, except loop back-edges
  driven by a dedicated counter register with a fixed iteration count;
* calls only target generated leaf subroutines (straight-line bodies);
* every load/store stays inside a data region placed at a fixed
  ``.org`` address, so reorganization (which moves code) never moves
  data and address values are layout-independent.

The only architectural state that legitimately differs between the
naive and the reorganized program is a *code* address captured by a
``jspci`` link; the generator confines links to ``ra`` and reports it in
:attr:`GeneratedProgram.excluded_regs` so the oracle can skip it.

Determinism: the same ``(seed, GenConfig)`` produces byte-identical
source text (pinned by a test); generation uses one private
``random.Random`` and no global state.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

#: fixed word address of the data region (far above any generated code)
DATA_BASE = 0x2000

#: the console MMIO value port (mmio_base + CONSOLE_OFFSET of the
#: default MachineConfig) -- writes append to ``console.values``
CONSOLE_PORT = 0x3FFF00 + 0xF0

#: registers the generator computes with (t0..t15 minus reserved ones)
_POOL = tuple(range(10, 24))
#: loop counters / scratch kept out of the arithmetic pool
_COUNTER_REG = 24      # t14
_ADDR_REG = 25         # t15: scratch base for computed addressing
_DATA_REG = 31         # gp: base of the data region
_CONSOLE_REG = 30      # s4: console value port
_LINK_REG = 2          # ra: jspci link target (excluded from comparison)

#: boundary immediates for the memory-format 17-bit signed field
_ADDI_BOUNDARIES = (0, 1, -1, 2, -2, 255, -256, 32767, -32768, 65535, -65536)


@dataclasses.dataclass(frozen=True)
class GenConfig:
    """Knobs for one generated program (all defaults are fuzz-sized)."""

    mode: str = "isa"            #: "isa" | "lang"
    segments: int = 12           #: body segments (isa) / statements (lang)
    data_words: int = 32         #: size of the bounded data region
    max_loop_iters: int = 6      #: fixed trip count bound for loops
    subroutines: int = 2         #: generated leaf functions (isa mode)
    quick: bool = False          #: smaller programs (CI smoke)

    def sized(self) -> "GenConfig":
        if not self.quick:
            return self
        return dataclasses.replace(self, segments=min(self.segments, 8),
                                   subroutines=min(self.subroutines, 1))


@dataclasses.dataclass
class GeneratedProgram:
    """One generated test program plus everything the oracle needs."""

    seed: int
    mode: str                    #: "isa" | "lang"
    source: str                  #: asm text (isa) or SPL text (lang)
    excluded_regs: Tuple[int, ...]   #: regs that may hold code addresses
    data_base: int = DATA_BASE
    data_words: int = 0
    #: generous execution bounds (terminating programs finish far below)
    max_instructions: int = 400_000
    max_cycles: int = 4_000_000


# ---------------------------------------------------------------- isa mode
class _IsaEmitter:
    """Builds one structured random assembly program."""

    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.lines: List[str] = []
        self.label_counter = 0
        self.subroutine_names: List[str] = []

    def fresh_label(self, stem: str) -> str:
        self.label_counter += 1
        return f"{stem}_{self.label_counter}"

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    # ------------------------------------------------------------ operands
    def reg(self) -> int:
        return self.rng.choice(_POOL)

    def reg_or_zero(self) -> int:
        return 0 if self.rng.random() < 0.08 else self.reg()

    def immediate(self) -> int:
        if self.rng.random() < 0.35:
            return self.rng.choice(_ADDI_BOUNDARIES)
        return self.rng.randint(-4096, 4096)

    def data_offset(self) -> int:
        return self.rng.randrange(self.config.data_words)

    # ------------------------------------------------------------ segments
    def seg_compute(self) -> None:
        """A short straight-line run of random ALU/shift operations."""
        for _ in range(self.rng.randint(1, 4)):
            choice = self.rng.random()
            rd = self.reg()
            if choice < 0.45:
                op = self.rng.choice(("add", "sub", "and", "or", "xor"))
                self.emit(f"{op} r{rd}, r{self.reg_or_zero()}, "
                          f"r{self.reg_or_zero()}")
            elif choice < 0.65:
                op = self.rng.choice(("sll", "srl", "sra", "rotl"))
                self.emit(f"{op} r{rd}, r{self.reg_or_zero()}, "
                          f"{self.rng.randrange(32)}")
            elif choice < 0.75:
                self.emit(f"not r{rd}, r{self.reg_or_zero()}")
            elif choice < 0.9:
                self.emit(f"addi r{rd}, r{self.reg_or_zero()}, "
                          f"{self.immediate()}")
            else:
                self.emit(f"mov r{rd}, r{self.reg_or_zero()}")

    def seg_memory(self) -> None:
        """Loads and stores confined to the data region.

        Half the accesses go through the fixed data base register, half
        through a computed base (``_ADDR_REG``) so the pipeline's
        address path and the reorganizer's alias analysis both see
        non-trivial cases -- still bounded, because the computed base is
        always ``data_base + small offset``.
        """
        for _ in range(self.rng.randint(1, 3)):
            offset = self.data_offset()
            if self.rng.random() < 0.5:
                base = _DATA_REG
            else:
                self.emit(f"addi r{_ADDR_REG}, r{_DATA_REG}, "
                          f"{self.rng.randrange(self.config.data_words)}")
                base = _ADDR_REG
                offset = 0
            if self.rng.random() < 0.5:
                self.emit(f"ld r{self.reg()}, {offset}(r{base})")
            else:
                self.emit(f"st r{self.reg()}, {offset}(r{base})")

    def seg_muldiv(self) -> None:
        """MD-register sequences: movtos/mstep/dstep/movfrs."""
        self.emit(f"movtos md, r{self.reg()}")
        for _ in range(self.rng.randint(1, 3)):
            op = self.rng.choice(("mstep", "dstep"))
            self.emit(f"{op} r{self.reg()}, r{self.reg()}, r{self.reg()}")
        self.emit(f"movfrs r{self.reg()}, md")

    def seg_branch(self) -> None:
        """A forward conditional branch over a small straight-line run."""
        label = self.fresh_label("skip")
        cond = self.rng.choice(("beq", "bne", "blt", "ble", "bgt", "bge"))
        self.emit(f"{cond} r{self.reg_or_zero()}, r{self.reg_or_zero()}, "
                  f"{label}")
        self.seg_compute()
        if self.rng.random() < 0.5:
            self.seg_memory()
        self.emit_label(label)

    def seg_diamond(self) -> None:
        """if/else shape: both arms are straight-line."""
        else_label = self.fresh_label("else")
        join_label = self.fresh_label("join")
        cond = self.rng.choice(("beq", "bne", "blt", "ble", "bgt", "bge"))
        self.emit(f"{cond} r{self.reg_or_zero()}, r{self.reg_or_zero()}, "
                  f"{else_label}")
        self.seg_compute()
        self.emit(f"br {join_label}")
        self.emit_label(else_label)
        self.seg_compute()
        self.emit_label(join_label)

    def seg_loop(self) -> None:
        """A counted loop: fixed trip count, dedicated counter register."""
        head = self.fresh_label("loop")
        trips = self.rng.randint(1, self.config.max_loop_iters)
        self.emit(f"li r{_COUNTER_REG}, {trips}")
        self.emit_label(head)
        self.seg_compute()
        if self.rng.random() < 0.6:
            self.seg_memory()
        self.emit(f"addi r{_COUNTER_REG}, r{_COUNTER_REG}, -1")
        self.emit(f"bne r{_COUNTER_REG}, r0, {head}")

    def seg_call(self) -> None:
        if not self.subroutine_names:
            return
        self.emit(f"call {self.rng.choice(self.subroutine_names)}")

    def seg_console(self) -> None:
        """Write a value to the console MMIO port (output comparison)."""
        self.emit(f"st r{self.reg()}, 0(r{_CONSOLE_REG})")

    # ------------------------------------------------------------- program
    def build(self, seed: int) -> GeneratedProgram:
        config = self.config
        for index in range(config.subroutines):
            self.subroutine_names.append(f"sub_{index}")

        self.emit_label("_start")
        # seed a few registers with interesting values
        for reg in self.rng.sample(_POOL, k=min(6, len(_POOL))):
            value = self.rng.choice((
                0, 1, -1, 2, 0x7FFFFFFF, -0x80000000, 0xFFFF, -0x10000,
                self.rng.randint(-(1 << 31), (1 << 31) - 1)))
            self.emit(f"li r{reg}, {value}")
        self.emit(f"la r{_DATA_REG}, data")
        self.emit(f"li r{_CONSOLE_REG}, {CONSOLE_PORT:#x}")

        segments = (self.seg_compute, self.seg_memory, self.seg_muldiv,
                    self.seg_branch, self.seg_diamond, self.seg_loop,
                    self.seg_call, self.seg_console)
        weights = (5, 4, 1, 3, 2, 2, 2, 1)
        for _ in range(config.segments):
            self.rng.choices(segments, weights=weights)[0]()
        self.seg_console()
        self.emit("halt")

        for name in self.subroutine_names:
            self.emit_label(name)
            self.seg_compute()
            if self.rng.random() < 0.5:
                self.seg_memory()
            self.emit("ret")

        # the data region lives at a fixed address so code growth under
        # reorganization cannot move it
        self.lines.append(f"    .org {DATA_BASE:#x}")
        self.emit_label("data")
        values = [self.rng.randint(0, 0xFFFFFFFF)
                  for _ in range(config.data_words)]
        self.emit(".word " + ", ".join(str(v) for v in values))

        return GeneratedProgram(
            seed=seed, mode="isa", source="\n".join(self.lines) + "\n",
            excluded_regs=(_LINK_REG,),
            data_words=config.data_words)


# --------------------------------------------------------------- lang mode
class _SplEmitter:
    """Builds one random small SPL program.

    Loops are bounded (``for`` with constant bounds, ``while`` over an
    explicit down-counter), array indices come from bounded loop
    variables or constants, and every program ends by ``write``-ing the
    global variables, so the console stream captures the full observable
    state.
    """

    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.scalars = [f"g{i}" for i in range(4)]
        self.array = "arr"
        self.array_size = 8
        self.lines: List[str] = []

    def expr(self, depth: int = 0, loop_var: Optional[str] = None) -> str:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.35:
            if self.rng.random() < 0.5:
                return str(self.rng.randint(-100, 100))
            names = list(self.scalars)
            if loop_var:
                names.append(loop_var)
            return self.rng.choice(names)
        if roll < 0.5:
            index = (loop_var if loop_var and self.rng.random() < 0.5
                     else str(self.rng.randrange(self.array_size)))
            return f"{self.array}[{index}]"
        op = self.rng.choice(("+", "-", "*"))
        return (f"({self.expr(depth + 1, loop_var)} {op} "
                f"{self.expr(depth + 1, loop_var)})")

    def cond(self, loop_var: Optional[str] = None) -> str:
        op = self.rng.choice(("=", "<>", "<", "<=", ">", ">="))
        return f"{self.expr(1, loop_var)} {op} {self.expr(1, loop_var)}"

    def assign(self, indent: str, loop_var: Optional[str] = None) -> None:
        if self.rng.random() < 0.3:
            index = (loop_var if loop_var and self.rng.random() < 0.6
                     else str(self.rng.randrange(self.array_size)))
            target = f"{self.array}[{index}]"
        else:
            target = self.rng.choice(self.scalars)
        self.lines.append(f"{indent}{target} := {self.expr(0, loop_var)};")

    def statement(self, indent: str) -> None:
        roll = self.rng.random()
        if roll < 0.45:
            self.assign(indent)
        elif roll < 0.65:
            self.lines.append(f"{indent}if {self.cond()} then begin")
            self.assign(indent + "  ")
            if self.rng.random() < 0.5:
                self.lines.append(f"{indent}end else begin")
                self.assign(indent + "  ")
            self.lines.append(f"{indent}end;")
        elif roll < 0.85:
            var = "i"
            lo = self.rng.randint(0, 3)
            hi = lo + self.rng.randint(0, self.config.max_loop_iters - 1)
            self.lines.append(
                f"{indent}for {var} := {lo} to {hi} do begin")
            self.assign(indent + "  ", loop_var=var)
            if self.rng.random() < 0.5:
                self.assign(indent + "  ", loop_var=var)
            self.lines.append(f"{indent}end;")
        else:
            trips = self.rng.randint(1, self.config.max_loop_iters)
            self.lines.append(f"{indent}c := {trips};")
            self.lines.append(f"{indent}while c > 0 do begin")
            self.assign(indent + "  ")
            self.lines.append(f"{indent}  c := c - 1;")
            self.lines.append(f"{indent}end;")

    def build(self, seed: int) -> GeneratedProgram:
        self.lines.append(f"program fuzz{seed};")
        decls = ", ".join(self.scalars)
        self.lines.append(
            f"var {decls}, c, i, {self.array}[{self.array_size}];")
        self.lines.append("begin")
        for index, name in enumerate(self.scalars):
            self.lines.append(f"  {name} := {self.rng.randint(-50, 50)};")
        for index in range(self.array_size):
            self.lines.append(
                f"  {self.array}[{index}] := {self.rng.randint(-50, 50)};")
        for _ in range(self.config.segments):
            self.statement("  ")
        for name in self.scalars:
            self.lines.append(f"  write({name});")
        self.lines.append(f"  for i := 0 to {self.array_size - 1} do")
        self.lines.append(f"    write({self.array}[i]);")
        self.lines.append("end.")
        return GeneratedProgram(
            seed=seed, mode="lang", source="\n".join(self.lines) + "\n",
            excluded_regs=(_LINK_REG,))


# ------------------------------------------------------------------ driver
def generate_program(seed: int,
                     config: Optional[GenConfig] = None) -> GeneratedProgram:
    """Generate the program for ``seed`` under ``config`` (deterministic)."""
    config = (config or GenConfig()).sized()
    rng = random.Random(seed)
    if config.mode == "isa":
        return _IsaEmitter(rng, config).build(seed)
    if config.mode == "lang":
        return _SplEmitter(rng, config).build(seed)
    raise ValueError(f"unknown generator mode {config.mode!r}")
