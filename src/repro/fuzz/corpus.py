"""The ``fuzz_corpus/`` directory of shrunk reproducers.

Every divergence the fuzzer ever finds leaves a permanent artifact: a
directory holding the minimized program (``repro.s`` for ISA mode,
``repro.spl`` for lang mode) plus ``meta.json`` recording the seed, the
model pair, the divergence kind, the mismatch diff, and the comparison
bounds (excluded registers, data region).  Once the underlying bug is
fixed, the entry stays committed and a tier-1 test replays the whole
corpus through the oracle, pinning the fix forever.

Entries written while a dev-only golden mutation was active record the
mutation name; the replay test runs those *with* the mutation planted and
demands the divergence is still caught (the fuzzer's own regression),
while unmutated entries must replay clean.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
from typing import Any, Dict, Iterator, List, Optional

from repro.fuzz.gen import GeneratedProgram
from repro.fuzz.oracle import DivergenceReport
from repro.harness.bench import REPO_ROOT, write_json_atomic

DEFAULT_CORPUS = REPO_ROOT / "fuzz_corpus"

_SOURCE_NAME = {"isa": "repro.s", "lang": "repro.spl"}


@dataclasses.dataclass
class CorpusEntry:
    """One committed reproducer: program + the divergence it captured."""

    path: pathlib.Path
    generated: GeneratedProgram
    pair: str
    kind: str
    mutation: Optional[str]
    meta: Dict[str, Any]

    @property
    def name(self) -> str:
        return self.path.name


def entry_name(generated: GeneratedProgram, report: DivergenceReport) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", f"{report.pair}-{report.kind}")
    return f"{generated.mode}-seed{generated.seed:04d}-{slug}".strip("-")


def write_entry(generated: GeneratedProgram, report: DivergenceReport,
                corpus_dir: Optional[pathlib.Path] = None,
                mutation: Optional[str] = None,
                note: str = "") -> pathlib.Path:
    """Persist one (shrunk) reproducer; returns the entry directory."""
    base = pathlib.Path(corpus_dir) if corpus_dir else DEFAULT_CORPUS
    entry_dir = base / entry_name(generated, report)
    entry_dir.mkdir(parents=True, exist_ok=True)
    source_file = entry_dir / _SOURCE_NAME[generated.mode]
    source_file.write_text(generated.source)
    meta: Dict[str, Any] = {
        "schema": 1,
        "seed": generated.seed,
        "mode": generated.mode,
        "pair": report.pair,
        "kind": report.kind,
        "mismatches": report.mismatches,
        "excluded_regs": sorted(generated.excluded_regs),
        "data_base": generated.data_base,
        "data_words": generated.data_words,
        "max_instructions": generated.max_instructions,
        "max_cycles": generated.max_cycles,
    }
    if mutation:
        meta["mutation"] = mutation
    if note:
        meta["note"] = note
    write_json_atomic(entry_dir / "meta.json", meta)
    return entry_dir


def load_entry(entry_dir: pathlib.Path) -> CorpusEntry:
    meta = json.loads((entry_dir / "meta.json").read_text())
    mode = meta["mode"]
    source = (entry_dir / _SOURCE_NAME[mode]).read_text()
    generated = GeneratedProgram(
        seed=meta["seed"], mode=mode, source=source,
        excluded_regs=tuple(meta.get("excluded_regs", ())),
        data_base=meta.get("data_base", 0),
        data_words=meta.get("data_words", 0),
        max_instructions=meta.get("max_instructions", 400_000),
        max_cycles=meta.get("max_cycles", 4_000_000))
    return CorpusEntry(path=entry_dir, generated=generated,
                       pair=meta["pair"], kind=meta["kind"],
                       mutation=meta.get("mutation"), meta=meta)


def iter_corpus(corpus_dir: Optional[pathlib.Path] = None,
                ) -> Iterator[CorpusEntry]:
    """Load every committed entry, sorted by name (deterministic order)."""
    base = pathlib.Path(corpus_dir) if corpus_dir else DEFAULT_CORPUS
    if not base.is_dir():
        return
    for entry_dir in sorted(base.iterdir()):
        if entry_dir.is_dir() and (entry_dir / "meta.json").is_file():
            yield load_entry(entry_dir)


def replay_entry(entry: CorpusEntry) -> List[str]:
    """Replay one entry through the oracle; returns failure strings.

    * unmutated entries captured real, since-fixed bugs: the models must
      now agree (a reappearing divergence means a regression);
    * mutated entries are fuzzer self-tests: with the recorded mutation
      planted the oracle must still catch the same (pair, kind).
    """
    from repro.fuzz.mutation import get_mutator
    from repro.fuzz.oracle import check_all

    mutator = get_mutator(entry.mutation) if entry.mutation else None
    reports = check_all(entry.generated, golden_mutator=mutator)
    if entry.mutation:
        if not any((r.pair, r.kind) == (entry.pair, entry.kind)
                   for r in reports):
            return [f"{entry.name}: planted mutation "
                    f"{entry.mutation!r} no longer caught as "
                    f"({entry.pair}, {entry.kind})"]
        return []
    return [f"{entry.name}: {report.summary()}" for report in reports]
