"""The differential oracle: run one generated program on independent
models of MIPS-X semantics and compare everything observable.

Four model pairs, matching the repo's redundancy axes:

* **golden-vs-pipeline** (the reorganizer contract): the *naive* program
  runs on the instruction-level golden simulator; the *reorganized*
  program runs on the cycle-accurate pipeline.  Full architectural state
  is compared -- registers (minus the generator's declared code-address
  registers), the MD register, the bounded data region, and the console
  stream.  A reorganizer crash (:class:`ReorgError`) or a pipeline
  hazard trap (:class:`HazardViolation`) is itself a divergence: the
  reorganizer emitted hazardous code.
* **live-vs-replay** (the capture-once/replay-many contract): the same
  pipeline run is captured with a :class:`TraceCollector`, and the
  recorded fetch/ecache streams are replayed through the vectorized
  trace models, which must reproduce the live cache statistics exactly.
* **jit-vs-interpreter** (the translated-fast-path contract): the
  reorganized program runs again with the block translator enabled at a
  low threshold, and *everything* must match the interpretive run
  bit-for-bit -- every pipeline counter (cycles included: the fast path
  is cycle-exact, not just architecturally equivalent), registers, MD,
  memory, console, and cache statistics.
* **checkpoint-vs-straight** (the snapshot/restore contract, see
  :mod:`repro.checkpoint`): the reorganized program runs again to a
  seeded random cycle, drains to quiescence, snapshots through a JSON
  round trip, restores into a fresh machine and finishes; the full
  machine signature must match the uninterrupted run bit-for-bit.

Every check returns ``None`` for agreement or a structured
:class:`DivergenceReport`; programs that fail to terminate or assemble
raise, and the campaign layer records those as harness failures, not
divergences.

``golden_mutator`` is a **dev-only hook**: tests (and nothing else) use
it to plant a known semantic bug in the golden model and assert the
fuzzer catches and shrinks it (see :mod:`repro.fuzz.mutation`).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.asm.assembler import parse as parse_asm
from repro.asm.unit import Program
from repro.core import Machine, MachineConfig
from repro.core.golden import GoldenError, GoldenSimulator
from repro.core.pipeline import HazardViolation
from repro.ecache import trace_sim as ecache_sim
from repro.fuzz.gen import GeneratedProgram
from repro.icache import trace_sim as icache_sim
from repro.reorg import ReorgError, reorganize
from repro.traces.capture import TraceCollector

#: model pair names used in reports and corpus metadata
PAIR_GOLDEN_PIPELINE = "golden-vs-pipeline"
PAIR_LIVE_REPLAY = "live-vs-replay"
PAIR_JIT_INTERP = "jit-vs-interpreter"
PAIR_CHECKPOINT = "checkpoint-vs-straight"


@dataclasses.dataclass
class DivergenceReport:
    """One observed disagreement between two models."""

    pair: str                    #: PAIR_GOLDEN_PIPELINE | PAIR_LIVE_REPLAY
    kind: str                    #: "state" | "reorg-error" | "hazard" | ...
    mismatches: List[Dict[str, object]]

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def summary(self, limit: int = 4) -> str:
        parts = [f"{self.pair} [{self.kind}]"]
        for mismatch in self.mismatches[:limit]:
            parts.append(str(mismatch.get("detail", mismatch)))
        if len(self.mismatches) > limit:
            parts.append(f"... {len(self.mismatches) - limit} more")
        return "; ".join(parts)


class FuzzProgramError(RuntimeError):
    """The generated program is unusable (did not assemble/terminate).

    This is a *generator or harness* bug, not a model divergence; the
    campaign records it under the harness taxonomy (exit 1), never as a
    finding (exit 2).
    """


# ------------------------------------------------------------- model runs
def _programs_for(generated: GeneratedProgram) -> Tuple[Program, Program]:
    """(naive program, reorganized program) for one generated test."""
    if generated.mode == "lang":
        from repro.lang import compile_spl

        compilation = compile_spl(generated.source, scheme=None)
        naive = compilation.naive_program()
        reorganized = reorganize(parse_asm(compilation.asm_text)).unit.assemble()
        return naive, reorganized
    naive = parse_asm(generated.source).assemble()
    reorganized = reorganize(parse_asm(generated.source)).unit.assemble()
    return naive, reorganized


def run_golden(program: Program, generated: GeneratedProgram,
               mutator: Optional[Callable[[GoldenSimulator], None]] = None,
               ) -> GoldenSimulator:
    sim = GoldenSimulator()
    if mutator is not None:
        mutator(sim)
    sim.load_program(program)
    try:
        sim.run(generated.max_instructions)
    except GoldenError as exc:
        raise FuzzProgramError(
            f"golden run failed (seed {generated.seed}): {exc}") from exc
    return sim


def run_pipeline(program: Program, generated: GeneratedProgram,
                 config: Optional[MachineConfig] = None,
                 collector: Optional[TraceCollector] = None) -> Machine:
    machine = Machine(config or MachineConfig())
    if collector is not None:
        machine.set_trace(collector)
    machine.load_program(program)
    machine.run(generated.max_cycles)
    if not machine.halted:
        raise FuzzProgramError(
            f"pipeline run did not halt within {generated.max_cycles} "
            f"cycles (seed {generated.seed})")
    return machine


# ------------------------------------------------------------ comparisons
def _compare_state(golden: GoldenSimulator, machine: Machine,
                   generated: GeneratedProgram) -> List[Dict[str, object]]:
    mismatches: List[Dict[str, object]] = []
    excluded = set(generated.excluded_regs)
    for register in range(1, 32):
        if register in excluded:
            continue
        want = golden.regs[register]
        got = machine.regs[register]
        if want != got:
            mismatches.append({
                "what": f"r{register}",
                "detail": f"r{register}: golden {want:#x}, "
                          f"pipeline {got:#x}"})
    if golden.md.value != machine.pipeline.md.value:
        mismatches.append({
            "what": "md",
            "detail": f"md: golden {golden.md.value:#x}, "
                      f"pipeline {machine.pipeline.md.value:#x}"})
    if generated.data_words:
        golden_words = golden.memory.system
        machine_words = machine.memory.system
        for offset in range(generated.data_words):
            address = generated.data_base + offset
            want = golden_words.read(address)
            got = machine_words.read(address)
            if want != got:
                mismatches.append({
                    "what": f"mem[{address:#x}]",
                    "detail": f"mem[{address:#x}]: golden {want:#x}, "
                              f"pipeline {got:#x}"})
    if (golden.console.values != machine.console.values
            or golden.console.text != machine.console.text):
        mismatches.append({
            "what": "console",
            "detail": f"console: golden {golden.console.values!r}/"
                      f"{golden.console.text!r}, pipeline "
                      f"{machine.console.values!r}/"
                      f"{machine.console.text!r}"})
    return mismatches


def check_program(generated: GeneratedProgram,
                  config: Optional[MachineConfig] = None,
                  golden_mutator: Optional[
                      Callable[[GoldenSimulator], None]] = None,
                  collector: Optional[TraceCollector] = None,
                  ) -> Optional[DivergenceReport]:
    """Golden-vs-pipeline oracle; ``None`` means the models agree.

    ``collector`` optionally captures the pipeline run's event streams
    so :func:`check_trace_replay` can reuse the same execution.
    """
    try:
        naive, reorganized = _programs_for(generated)
    except ReorgError as exc:
        return DivergenceReport(
            pair=PAIR_GOLDEN_PIPELINE, kind="reorg-error",
            mismatches=[{"what": "reorganizer",
                         "detail": f"reorganizer rejected its own output: "
                                   f"{exc}"}])
    except (ValueError, KeyError) as exc:
        raise FuzzProgramError(
            f"generated program did not build (seed {generated.seed}): "
            f"{exc}") from exc

    golden = run_golden(naive, generated, mutator=golden_mutator)
    try:
        machine = run_pipeline(reorganized, generated, config=config,
                               collector=collector)
    except HazardViolation as exc:
        return DivergenceReport(
            pair=PAIR_GOLDEN_PIPELINE, kind="hazard",
            mismatches=[{"what": "pipeline",
                         "detail": f"reorganized code tripped the hazard "
                                   f"checker: {exc}"}])
    mismatches = _compare_state(golden, machine, generated)
    if mismatches:
        return DivergenceReport(pair=PAIR_GOLDEN_PIPELINE, kind="state",
                                mismatches=mismatches)
    return None


def _icache_signature(stats) -> Tuple[int, ...]:
    return (stats.accesses, stats.hits, stats.misses,
            stats.words_filled, stats.tag_allocations)


def check_trace_replay(machine: Machine, collector: TraceCollector,
                       ) -> Optional[DivergenceReport]:
    """Live-vs-replay oracle over one captured pipeline run."""
    mismatches: List[Dict[str, object]] = []
    if machine.config.icache.enabled:
        replayed = icache_sim.replay(machine.config.icache,
                                     collector.fetch_array())
        live = _icache_signature(machine.icache.stats)
        traced = _icache_signature(replayed)
        if live != traced:
            mismatches.append({
                "what": "icache",
                "detail": f"icache replay diverged: live "
                          f"acc/hit/miss/fill/tag {live}, replay {traced}"})
    if machine.config.ecache.enabled:
        kinds, addresses = collector.ecache_arrays()
        replayed_stats, _ = ecache_sim.replay(machine.config.ecache,
                                              kinds, addresses)
        if replayed_stats != machine.ecache.stats:
            mismatches.append({
                "what": "ecache",
                "detail": f"ecache replay diverged: live "
                          f"{machine.ecache.stats}, replay "
                          f"{replayed_stats}"})
    if mismatches:
        return DivergenceReport(pair=PAIR_LIVE_REPLAY, kind="stats",
                                mismatches=mismatches)
    return None


def _machine_signature(machine: Machine) -> Dict[str, object]:
    """Everything the jit-vs-interpreter oracle compares, as one dict.

    Cycle-exactness is part of the contract, so the *full* pipeline
    stat struct is included -- a fast path that reaches the right
    registers in the wrong number of cycles is a finding.
    """
    pipe = machine.pipeline
    return {
        "stats": dataclasses.asdict(pipe.stats),
        "regs": list(pipe.regs._regs),
        "md": pipe.md.value,
        "psw": (pipe.psw.value, pipe.psw_old.value),
        "console": (list(machine.console.values), machine.console.text),
        "icache": dataclasses.asdict(machine.icache.stats),
        "ecache": dataclasses.asdict(machine.ecache.stats),
        "memory": (dict(pipe.memory.space(True)._words),
                   dict(pipe.memory.space(False)._words)),
    }


def check_jit_equivalence(program: Program, generated: GeneratedProgram,
                          reference: Machine,
                          config: Optional[MachineConfig] = None,
                          ) -> Optional[DivergenceReport]:
    """Jit-vs-interpreter oracle; ``None`` means bit-identical.

    ``reference`` is an already-completed interpretive run of
    ``program``.  The same program runs again with the translator
    enabled at threshold 2 (so even short fuzz programs get hot enough
    to translate), and the full machine signatures must match.
    """
    from repro.core.translate import Translator

    base = config or MachineConfig()
    if not Translator.supports(base):
        return None
    jit_config = dataclasses.replace(base, jit=True, jit_threshold=2)
    try:
        jit_machine = run_pipeline(program, generated, config=jit_config)
    except HazardViolation as exc:
        return DivergenceReport(
            pair=PAIR_JIT_INTERP, kind="hazard",
            mismatches=[{"what": "pipeline",
                         "detail": f"jit run tripped the hazard checker "
                                   f"where the interpreter did not: {exc}"}])
    want = _machine_signature(reference)
    got = _machine_signature(jit_machine)
    if want == got:
        return None
    mismatches: List[Dict[str, object]] = []
    for key in want:
        if want[key] != got[key]:
            mismatches.append({
                "what": key,
                "detail": f"{key}: interpreter {want[key]!r} != jit "
                          f"{got[key]!r}"})
    return DivergenceReport(pair=PAIR_JIT_INTERP, kind="state",
                            mismatches=mismatches)


def check_checkpoint_equivalence(program: Program,
                                 generated: GeneratedProgram,
                                 reference: Machine,
                                 config: Optional[MachineConfig] = None,
                                 jit: bool = False,
                                 ) -> Optional[DivergenceReport]:
    """Checkpoint-vs-straight oracle; ``None`` means bit-identical.

    The program runs again to a seeded random cycle, drains to a
    quiescent boundary, snapshots, round-trips the snapshot through
    JSON (exactly what the on-disk store persists), restores it into a
    *fresh* machine, and finishes.  The full machine signature -- every
    pipeline counter, registers, MD, PSW, memory, console, cache stats
    -- must match the uninterrupted ``reference`` run bit-for-bit.

    ``jit=True`` exercises the same contract with the block translator
    enabled (translated blocks must be invalidated on restore, never
    resumed stale).
    """
    import json as _json
    import random as _random

    from repro.checkpoint.state import CheckpointError

    base = config or MachineConfig()
    if jit:
        from repro.core.translate import Translator

        if not Translator.supports(base):
            return None
        base = dataclasses.replace(base, jit=True, jit_threshold=2)
    total = reference.stats.cycles
    cut = _random.Random(generated.seed ^ 0xC0FFEE).randint(
        1, max(1, total - 1))
    first = Machine(base)
    first.load_program(program)
    first.pipeline.run(cut)
    try:
        state = first.snapshot()
    except CheckpointError as exc:
        return DivergenceReport(
            pair=PAIR_CHECKPOINT, kind="quiescence",
            mismatches=[{"what": "drain",
                         "detail": f"drain to quiescence failed at cycle "
                                   f"{cut} (seed {generated.seed}): {exc}"}])
    state = _json.loads(_json.dumps(state))
    restored = Machine(base)
    try:
        restored.restore(state)
    except CheckpointError as exc:
        return DivergenceReport(
            pair=PAIR_CHECKPOINT, kind="restore-error",
            mismatches=[{"what": "restore",
                         "detail": f"restore rejected its own snapshot "
                                   f"(seed {generated.seed}): {exc}"}])
    restored.run(generated.max_cycles)
    if not restored.halted:
        return DivergenceReport(
            pair=PAIR_CHECKPOINT, kind="no-halt",
            mismatches=[{"what": "pipeline",
                         "detail": f"restored run did not halt within "
                                   f"{generated.max_cycles} cycles where "
                                   f"the straight run did "
                                   f"(seed {generated.seed})"}])
    want = _machine_signature(reference)
    got = _machine_signature(restored)
    if want == got:
        return None
    mismatches: List[Dict[str, object]] = []
    for key in want:
        if want[key] != got[key]:
            mismatches.append({
                "what": key,
                "detail": f"{key} (snapshot at cycle {cut}): straight "
                          f"{want[key]!r} != restored {got[key]!r}"})
    return DivergenceReport(pair=PAIR_CHECKPOINT, kind="state",
                            mismatches=mismatches)


def check_all(generated: GeneratedProgram,
              config: Optional[MachineConfig] = None,
              golden_mutator: Optional[
                  Callable[[GoldenSimulator], None]] = None,
              ) -> List[DivergenceReport]:
    """Run all three oracles on one generated program.

    One interpretive pipeline execution serves the first two: it is
    compared against the golden run *and* captured for the trace-replay
    comparison.  It then becomes the bit-exact reference for a second
    execution with the block translator enabled
    (:func:`check_jit_equivalence`).
    """
    try:
        naive, reorganized = _programs_for(generated)
    except ReorgError as exc:
        return [DivergenceReport(
            pair=PAIR_GOLDEN_PIPELINE, kind="reorg-error",
            mismatches=[{"what": "reorganizer",
                         "detail": f"reorganizer rejected its own output: "
                                   f"{exc}"}])]
    except (ValueError, KeyError) as exc:
        raise FuzzProgramError(
            f"generated program did not build (seed {generated.seed}): "
            f"{exc}") from exc

    golden = run_golden(naive, generated, mutator=golden_mutator)
    collector = TraceCollector(fetches=True, data=False, branches=False,
                               ecache=True)
    try:
        machine = run_pipeline(reorganized, generated, config=config,
                               collector=collector)
    except HazardViolation as exc:
        return [DivergenceReport(
            pair=PAIR_GOLDEN_PIPELINE, kind="hazard",
            mismatches=[{"what": "pipeline",
                         "detail": f"reorganized code tripped the hazard "
                                   f"checker: {exc}"}])]

    reports: List[DivergenceReport] = []
    mismatches = _compare_state(golden, machine, generated)
    if mismatches:
        reports.append(DivergenceReport(pair=PAIR_GOLDEN_PIPELINE,
                                        kind="state", mismatches=mismatches))
    replay_report = check_trace_replay(machine, collector)
    if replay_report is not None:
        reports.append(replay_report)
    jit_report = check_jit_equivalence(reorganized, generated, machine,
                                       config=config)
    if jit_report is not None:
        reports.append(jit_report)
    checkpoint_report = check_checkpoint_equivalence(reorganized, generated,
                                                     machine, config=config)
    if checkpoint_report is not None:
        reports.append(checkpoint_report)
    return reports
