"""The ``repro fuzz`` campaign driver.

Fans seeded generate->check->shrink jobs across the hardened parallel
:class:`repro.harness.runner.Runner` (same timeout/retry/chaos machinery
as ``repro faults``), aggregates a deterministic report, and writes it
atomically to ``FUZZ_campaign.json`` at the repo root.

Campaigns are **resumable**: every finished job is appended to a JSONL
journal next to the report, and a rerun of the same command skips every
seed already journaled.  The final report is computed *only* from the
journal, contains no timing fields, and is sorted deterministically --
so an interrupted campaign, resumed, produces a byte-identical
``FUZZ_campaign.json`` to an uninterrupted one.  A journal whose header
does not match the requested configuration is discarded (different
campaign, not a resume).

``--max-seconds`` is a wall-clock budget: jobs are submitted in batches
and submission stops once the budget is spent (finished work is already
journaled, so the next invocation picks up where this one stopped).

Exit semantics (used by the CLI): **0** all models agree, **1** a job
died in the harness (error/timeout/crashed -- infrastructure, not a
finding), **2** the oracle observed a real, unexplained divergence.
Divergences produced by a planted ``--mutate`` bug are self-test
findings, not real ones; they are reported but exit 0 -- and inversely,
a completed mutation campaign that caught *nothing* exits 2, because
the oracle just missed a bug it was planted to find.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.fuzz.gen import GenConfig, generate_program
from repro.fuzz.oracle import PAIR_GOLDEN_PIPELINE, check_all
from repro.fuzz.shrink import count_instructions, shrink
from repro.harness.bench import REPO_ROOT, write_json_atomic
from repro.harness.runner import ChaosMonkey, Job, Runner

DEFAULT_REPORT = REPO_ROOT / "FUZZ_campaign.json"

#: per-job wall-clock watchdog; generation + three model runs + a shrink
#: of a small program fit comfortably, anything longer hung
JOB_TIMEOUT = 120.0

MODES = ("isa", "lang")


# ------------------------------------------------------------------ worker
def fuzz_point(seed: int, mode: str, quick: bool = False,
               mutation: Optional[str] = None,
               shrink_failures: bool = True) -> Dict[str, Any]:
    """One campaign job: generate, cross-check, shrink on divergence.

    Raises on generator/harness malfunctions (the Runner classifies those
    as harness failures); returns a picklable verdict row otherwise.
    """
    config = GenConfig(mode=mode, quick=quick)
    generated = generate_program(seed, config)
    mutator = None
    if mutation:
        from repro.fuzz.mutation import get_mutator
        mutator = get_mutator(mutation)
    reports = check_all(generated, config=None, golden_mutator=mutator)
    row: Dict[str, Any] = {"seed": seed, "mode": mode}
    if not reports:
        row["status"] = "ok"
        return row
    row["status"] = "diverged"
    row["reports"] = [report.to_dict() for report in reports]
    first = reports[0]
    if shrink_failures and first.pair == PAIR_GOLDEN_PIPELINE:
        small = shrink(generated, first, golden_mutator=mutator)
        row["shrunk_source"] = small.source
        row["shrunk_instructions"] = count_instructions(small.source, mode)
    else:
        # live-vs-replay divergences depend on the whole access stream;
        # record the full program rather than pretending to minimize
        row["shrunk_source"] = generated.source
        row["shrunk_instructions"] = count_instructions(
            generated.source, mode)
    return row


def campaign_jobs(seeds: int, modes: Sequence[str] = MODES,
                  quick: bool = False, mutation: Optional[str] = None,
                  timeout: Optional[float] = JOB_TIMEOUT) -> List[Job]:
    """The seeded job grid: every seed runs in every requested mode."""
    jobs = []
    for mode in modes:
        for seed in range(seeds):
            jobs.append(Job(
                id=f"fuzz/{mode}-{seed:04d}",
                fn="repro.fuzz.campaign:fuzz_point",
                params={"seed": seed, "mode": mode, "quick": quick,
                        "mutation": mutation},
                timeout=timeout,
                sweep="fuzz"))
    return jobs


# ----------------------------------------------------------------- journal
def journal_path_for(output: pathlib.Path) -> pathlib.Path:
    return output.with_name(output.stem + ".journal.jsonl")


def _journal_header(seeds: int, modes: Sequence[str], quick: bool,
                    mutation: Optional[str]) -> Dict[str, Any]:
    return {"journal": 1, "seeds": seeds, "modes": list(modes),
            "quick": quick, "mutation": mutation}


def _load_journal(path: pathlib.Path,
                  header: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Rows already completed, keyed by job id.

    Returns empty (and forgets the file) when the journal is missing or
    belongs to a differently-configured campaign.  A torn final line
    (killed mid-append) is dropped; everything before it is kept.
    """
    if not path.is_file():
        return {}
    rows: Dict[str, Dict[str, Any]] = {}
    with path.open() as stream:
        for index, line in enumerate(stream):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from an interrupted append
            if index == 0:
                if record != header:
                    return {}
                continue
            if isinstance(record, dict) and "id" in record:
                rows.setdefault(record["id"], record)
    return rows


def _append_journal(path: pathlib.Path, records: List[Dict[str, Any]],
                    header: Dict[str, Any], fresh: bool) -> None:
    mode = "w" if fresh else "a"
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open(mode) as stream:
        if fresh:
            stream.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
        stream.flush()


# ------------------------------------------------------------- aggregation
def _aggregate(job_ids: List[str], rows: Dict[str, Dict[str, Any]],
               config: Dict[str, Any]) -> Dict[str, Any]:
    """The campaign report: a pure, order-stable function of the journal."""
    ok = 0
    divergences: List[Dict[str, Any]] = []
    harness: Dict[str, Any] = {}
    for job_id in sorted(job_ids):
        record = rows.get(job_id)
        if record is None:
            continue
        if record["status"] in ("ok", "retried-ok"):
            verdict = record.get("value") or {}
            if verdict.get("status") == "ok":
                ok += 1
            else:
                divergences.append({
                    "seed": verdict.get("seed"),
                    "mode": verdict.get("mode"),
                    "reports": verdict.get("reports", []),
                    "shrunk_instructions":
                        verdict.get("shrunk_instructions"),
                    "shrunk_source": verdict.get("shrunk_source"),
                })
        else:
            harness[job_id] = {"status": record["status"],
                               "error_kind": record.get("error_kind"),
                               "error": record.get("error")}
    completed = sum(1 for job_id in job_ids if job_id in rows)
    payload: Dict[str, Any] = {
        "schema": 1,
        "config": config,
        "totals": {
            "jobs": len(job_ids),
            "completed": completed,
            "ok": ok,
            "diverged": len(divergences),
            "harness_failures": len(harness),
        },
        "complete": completed == len(job_ids),
        "divergences": divergences,
    }
    if harness:
        payload["harness"] = harness
    return payload


# ------------------------------------------------------------------ driver
def run_campaign(seeds: int = 50,
                 modes: Sequence[str] = MODES,
                 quick: bool = False,
                 workers: Optional[int] = None,
                 parallel: bool = True,
                 max_seconds: Optional[float] = None,
                 chaos_rate: float = 0.0,
                 chaos_seed: int = 0,
                 mutation: Optional[str] = None,
                 output: Optional[pathlib.Path] = None,
                 corpus_dir: Optional[pathlib.Path] = None,
                 write_corpus: bool = True) -> Dict[str, Any]:
    """Run (or resume) a campaign and persist the structured report."""
    output = pathlib.Path(output) if output else DEFAULT_REPORT
    journal_file = journal_path_for(output)
    header = _journal_header(seeds, modes, quick, mutation)
    jobs = campaign_jobs(seeds, modes=modes, quick=quick, mutation=mutation)
    job_ids = [job.id for job in jobs]

    rows = _load_journal(journal_file, header)
    fresh = not rows
    pending = [job for job in jobs if job.id not in rows]

    runner = Runner(max_workers=workers,
                    default_timeout=JOB_TIMEOUT,
                    chaos=ChaosMonkey(rate=chaos_rate, seed=chaos_seed))
    batch_size = max(4, (runner.max_workers or 4) * 4)
    started = time.monotonic()
    exhausted = False
    index = 0
    while index < len(pending):
        if (max_seconds is not None and index > 0
                and time.monotonic() - started >= max_seconds):
            exhausted = True
            break
        batch = pending[index:index + batch_size]
        index += len(batch)
        results = runner.run(batch, parallel=parallel)
        records = []
        for result in results:
            if result.status == "interrupted":
                # not a verdict: leave the job out of the journal so a
                # resumed campaign re-runs it
                continue
            record: Dict[str, Any] = {"id": result.job_id,
                                      "status": result.status}
            if result.ok:
                record["value"] = result.value
            else:
                record["error_kind"] = result.error_kind
                record["error"] = result.error
            records.append(record)
            rows[result.job_id] = record
        if records:
            _append_journal(journal_file, records, header, fresh)
            fresh = False
        if runner.interrupted:
            exhausted = True
            break

    config = {"seeds": seeds, "modes": list(modes), "quick": quick,
              "mutation": mutation, "chaos_rate": chaos_rate}
    payload = _aggregate(job_ids, rows, config)
    write_json_atomic(output, payload)

    if write_corpus and mutation is None:
        from repro.fuzz import corpus as corpus_mod
        from repro.fuzz.oracle import DivergenceReport

        for divergence in payload["divergences"]:
            if not divergence.get("reports"):
                continue
            first = divergence["reports"][0]
            report = DivergenceReport(pair=first["pair"],
                                      kind=first["kind"],
                                      mismatches=first["mismatches"])
            base = generate_program(
                divergence["seed"],
                GenConfig(mode=divergence["mode"], quick=quick))
            shrunk = dataclasses.replace(
                base, source=divergence["shrunk_source"])
            corpus_mod.write_entry(shrunk, report, corpus_dir=corpus_dir,
                                   note="auto-filed by repro fuzz")

    payload["report_path"] = str(output)
    payload["journal_path"] = str(journal_file)
    payload["budget_exhausted"] = exhausted
    return payload


def exit_code(payload: Dict[str, Any]) -> int:
    """Map a campaign report to the documented exit taxonomy."""
    if payload["config"].get("mutation"):
        # self-test: divergences are *expected*; a completed campaign
        # that caught nothing means the oracle missed the planted bug
        if payload.get("complete") and not payload["totals"]["diverged"]:
            return 2
    elif payload["totals"]["diverged"]:
        return 2
    if payload["totals"]["harness_failures"]:
        return 1
    return 0


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a campaign report."""
    totals = payload["totals"]
    config = payload["config"]
    lines = [
        f"fuzz campaign     {totals['completed']}/{totals['jobs']} jobs "
        f"({config['seeds']} seeds x {'/'.join(config['modes'])}"
        + (", quick" if config.get("quick") else "")
        + (f", mutation={config['mutation']}" if config.get("mutation")
           else "") + ")",
        f"  agree           {totals['ok']}",
        f"  diverged        {totals['diverged']}",
        f"  harness         {totals['harness_failures']} failed jobs",
    ]
    if payload.get("budget_exhausted"):
        lines.append("  budget exhausted -- rerun the same command to "
                     "resume from the journal")
    for divergence in payload["divergences"][:10]:
        first = divergence["reports"][0] if divergence["reports"] else {}
        mismatches = first.get("mismatches", [])
        detail = (str(mismatches[0].get("detail", mismatches[0]))
                  if mismatches else "")
        lines.append(
            f"  ! {divergence['mode']} seed {divergence['seed']} "
            f"[{first.get('pair')}/{first.get('kind')}] shrunk to "
            f"{divergence['shrunk_instructions']} instructions: {detail}")
    for job_id, failure in sorted(payload.get("harness", {}).items())[:5]:
        lines.append(f"  x {job_id}: {failure['status']} "
                     f"({failure.get('error_kind')})")
    return "\n".join(lines)
