"""Differential fuzzing of the three MIPS-X semantic models.

The repository holds three independent executions of MIPS-X semantics:
the naive instruction-level golden simulator (:mod:`repro.core.golden`),
the cycle-accurate pipeline (:mod:`repro.core.pipeline`), and the
vectorized trace-replay statistics models (:mod:`repro.icache.trace_sim`
et al.).  This package turns that redundancy into a standing correctness
guarantee:

* :mod:`repro.fuzz.gen` -- a seeded random program generator
  (terminating and memory-bounded by construction), in two modes:
  structured random instruction sequences through the assembler, and
  random SPL programs through the compiler + reorganizer;
* :mod:`repro.fuzz.oracle` -- the differential oracle: naive code on the
  golden model vs. reorganized code on the pipeline (the reorganizer
  contract), live-captured cache streams vs. the trace-replay models,
  and the interpretive pipeline vs. the translated fast path
  (bit-exact, cycles included);
* :mod:`repro.fuzz.shrink` -- delta-debugging minimization of a failing
  program to a smallest reproducer;
* :mod:`repro.fuzz.corpus` -- the ``fuzz_corpus/`` directory of shrunk
  reproducers, replayed as a tier-1 regression test;
* :mod:`repro.fuzz.campaign` -- the ``repro fuzz`` campaign driver over
  the hardened parallel :class:`~repro.harness.runner.Runner`.
"""

from repro.fuzz.gen import (
    GenConfig,
    GeneratedProgram,
    generate_program,
)
from repro.fuzz.oracle import (
    DivergenceReport,
    check_jit_equivalence,
    check_program,
    check_trace_replay,
)
from repro.fuzz.shrink import shrink

__all__ = [
    "GenConfig",
    "GeneratedProgram",
    "generate_program",
    "DivergenceReport",
    "check_jit_equivalence",
    "check_program",
    "check_trace_replay",
    "shrink",
]
