"""Dev-only semantic mutations for testing the fuzzer itself.

A mutation plants a *known* bug in the golden model so tests (and the
``repro fuzz --mutate`` dev flag) can assert the end-to-end loop works:
the differential oracle must catch the planted divergence and the
shrinker must reduce it to a tiny reproducer.  Mutations patch one
simulator *instance* (never the class), so nothing leaks between runs.

These hooks exist only to validate the fuzzing harness; production
campaigns never set them, and a campaign report records the active
mutation so a mutated run can never masquerade as a real finding.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.datapath import FunnelShifter, to_signed, to_unsigned
from repro.core.golden import GoldenSimulator
from repro.isa.opcodes import Funct, Opcode


def _mutate_sra_logical(sim: GoldenSimulator) -> None:
    """SRA loses its sign extension (behaves like SRL)."""
    original = sim.step

    def step() -> None:
        instr_word = sim.memory.system.read(sim.pc)
        from repro.isa.encoding import decode

        instr = decode(instr_word)
        if (instr.opcode == Opcode.COMPUTE and instr.funct == Funct.SRA):
            sim.instructions += 1
            sim.regs[instr.dst] = FunnelShifter.srl(sim.regs[instr.src1],
                                                    instr.shamt)
            sim.pc += 1
            return
        original()

    sim.step = step  # type: ignore[method-assign]


def _mutate_addi_trunc(sim: GoldenSimulator) -> None:
    """ADDI sign-extends only 8 bits of its immediate."""
    original = sim.step

    def step() -> None:
        from repro.isa.encoding import decode

        instr = decode(sim.memory.system.read(sim.pc))
        if instr.opcode == Opcode.ADDI:
            sim.instructions += 1
            imm = instr.imm & 0xFF
            if imm & 0x80:
                imm -= 0x100
            sim.regs[instr.src2] = to_unsigned(
                to_signed(sim.regs[instr.src1]) + imm)
            sim.pc += 1
            return
        original()

    sim.step = step  # type: ignore[method-assign]


def _mutate_branch_off_by_one(sim: GoldenSimulator) -> None:
    """Taken branches land one instruction past their target."""
    from repro.core.datapath import Alu
    from repro.core.golden import _CONDITIONS
    from repro.isa.encoding import decode

    original = sim.step

    def step() -> None:
        instr = decode(sim.memory.system.read(sim.pc))
        if instr.opcode in _CONDITIONS:
            sim.instructions += 1
            taken = Alu.compare(_CONDITIONS[instr.opcode],
                                sim.regs[instr.src1], sim.regs[instr.src2])
            sim.pc = sim.pc + instr.imm + 1 if taken else sim.pc + 1
            return
        original()

    sim.step = step  # type: ignore[method-assign]


#: name -> mutator applied to a GoldenSimulator instance (dev-only)
MUTATIONS: Dict[str, Callable[[GoldenSimulator], None]] = {
    "sra-logical": _mutate_sra_logical,
    "addi-trunc8": _mutate_addi_trunc,
    "branch-off-by-one": _mutate_branch_off_by_one,
}


def get_mutator(name: str) -> Callable[[GoldenSimulator], None]:
    if name not in MUTATIONS:
        raise KeyError(
            f"unknown mutation {name!r} (have: {', '.join(sorted(MUTATIONS))})")
    return MUTATIONS[name]
