"""Delta-debugging shrinker: minimize a failing program.

Given a generated program that the differential oracle rejects, the
shrinker searches for a smallest sub-program that *still fails the same
way* (same model pair, same divergence kind).  The algorithm is
Zeller-style ddmin over removable source lines, followed by a one-by-one
elimination sweep, bounded by ``max_evals`` oracle evaluations.

Soundness: deleting lines can change which addresses a surviving load or
store touches (its base register may no longer be initialized), and a
stray access outside the generator's bounded data region could fabricate
an artificial divergence (e.g. reading *code*, which legitimately
differs between the naive and reorganized images).  Every candidate is
therefore pre-validated with a **monitored golden run** that rejects any
data access outside the data region or the MMIO window; invalid
candidates count as "does not fail" and are never kept.

Lang-mode programs shrink at SPL *statement* granularity (whole
``begin``/``end`` groups or single assignment lines), so every candidate
still parses and still terminates.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Sequence, Tuple

from repro.asm.assembler import parse as parse_asm
from repro.core.golden import GoldenSimulator
from repro.fuzz.gen import GeneratedProgram
from repro.fuzz.oracle import (
    DivergenceReport,
    FuzzProgramError,
    check_program,
)

#: default cap on oracle evaluations during one shrink
DEFAULT_MAX_EVALS = 400

_LABEL_LINE = re.compile(r"^\s*[A-Za-z_.$][\w.$]*:\s*$")
_DIRECTIVE_LINE = re.compile(r"^\s*\.")
#: instruction lines that anchor control structure and are never removed
_PINNED = re.compile(r"^\s*(halt|ret)\b")


class _OutOfBounds(Exception):
    pass


def _monitored_golden_ok(generated: GeneratedProgram) -> bool:
    """Assemble + run the naive program with data accesses bounds-checked.

    Returns False when the candidate does not assemble, does not halt,
    or touches data memory outside ``[data_base, data_base+data_words)``
    or the MMIO window -- all signs the deletion changed the program's
    meaning rather than shrinking the failure.
    """
    try:
        program = parse_asm(generated.source).assemble()
    except (ValueError, KeyError):
        return False
    sim = GoldenSimulator()
    low = generated.data_base
    high = generated.data_base + generated.data_words
    mmio_base = sim.memory.mmio_base

    def in_bounds(address: int) -> bool:
        return low <= address < high or address >= mmio_base

    original_read = sim.memory.read
    original_write = sim.memory.write

    def read(address: int, system_mode: bool) -> int:
        if not in_bounds(address):
            raise _OutOfBounds
        return original_read(address, system_mode)

    def write(address: int, value: int, system_mode: bool) -> None:
        if not in_bounds(address):
            raise _OutOfBounds
        original_write(address, value, system_mode)

    sim.memory.read = read        # type: ignore[method-assign]
    sim.memory.write = write      # type: ignore[method-assign]
    sim.load_program(program)
    try:
        sim.run(generated.max_instructions)
    except (_OutOfBounds, Exception):
        return False
    return sim.halted


def count_instructions(source: str, mode: str = "isa") -> int:
    """Number of instruction statements in a (shrunk) program."""
    if mode == "lang":
        return sum(1 for line in source.splitlines()
                   if line.strip() and not line.strip().startswith(
                       ("program", "var", "begin", "end")))
    count = 0
    for line in source.splitlines():
        stripped = line.split(";")[0].split("#")[0].strip()
        if not stripped or _LABEL_LINE.match(stripped + ":") and False:
            continue
        if _LABEL_LINE.match(line) or _DIRECTIVE_LINE.match(stripped):
            continue
        if stripped.endswith(":"):
            continue
        count += 1
    return count


# ------------------------------------------------------------------ ddmin
def _ddmin(units: List[int],
           fails: Callable[[Sequence[int]], bool],
           budget: List[int]) -> List[int]:
    """Classic ddmin over unit indices; ``fails(kept)`` drives the search."""
    n = 2
    while len(units) >= 2 and budget[0] > 0:
        chunk_size = max(1, len(units) // n)
        chunks = [units[i:i + chunk_size]
                  for i in range(0, len(units), chunk_size)]
        reduced = False
        for chunk in chunks:                       # reduce to subset
            budget[0] -= 1
            if budget[0] <= 0:
                return units
            if fails(chunk):
                units, n, reduced = list(chunk), 2, True
                break
        if not reduced:
            for chunk in chunks:                   # reduce to complement
                kept = [u for u in units if u not in set(chunk)]
                if not kept:
                    continue
                budget[0] -= 1
                if budget[0] <= 0:
                    return units
                if fails(kept):
                    units, n, reduced = kept, max(n - 1, 2), True
                    break
        if not reduced:
            if n >= len(units):
                break
            n = min(len(units), 2 * n)
    # final sweep: drop units one at a time
    index = 0
    while index < len(units) and budget[0] > 0:
        kept = units[:index] + units[index + 1:]
        if kept:
            budget[0] -= 1
            if fails(kept):
                units = kept
                continue
        index += 1
    return units


# ----------------------------------------------------------- asm shrinking
def _asm_units(source: str) -> Tuple[List[str], List[int]]:
    """Split asm text into lines + indices of removable instruction lines."""
    lines = source.splitlines()
    removable = []
    for index, line in enumerate(lines):
        stripped = line.split(";")[0].split("#")[0].strip()
        if (not stripped or stripped.endswith(":")
                or _DIRECTIVE_LINE.match(stripped)
                or _PINNED.match(stripped)):
            continue
        removable.append(index)
    return lines, removable


def _rebuild_asm(lines: List[str], removable: List[int],
                 kept: Sequence[int]) -> str:
    kept_set = set(kept)
    dropped = set(removable) - kept_set
    return "\n".join(line for index, line in enumerate(lines)
                     if index not in dropped) + "\n"


# ----------------------------------------------------------- spl shrinking
def _spl_units(source: str) -> Tuple[List[str], List[List[int]]]:
    """Group SPL body lines into removable statement units.

    A unit is either one simple ``...;`` line or a compound statement
    (its header through its matching ``end;``).  Header/declaration
    lines and the trailing ``write`` dump stay fixed.
    """
    lines = source.splitlines()
    units: List[List[int]] = []
    try:
        body_start = next(i for i, line in enumerate(lines)
                          if line.strip() == "begin") + 1
        body_end = next(i for i in range(len(lines) - 1, -1, -1)
                        if lines[i].strip() == "end.")
    except StopIteration:
        return lines, []
    index = body_start
    while index < body_end:
        stripped = lines[index].strip()
        if stripped.startswith("write("):
            break                                  # fixed output dump
        if stripped.endswith("begin"):
            depth, end = 1, index
            while depth and end + 1 < body_end:
                end += 1
                text = lines[end].strip()
                if text.endswith("begin"):
                    depth += 1
                elif text.startswith("end"):
                    depth -= 1
            units.append(list(range(index, end + 1)))
            index = end + 1
        else:
            units.append([index])
            index += 1
    return lines, units


def _rebuild_spl(lines: List[str], units: List[List[int]],
                 kept: Sequence[int]) -> str:
    dropped = set()
    for unit_index, unit in enumerate(units):
        if unit_index not in set(kept):
            dropped.update(unit)
    return "\n".join(line for index, line in enumerate(lines)
                     if index not in dropped) + "\n"


# ------------------------------------------------------------------ driver
def shrink(generated: GeneratedProgram,
           report: DivergenceReport,
           config=None,
           golden_mutator=None,
           max_evals: int = DEFAULT_MAX_EVALS) -> GeneratedProgram:
    """Minimize ``generated`` while it keeps failing like ``report``.

    Returns a new :class:`GeneratedProgram` whose source is the smallest
    found failing version (the original is returned unchanged if nothing
    smaller still fails, e.g. for trace-replay divergences that depend
    on the whole access stream).
    """
    target = (report.pair, report.kind)
    budget = [max_evals]

    def still_fails(candidate: GeneratedProgram) -> bool:
        if candidate.mode == "isa" and not _monitored_golden_ok(candidate):
            return False
        try:
            found = check_program(candidate, config=config,
                                  golden_mutator=golden_mutator)
        except FuzzProgramError:
            return False
        except Exception:
            return False
        return found is not None and (found.pair, found.kind) == target

    import dataclasses as _dc

    if generated.mode == "lang":
        lines, units = _spl_units(generated.source)
        if not units:
            return generated

        def fails(kept: Sequence[int]) -> bool:
            source = _rebuild_spl(lines, units, kept)
            return still_fails(_dc.replace(generated, source=source))

        kept = _ddmin(list(range(len(units))), fails, budget)
        return _dc.replace(generated,
                           source=_rebuild_spl(lines, units, kept))

    lines, removable = _asm_units(generated.source)
    if not removable:
        return generated

    def fails(kept: Sequence[int]) -> bool:
        source = _rebuild_asm(lines, removable, kept)
        return still_fails(_dc.replace(generated, source=source))

    kept = _ddmin(list(removable), fails, budget)
    return _dc.replace(generated,
                       source=_rebuild_asm(lines, removable, kept))
