"""Load-delay handling and static hazard verification.

MIPS-X performs no hardware interlocking: the software system must
guarantee that no instruction reads a register in the delay slot of the
load that writes it (one slot -- load data arrives at the end of MEM).
This module provides:

* :func:`pad_load_delays` -- the reorganizer pass that separates
  load-use adjacencies, preferably by scheduling an independent
  instruction into the gap and otherwise by inserting a no-op (each
  inserted no-op is a cycle the paper's 15.6%/18.3% no-op fractions
  count);
* :func:`verify_unit` -- a static checker used as the test safety net:
  it walks every execution adjacency (fall-through and branch edges) of a
  finished unit and reports delay-slot violations.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

from repro.asm.unit import AsmUnit, Label, Op
from repro.isa import instruction as I
from repro.isa.opcodes import Funct, Opcode
from repro.reorg.cfg import BasicBlock, Cfg

#: opcodes whose destination register carries load timing (data at end of MEM)
LOAD_LIKE = (Opcode.LD, Opcode.MOVFRC)

#: compute functs that are unsafe to move or copy (machine-state effects)
PINNED_FUNCTS = {Funct.MOVTOS, Funct.TRAP, Funct.JPC, Funct.JPCRS, Funct.HALT}

#: compute functs that read / write the special-register file (MD, PSW).
#: The file is modelled as a single scheduling resource: MSTEP and DSTEP
#: shift MD as a side effect, so reordering one across a MOVFRS changes
#: which value the move observes even though no GPR dependence connects
#: them (this is exactly the multiply-runtime loop: the early-out test
#: must read MD *after* the step of its own iteration).
SPECIAL_READ_FUNCTS = {Funct.MSTEP, Funct.DSTEP, Funct.MOVFRS}
SPECIAL_WRITE_FUNCTS = {Funct.MSTEP, Funct.DSTEP, Funct.MOVTOS}


def is_load_like(op: Op) -> bool:
    return op.instr.opcode in LOAD_LIKE


def is_pinned(op: Op) -> bool:
    """Ops that must not be moved or duplicated by the reorganizer."""
    instr = op.instr
    if instr.is_control:
        return True
    if instr.opcode == Opcode.COMPUTE and instr.funct in PINNED_FUNCTS:
        return True
    return False


def reads(op: Op) -> Set[int]:
    return {register for register in op.instr.reads_registers() if register}


def writes(op: Op) -> Optional[int]:
    return op.instr.writes_register()


def special_access(op: Op) -> tuple:
    """(reads special file, writes special file) for scheduling purposes."""
    instr = op.instr
    if instr.opcode != Opcode.COMPUTE or instr.funct is None:
        return (False, False)
    return (instr.funct in SPECIAL_READ_FUNCTS,
            instr.funct in SPECIAL_WRITE_FUNCTS)


def _special_conflict(candidate: Op, other: Op) -> bool:
    """True when reordering the pair would break a dependence through the
    special-register file (RAW, WAR, or WAW on MD/PSW)."""
    cand_reads, cand_writes = special_access(candidate)
    other_reads, other_writes = special_access(other)
    return ((cand_writes and (other_reads or other_writes))
            or (cand_reads and other_writes))


@dataclasses.dataclass
class PadStats:
    load_use_pairs: int = 0
    scheduled: int = 0      #: gaps filled by moving an independent op
    nops_inserted: int = 0  #: gaps filled with a no-op


def memory_region(op: Op):
    """Classify a memory access for alias analysis.

    Returns one of:

    * ``("global", symbol)`` -- a symbolic global (scalar or array); two
      accesses with *different* symbols never alias (distinct objects,
      assuming in-bounds indexing, the standard compiler assumption);
    * ``("frame", offset)`` -- sp-relative scalar access; two different
      offsets never alias (within one frame);
    * ``("unknown", None)`` -- computed address: aliases everything.
    """
    instr = op.instr
    if op.target is not None:
        return ("global", op.target)
    if instr.src1 == 1:  # sp-relative
        return ("frame", instr.imm)
    return ("unknown", None)


def may_alias(op_a: Op, op_b: Op) -> bool:
    """Conservative may-alias for two data-memory accesses."""
    region_a, region_b = memory_region(op_a), memory_region(op_b)
    if region_a[0] == "unknown" or region_b[0] == "unknown":
        return True
    if region_a[0] != region_b[0]:
        return False  # frame slot vs global object
    if region_a[0] == "global":
        # same symbol: scalar or array elements may coincide
        return region_a[1] == region_b[1]
    return region_a[1] == region_b[1]  # frame offsets


def _memory_conflict(candidate: Op, other: Op) -> bool:
    """Would reordering ``candidate`` across ``other`` change memory
    behaviour?  Two loads always commute; otherwise require non-alias.
    Coprocessor operations never reorder (they are I/O-like)."""
    cand_mem = candidate.instr.is_memory_access
    cand_cop = candidate.instr.is_coprocessor
    other_mem = other.instr.is_memory_access
    other_cop = other.instr.is_coprocessor
    if cand_cop or other_cop:
        return cand_cop and other_cop or (cand_cop and other_mem) or (
            other_cop and cand_mem)
    if not (cand_mem and other_mem):
        return False
    if candidate.instr.is_load and other.instr.is_load:
        return False
    return may_alias(candidate, other)


def _independent(candidate: Op, crossed: List[Op]) -> bool:
    """True if ``candidate`` may move upward past every op in ``crossed``."""
    if is_pinned(candidate):
        return False
    cand_reads = reads(candidate)
    cand_write = writes(candidate)
    for other in crossed:
        other_write = writes(other)
        if other_write is not None and other_write in cand_reads:
            return False
        if cand_write is not None and (cand_write in reads(other)
                                       or cand_write == other_write):
            return False
        if _memory_conflict(candidate, other):
            return False
        if _special_conflict(candidate, other):
            return False
    return True


def pad_load_delays(cfg: Cfg, schedule: bool = True) -> PadStats:
    """Separate every load-use adjacency along the fall-through paths.

    Works block by block; a load that ends a block and falls through to a
    consumer in the next block gets a no-op (cross-block scheduling is not
    attempted, matching the conservatism of the Stanford reorganizer).
    """
    stats = PadStats()
    for position, block in enumerate(cfg.blocks):
        index = 0
        while index < len(block.ops):
            op = block.ops[index]
            dest = writes(op)
            if not (is_load_like(op) and dest is not None):
                index += 1
                continue
            consumer = block.ops[index + 1] if index + 1 < len(block.ops) else None
            if consumer is None:
                # fall-through into the next block's first op
                if block.falls_through() and position + 1 < len(cfg.blocks):
                    successor = cfg.blocks[position + 1]
                    if successor.ops and dest in reads(successor.ops[0]):
                        stats.load_use_pairs += 1
                        stats.nops_inserted += 1
                        block.ops.append(Op(I.nop(), source="load pad"))
                index += 1
                continue
            if dest not in reads(consumer):
                index += 1
                continue
            stats.load_use_pairs += 1
            filled = False
            if schedule:
                filler = _find_filler(block, index, dest)
                if filler is not None:
                    block.ops.remove(filler)
                    block.ops.insert(index + 1, filler)
                    filled = True
                elif _pull_filler_from_above(block, index):
                    filled = True
            if filled:
                stats.scheduled += 1
            else:
                block.ops.insert(index + 1, Op(I.nop(), source="load pad"))
                stats.nops_inserted += 1
            index += 1
    return stats


def _find_filler(block: BasicBlock, load_index: int, dest: int) -> Optional[Op]:
    """Find an op later in the block that can legally sit in the gap."""
    terminator = block.terminator
    for j in range(load_index + 2, len(block.ops)):
        candidate = block.ops[j]
        if candidate is terminator:
            break
        # the filler lands directly after the load, so it must not read the
        # loaded register; writing it would clobber the consumer's input
        if dest in reads(candidate) or writes(candidate) == dest:
            continue
        crossed = block.ops[load_index + 1:j]
        if _independent(candidate, crossed):
            return candidate
    return None


def _pull_filler_from_above(block: BasicBlock, load_index: int) -> bool:
    """Fill the gap by sliding an *earlier* independent op below the load.

    The independence conditions for moving an op down across a window are
    the same symmetric set as for moving one up, so :func:`_independent`
    is reused; additionally, a load-like filler must not feed the consumer
    it now sits next to (that would recreate the violation one op later).
    """
    consumer = block.ops[load_index + 1]
    for j in range(load_index - 1, max(-1, load_index - 6), -1):
        candidate = block.ops[j]
        if is_pinned(candidate):
            break
        if (is_load_like(candidate)
                and writes(candidate) in reads(consumer)):
            continue
        # removing the candidate must not butt an earlier load against a
        # consumer of its own (a fresh violation behind the scan point)
        if j > 0:
            above = block.ops[j - 1]
            below = block.ops[j + 1]
            if (is_load_like(above)
                    and writes(above) in reads(below)):
                continue
        crossed = block.ops[j + 1:load_index + 1]
        if _independent(candidate, crossed):
            del block.ops[j]
            block.ops.insert(load_index, candidate)
            return True
    return False


# --------------------------------------------------------------- verifier
def verify_unit(unit: AsmUnit, slots: int = 2) -> List[str]:
    """Statically check a finished unit for delay-slot violations.

    Checks every fall-through adjacency and, for each control transfer
    with a statically known target, the edge from its last delay slot to
    the target instruction.  Returns human-readable violation strings
    (empty = clean).
    """
    violations: List[str] = []
    ops: List[Op] = []
    label_at: dict = {}
    for item in unit.items:
        if isinstance(item, Label):
            label_at[item.name] = len(ops)
        elif isinstance(item, Op):
            ops.append(item)

    # positions whose *linear* successor never executes right after them:
    # the last slot of a squashing branch (slots squashed on fall-through)
    # and of an unconditional transfer (fall path unreachable)
    skip_linear = set()
    for index, op in enumerate(ops):
        instr = op.instr
        if not instr.is_control:
            continue
        squashes_fall = instr.is_branch and instr.squash
        always_leaves = instr.is_jump or (
            instr.is_branch and instr.src1 == 0 and instr.src2 == 0)
        if squashes_fall or always_leaves:
            skip_linear.add(index + slots)

    def check_pair(producer: Op, consumer: Op, where: str) -> None:
        dest = writes(producer)
        if (is_load_like(producer) and dest is not None
                and dest in reads(consumer)):
            violations.append(
                f"load delay violation {where}: {producer.instr} -> "
                f"{consumer.instr}")

    for index, op in enumerate(ops):
        if index + 1 < len(ops) and index not in skip_linear:
            check_pair(op, ops[index + 1], f"at op {index}")
        if op.instr.is_control and op.target is not None:
            target_index = label_at.get(op.target)
            if target_index is None or target_index >= len(ops):
                continue
            last_slot = index + slots
            if last_slot < len(ops):
                check_pair(ops[last_slot], ops[target_index],
                           f"across branch at op {index}")
    return violations
