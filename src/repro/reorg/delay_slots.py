"""Branch delay-slot filling under the six schemes of Table 1.

The paper's strategy hierarchy for filling slots:

1. move an instruction from *before* the branch into the slot (always
   correct: the instruction executes on both paths either way);
2. with squashing, take instructions from the *predicted* path -- the
   branch target for predicted-taken branches (``squash if don't go``:
   the hardware no-ops the slots when the branch falls through), or the
   fall-through for predicted-not-taken ones (``squash if go``);
3. a no-op, which is pure branch cost.

MIPS-X ships only ``no squash`` and ``squash if don't go`` (static
prediction says most branches go), so fills of kind ``FALL`` are *plans
only*: the evaluation in :mod:`repro.analysis.branch_schemes` costs them
out exactly as the design team did from traces, while the emitted, runnable
code replaces them with no-ops unless the scheme is hardware-realizable.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.asm.unit import Op
from repro.isa import instruction as I
from repro.isa.opcodes import Opcode
from repro.reorg.cfg import BasicBlock, Cfg
from repro.reorg.hazards import is_load_like, is_pinned, reads, writes


@dataclasses.dataclass(frozen=True)
class BranchScheme:
    """One point in the Table 1 design space."""

    slots: int = 2
    squash: str = "optional"    #: "none" | "always" | "optional"
    squash_if_go: bool = True   #: squash-if-go available (evaluation only)
    name: str = ""

    def __post_init__(self):
        if self.squash not in ("none", "always", "optional"):
            raise ValueError(f"unknown squash mode {self.squash!r}")
        if self.slots not in (1, 2):
            raise ValueError("slots must be 1 or 2")


#: the machine as built: 2 slots, squash optional, squash-if-don't-go only
MIPSX_SCHEME = BranchScheme(2, "optional", squash_if_go=False,
                            name="mips-x (2-slot squash optional)")

#: the six rows of Table 1
TABLE1_SCHEMES = [
    BranchScheme(2, "none", name="2-slot no squash"),
    BranchScheme(2, "always", name="2-slot always squash"),
    BranchScheme(2, "optional", name="2-slot squash optional"),
    BranchScheme(1, "none", name="1-slot no squash"),
    BranchScheme(1, "always", name="1-slot always squash"),
    BranchScheme(1, "optional", name="1-slot squash optional"),
]


class SlotFill(enum.Enum):
    ABOVE = "above"     #: moved from before the branch; useful on both paths
    TARGET = "target"   #: copied from the taken path (squash if don't go)
    FALL = "fall"       #: fall-through instructions (squash if go)
    NOP = "nop"         #: unfilled


@dataclasses.dataclass
class BranchPlan:
    """Fill decision for one control transfer, used by the Table 1 cost
    model.  ``op`` is the branch's Op object (its assembled address can be
    recovered through ``AsmUnit.layout``)."""

    op: Op
    conditional: bool
    predicted_taken: bool
    fills: List[SlotFill]

    def cost(self, taken: bool) -> int:
        """Cycles this branch costs for one execution (1 + wasted slots)."""
        wasted = 0
        for fill in self.fills:
            if fill is SlotFill.NOP:
                wasted += 1
            elif fill is SlotFill.TARGET and not taken:
                wasted += 1
            elif fill is SlotFill.FALL and taken:
                wasted += 1
        return 1 + wasted


@dataclasses.dataclass
class FillStats:
    branches: int = 0
    jumps: int = 0
    slots_total: int = 0
    filled_above: int = 0
    filled_target: int = 0
    filled_fall: int = 0
    filled_nop: int = 0

    @property
    def fill_rate(self) -> float:
        useful = self.filled_above + self.filled_target + self.filled_fall
        return useful / self.slots_total if self.slots_total else 0.0


def _movable_past(candidate: Op, control: Op) -> bool:
    """May ``candidate`` move from before ``control`` into its slots?"""
    if is_pinned(candidate):
        return False
    cand_write = writes(candidate)
    if cand_write is not None:
        if cand_write in reads(control):
            return False            # would corrupt the condition/address
        if cand_write == writes(control):
            return False            # would clobber the link register
    return True


def _copyable(op: Op) -> bool:
    """May ``op`` be duplicated into a squash-filled slot?"""
    return not is_pinned(op) and not op.instr.is_nop


def _continuation_entry_ops(cfg: Optional["Cfg"], block: BasicBlock) -> List[Op]:
    """First instruction of each statically-known successor path."""
    entries: List[Op] = []
    control = block.terminator
    if control is None or cfg is None:
        return entries
    target = cfg.target_block(control)
    if target is not None:
        if target.body:
            entries.append(target.body[0])
        elif target.terminator is not None:
            entries.append(target.terminator)
    if block.falls_through() and block.index + 1 < len(cfg.blocks):
        successor = cfg.blocks[block.index + 1]
        if successor.ops:
            entries.append(successor.ops[0])
    return entries


def _quick_slot_ok(candidate: Op, control: Op, cfg: Optional["Cfg"],
                   block: BasicBlock) -> bool:
    """1-slot schemes: the slot op executes at distance 1 from the next
    path's first instruction, which -- under quick compare -- must not be
    a branch reading anything the slot op writes.  Loads never qualify
    (their delay reaches two instructions past the slot), and indirect
    jumps (unknown continuation) only accept non-writing ops."""
    if is_load_like(candidate):
        return False
    dest = writes(candidate)
    if dest is None:
        return True
    if control.instr.is_jump and control.target is None:
        return False  # indirect jump: continuation unknown
    for entry in _continuation_entry_ops(cfg, block):
        if entry.instr.is_branch and dest in reads(entry):
            return False
    return True


def repair_quick_slots(cfg: Cfg) -> int:
    """Re-validate 1-slot move-from-above fills after *every* block's
    phase 1 has run.

    Phase 1 checks a slot candidate against the target block's entry
    instruction, but a later block's own phase 1 can move that entry
    instruction into its slots, exposing a branch at the entry.  This pass
    re-checks each moved slot op against the now-stable continuations and
    reverts any offender into the block body.  Returns reverts performed.
    """
    reverted = 0
    for block in cfg.blocks:
        control = block.terminator
        if control is None or not block.slot_ops:
            continue
        kept: List[Op] = []
        for op in block.slot_ops:
            if _quick_slot_ok(op, control, cfg, block):
                kept.append(op)
            else:
                block.ops.insert(len(block.ops) - 1, op)
                reverted += 1
        block.slot_ops = kept
    return reverted


#: how far above the branch the move-from-above scan looks
_SCAN_DEPTH = 10


def select_move_from_above(block: BasicBlock, slots: int,
                           cfg: Optional["Cfg"] = None) -> List[Op]:
    """Phase 1: pull movable instructions from above into the slots.

    The scan is not limited to a contiguous suffix: an instruction that is
    independent of everything between itself and the branch (typically the
    branch's condition producers) may hop over them -- the same legality
    rule as any downward code motion.  Removing a non-adjacent op must not
    butt a load against a consumer, and a load never lands in the *last*
    slot (its delay slot would be the unknown first instruction of a
    successor path).
    """
    from repro.reorg.hazards import _independent  # shared legality rule

    control = block.terminator
    if control is None:
        return []
    moved: List[Op] = []
    body = block.body
    index = len(body) - 1
    blockers: List[Op] = [control]
    scanned = 0
    while index >= 0 and len(moved) < slots and scanned < _SCAN_DEPTH:
        scanned += 1
        candidate = body[index]
        ok = (_movable_past(candidate, control)
              and _independent(candidate, blockers))
        if ok and slots == 1:
            ok = _quick_slot_ok(candidate, control, cfg, block)
        if ok and index > 0:
            # removal must not butt a load above against the consumer that
            # becomes its new neighbour (blockers[0] is the nearest op
            # below this position that stays behind; at minimum, the
            # control itself)
            above = body[index - 1]
            below = blockers[0]
            if is_load_like(above) and writes(above) in reads(below):
                ok = False
        if (ok and moved and is_load_like(candidate)
                and writes(candidate) in reads(moved[0])):
            # in the slots the candidate sits directly before the
            # previously selected op: load-delay rule applies there too
            ok = False
        if ok:
            moved.insert(0, candidate)
        else:
            blockers.insert(0, candidate)
        index -= 1
    # conservative: no load in the final slot position when the slots are
    # completely filled by moved ops.  Shrink from the FRONT: the moved
    # ops must stay a contiguous suffix ending at the control, or an
    # earlier op would illegally jump over the ones left behind.
    while len(moved) == slots and is_load_like(moved[-1]):
        moved.pop(0)
    for op in moved:
        block.ops.remove(op)
    # moving the suffix away must not bring a load that feeds the control
    # adjacent to it (the control reads its sources one cycle after the
    # load's ALU -- exactly the load delay slot)
    while moved:
        remaining_body = block.body
        if (remaining_body and is_load_like(remaining_body[-1])
                and writes(remaining_body[-1]) in reads(control)):
            returned = moved.pop(0)
            block.ops.insert(len(block.ops) - 1, returned)
        else:
            break
    block.slot_ops.extend(moved)
    return moved


def predict_taken(cfg: Cfg, block: BasicBlock, op: Op,
                  profile: Optional[Dict[int, bool]] = None,
                  branch_index: int = 0) -> bool:
    """Static prediction: profile first, else backward-taken/forward-not."""
    if profile is not None and branch_index in profile:
        return profile[branch_index]
    target = cfg.target_block(op)
    if target is None:
        return True
    return target.index <= block.index


def fill_block_slots(cfg: Cfg, block: BasicBlock, scheme: BranchScheme,
                     predicted_taken: bool, stats: FillStats,
                     synthetic_labels: Dict,
                     emit_unrunnable_as_nops: bool = True
                     ) -> Optional[BranchPlan]:
    """Phase 2 for one block: squash-fill the remaining slots.

    Assumes phase 1 (:func:`select_move_from_above`) has run for *all*
    blocks, so target-block bodies are stable.
    """
    control = block.terminator
    if control is None:
        return None
    instr = control.instr
    always_taken = (not instr.is_branch) or (
        instr.opcode == Opcode.BEQ and instr.src1 == 0 and instr.src2 == 0)
    conditional = instr.is_branch and not always_taken
    if conditional:
        stats.branches += 1
    else:
        stats.jumps += 1
    stats.slots_total += scheme.slots

    target = cfg.target_block(control)
    can_squash_target = (always_taken
                         or scheme.squash in ("always", "optional"))
    can_squash_fall = (conditional and scheme.squash_if_go
                       and scheme.squash in ("always", "optional"))

    # The single squash bit covers *every* slot, so a conditional branch
    # either keeps its slots always-executed (move-from-above fills plus
    # no-ops) or squash-fills ALL of them from the predicted path -- the
    # two kinds cannot mix.  Unconditional transfers may mix freely, since
    # their slots always execute.
    #
    # A squashed slot strictly dominates a no-op slot (it costs a cycle
    # only when the branch goes the wrong way, a no-op always does), so
    # target fill competes on *expected* useful slots: k copies are worth
    # k x P(taken), move-from-above fills are worth 1 each.
    above_count = len(block.slot_ops)
    fills: List[SlotFill] = []

    use_target_fill = False
    quick = scheme.slots == 1
    copies: List[Op] = []
    will_plan_fall = (can_squash_fall and not predicted_taken
                      and _fall_through_depth(cfg, block) > 0
                      and above_count == 0)
    if target is not None and can_squash_target and not will_plan_fall:
        if always_taken:
            copies = _select_copies(block, target,
                                    scheme.slots - above_count, quick)
            use_target_fill = bool(copies)
        else:
            candidate_copies = _select_copies_exclusive(
                target, scheme.slots, quick)
            taken_probability = 0.8 if predicted_taken else 0.35
            worth = len(candidate_copies) * taken_probability
            if candidate_copies and (
                    worth > above_count
                    or (scheme.squash == "always" and not above_count)):
                copies = candidate_copies
                use_target_fill = True
                _revert_moved(block)
                above_count = 0

    fills.extend([SlotFill.ABOVE] * above_count)
    stats.filled_above += above_count
    remaining = scheme.slots - above_count

    if use_target_fill and copies:
        key = (target.index, len(copies))
        label = synthetic_labels.get(key)
        if label is None:
            label = f"{control.target}__sq{len(synthetic_labels)}"
            synthetic_labels[key] = label
            target.inner_labels.setdefault(len(copies), []).append(label)
        control.target = label
        for copy in copies:
            block.slot_ops.append(Op(copy.instr, target=copy.target,
                                     source=copy.source))
            fills.append(SlotFill.TARGET)
            stats.filled_target += 1
        remaining -= len(copies)
        if conditional:
            control.instr = dataclasses.replace(control.instr, squash=True)
    elif (remaining > 0 and above_count == 0 and can_squash_fall
          and not predicted_taken):
        # plan-only: the fall-through instructions act as squash-if-go
        # slots.  MIPS-X hardware cannot run this, so the emitted code
        # keeps explicit no-ops unless the caller opts out.
        planned = min(remaining, _fall_through_depth(cfg, block))
        for _ in range(planned):
            fills.append(SlotFill.FALL)
            stats.filled_fall += 1
        remaining -= planned
        if not emit_unrunnable_as_nops:
            raise NotImplementedError(
                "squash-if-go emission is not hardware-realizable on MIPS-X")
        for _ in range(planned):
            block.slot_ops.append(Op(I.nop(), source="squash-if-go stand-in"))

    for _ in range(remaining):
        block.slot_ops.append(Op(I.nop(), source="slot pad"))
        fills.append(SlotFill.NOP)
        stats.filled_nop += 1

    return BranchPlan(op=control, conditional=conditional,
                      predicted_taken=bool(predicted_taken or always_taken),
                      fills=fills)


def _revert_moved(block: BasicBlock) -> None:
    """Return move-from-above fills to the block body (squash fill chosen)."""
    for op in block.slot_ops:
        block.ops.insert(len(block.ops) - 1, op)
    block.slot_ops.clear()


def _select_copies_exclusive(target: BasicBlock, slots: int,
                             quick: bool = False) -> List[Op]:
    """Copy selection for a pure squash fill (no preceding above-fills)."""
    copies: List[Op] = []
    previous: Optional[Op] = None
    for candidate in target.body[:slots]:
        if not _copyable(candidate):
            break
        if (previous is not None and is_load_like(previous)
                and writes(previous) in reads(candidate)):
            break
        copies.append(candidate)
        previous = candidate
    while copies and is_load_like(copies[-1]):
        k = len(copies)
        follower = target.body[k] if k < len(target.body) else None
        if follower is not None and writes(copies[-1]) in reads(follower):
            copies.pop()
        else:
            break
    if quick:
        copies = _trim_quick_copies(target, copies)
    return copies


def _trim_quick_copies(target: BasicBlock, copies: List[Op]) -> List[Op]:
    """Quick-compare schemes: stricter operand timing after the slot.

    The last copy executes at distance 1 from the retargeted entry
    instruction and distance 2 from the one after it.  A *branch* at
    distance 1 must not read any register the copy writes (compute
    producers need distance >= 2 under quick compare); a branch at
    distance 2 must not read a register a load copy writes (loads need
    distance >= 3)."""
    while copies:
        k = len(copies)
        entry = (target.body[k] if k < len(target.body)
                 else target.terminator)
        after = (target.body[k + 1] if k + 1 < len(target.body)
                 else target.terminator)
        last = copies[-1]
        last_write = writes(last)
        bad = False
        if (entry is not None and entry.instr.is_branch
                and last_write is not None and last_write in reads(entry)):
            bad = True
        if (not bad and is_load_like(last) and last_write is not None):
            if (entry is not None and not entry.instr.is_branch
                    and False):  # non-branch consumers at distance 1 were
                pass             # already separated by the pad pass
            if (after is not None and after is not entry
                    and after.instr.is_branch
                    and last_write in reads(after)):
                bad = True
        if bad:
            copies.pop()
        else:
            break
    return copies


def _select_copies(block: BasicBlock, target: BasicBlock,
                   remaining: int, quick: bool = False) -> List[Op]:
    """Choose a copyable prefix of the target block body."""
    copies: List[Op] = []
    previous = block.slot_ops[-1] if block.slot_ops else None
    for candidate in target.body[:remaining]:
        if not _copyable(candidate):
            break
        # distance-1 load feed within the slot sequence
        if (previous is not None and is_load_like(previous)
                and writes(previous) in reads(candidate)):
            break
        copies.append(candidate)
        previous = candidate
    if quick:
        copies = _trim_quick_copies(target, copies)
    # a load may not occupy the final slot when copies fill the last one:
    # its delay slot would be the retargeted first target op -- but the pad
    # pass already separated in-block load-use pairs, so candidate k-1
    # (load) followed by candidate k (its pad nop) is the only adjacency,
    # and nop copies are rejected above.  The remaining risk is a load copy
    # in the final slot whose consumer is target.body[k]: check explicitly.
    while copies and is_load_like(copies[-1]):
        k = len(copies)
        follower = target.body[k] if k < len(target.body) else None
        if follower is not None and writes(copies[-1]) in reads(follower):
            copies.pop()
        else:
            break
    return copies


def _fall_through_depth(cfg: Cfg, block: BasicBlock) -> int:
    """How many fall-through ops could serve as squash-if-go slots."""
    position = block.index + 1
    if position >= len(cfg.blocks):
        return 0
    successor = cfg.blocks[position]
    depth = 0
    for op in successor.body:
        if not _copyable(op):
            break
        depth += 1
        if depth >= 2:
            break
    return depth
