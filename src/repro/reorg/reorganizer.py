"""The post-pass code reorganizer.

MIPS-X, like MIPS before it, pushes all pipeline interlocks into software:
the compiler emits *naive* code (branches act immediately, load results are
immediately usable) and this reorganizer rewrites it into code that is
correct and fast on the real pipeline.  Passes, in order:

1. :func:`repro.reorg.hazards.pad_load_delays` -- separate load-use pairs
   (schedule an independent instruction into the gap, else insert a no-op);
2. move-from-above delay-slot filling (always correct on both paths);
3. for one-slot (quick compare) schemes: pad branch source operands to the
   stricter register-file-output timing;
4. squash filling from the predicted path, retargeting the branch past the
   copied instructions and setting the squash bit;
5. optional static verification of every execution adjacency.

The result carries per-branch :class:`~repro.reorg.delay_slots.BranchPlan`
records, which the Table 1 machinery combines with dynamic branch traces to
cost out each scheme.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.asm.unit import AsmUnit, Op
from repro.isa import instruction as I
from repro.reorg.cfg import Cfg, build_cfg, emit
from repro.reorg.delay_slots import (
    MIPSX_SCHEME,
    BranchPlan,
    BranchScheme,
    FillStats,
    fill_block_slots,
    predict_taken,
    repair_quick_slots,
    select_move_from_above,
)
from repro.reorg.hazards import (
    PadStats,
    is_load_like,
    pad_load_delays,
    reads,
    verify_unit,
    writes,
)


class ReorgError(RuntimeError):
    """The reorganizer produced (or was given) hazardous code."""


@dataclasses.dataclass
class ReorgStats:
    """Combined statistics from all reorganizer passes."""

    pad: PadStats = dataclasses.field(default_factory=PadStats)
    fill: FillStats = dataclasses.field(default_factory=FillStats)
    quick_compare_nops: int = 0

    @property
    def nops_inserted(self) -> int:
        return (self.pad.nops_inserted + self.fill.filled_nop
                + self.quick_compare_nops)


@dataclasses.dataclass
class ReorgResult:
    unit: AsmUnit
    stats: ReorgStats
    plans: List[BranchPlan]
    cfg: Cfg

    def plan_by_op(self) -> Dict[int, BranchPlan]:
        """Map id(branch Op) -> plan, for joining with layout addresses."""
        return {id(plan.op): plan for plan in self.plans}


def reorganize(unit: AsmUnit, scheme: BranchScheme = MIPSX_SCHEME,
               profile: Optional[Dict[int, bool]] = None,
               schedule_loads: bool = True,
               verify: bool = True) -> ReorgResult:
    """Rewrite naive code for the pipeline under ``scheme``.

    ``profile`` maps conditional-branch index (in item order) to the
    profiled majority direction; without it, static backward-taken /
    forward-not-taken prediction is used.

    Note: the pass pipeline rewrites branch Ops *in place*, so the input
    unit is consumed -- re-parse (or deep-copy, see
    ``repro.reorg.profiler._clone``) if you need to reorganize the same
    source under several schemes.
    """
    cfg = build_cfg(unit)
    stats = ReorgStats()

    # pass 1: load delay padding / scheduling
    stats.pad = pad_load_delays(cfg, schedule=schedule_loads)

    # pass 2: move-from-above (skipped for conditionals under pure
    # always-squash, which by definition only uses squashed slots)
    for block in cfg.blocks:
        terminator = block.terminator
        if terminator is None:
            continue
        if scheme.squash == "always" and terminator.instr.is_branch:
            continue
        select_move_from_above(block, scheme.slots, cfg=cfg)

    # pass 3: quick-compare operand padding (1-slot schemes resolve the
    # branch on the register-file outputs, one stage early)
    if scheme.slots == 1:
        repair_quick_slots(cfg)
        stats.quick_compare_nops = _pad_quick_compare(cfg)

    # pass 4: squash fill
    plans: List[BranchPlan] = []
    synthetic_labels: Dict = {}
    branch_index = 0
    for block in cfg.blocks:
        terminator = block.terminator
        if terminator is None:
            continue
        predicted = True
        if terminator.instr.is_branch:
            predicted = predict_taken(cfg, block, terminator, profile,
                                      branch_index)
            branch_index += 1
        plan = fill_block_slots(cfg, block, scheme, predicted, stats.fill,
                                synthetic_labels)
        if plan is not None:
            plans.append(plan)

    out = emit(cfg)
    if verify:
        violations = verify_unit(out, scheme.slots)
        if violations:
            raise ReorgError("reorganizer produced hazards:\n"
                             + "\n".join(violations))
    return ReorgResult(unit=out, stats=stats, plans=plans, cfg=cfg)


def _pad_quick_compare(cfg: Cfg) -> int:
    """Enforce quick-compare operand timing before 1-slot branches.

    The comparator sits on the register-file outputs, so a branch source
    must be at distance >= 2 from a compute producer and >= 3 from a load.
    The scan is *linear* across block boundaries: a producer at the end of
    the previous block still feeds the branch along the fall-through path.
    (Looking back past an unconditional jump can only over-pad, never
    under-pad.)
    """
    inserted = 0
    # flatten ops in layout order, including any slot ops already placed
    # by move-from-above (they execute between a branch and its successor)
    linear: list = []
    positions = {}
    for block in cfg.blocks:
        for op in block.ops + block.slot_ops:
            positions[id(op)] = len(linear)
            linear.append(op)
    for block in cfg.blocks:
        terminator = block.terminator
        if terminator is None or not terminator.instr.is_branch:
            continue
        sources = reads(terminator)
        position = positions[id(terminator)]
        needed = 0
        for distance in (1, 2):
            if position - distance < 0:
                break
            producer = linear[position - distance]
            dest = writes(producer)
            if dest is None or dest not in sources:
                continue
            required = 3 if is_load_like(producer) else 2
            needed = max(needed, required - distance)
        for _ in range(needed):
            block.ops.insert(len(block.ops) - 1,
                             Op(I.nop(), source="quick compare pad"))
            inserted += 1
    return inserted
