"""Profile-driven static branch prediction.

The paper: "Static prediction would use information at compile time
(possibly with profiling) to predict which way a branch would go."  This
module implements the profiling loop: reorganize once with the static
heuristic, run the program collecting per-branch outcome counts, derive the
majority direction for every conditional branch, and reorganize again with
that profile.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.asm.unit import AsmUnit, Op
from repro.core.config import MachineConfig, perfect_memory_config
from repro.core.processor import Machine
from repro.reorg.delay_slots import MIPSX_SCHEME, BranchScheme
from repro.reorg.reorganizer import ReorgResult, reorganize
from repro.traces.capture import BranchOnlyCollector


@dataclasses.dataclass
class ProfileData:
    """Majority direction per conditional-branch index, plus raw counts."""

    directions: Dict[int, bool]
    counts: Dict[int, tuple]

    def taken_fraction(self) -> float:
        taken = sum(c[0] for c in self.counts.values())
        total = sum(c[0] + c[1] for c in self.counts.values())
        return taken / total if total else 0.0


def branch_index_map(result: ReorgResult) -> Dict[int, int]:
    """Map assembled branch address -> conditional-branch index.

    Branch indices count conditional branches in item order, matching the
    ``profile`` argument of :func:`repro.reorg.reorganizer.reorganize`.
    """
    op_to_index: Dict[int, int] = {}
    index = 0
    for item in result.unit.items:
        if isinstance(item, Op) and item.instr.is_branch:
            op_to_index[id(item)] = index
            index += 1
    _, placed = result.unit.layout()
    address_to_index: Dict[int, int] = {}
    for address, item in placed.items():
        if isinstance(item, Op) and id(item) in op_to_index:
            address_to_index[address] = op_to_index[id(item)]
    return address_to_index


def collect_profile(result: ReorgResult,
                    config: Optional[MachineConfig] = None,
                    max_cycles: int = 10_000_000,
                    coprocessors=()) -> ProfileData:
    """Run reorganized code and derive per-branch majority directions."""
    machine = Machine(config or perfect_memory_config())
    for coprocessor in coprocessors:
        machine.attach_coprocessor(coprocessor)
    collector = BranchOnlyCollector()
    machine.set_trace(collector)
    machine.load_program(result.unit.assemble())
    machine.run(max_cycles)
    address_to_index = branch_index_map(result)
    directions: Dict[int, bool] = {}
    counts: Dict[int, tuple] = {}
    for address, (taken, not_taken) in collector.outcome_counts().items():
        index = address_to_index.get(address)
        if index is None:
            continue
        directions[index] = taken >= not_taken
        counts[index] = (taken, not_taken)
    return ProfileData(directions=directions, counts=counts)


def profile_and_reorganize(unit: AsmUnit,
                           scheme: BranchScheme = MIPSX_SCHEME,
                           config: Optional[MachineConfig] = None,
                           schedule_loads: bool = True,
                           max_cycles: int = 10_000_000) -> ReorgResult:
    """Two-pass reorganization: profile with the static heuristic, then
    reorganize with the measured directions.

    Note: ``reorganize`` mutates Op objects in the unit it is given, so
    each pass parses from a pristine deep copy of the input unit.
    """
    first = reorganize(_clone(unit), scheme, schedule_loads=schedule_loads)
    profile = collect_profile(first, config, max_cycles)
    return reorganize(_clone(unit), scheme, profile=profile.directions,
                      schedule_loads=schedule_loads)


def _clone(unit: AsmUnit) -> AsmUnit:
    """Deep-copy the ops of a unit (labels/directives are immutable)."""
    clone = AsmUnit()
    for item in unit.items:
        if isinstance(item, Op):
            clone.items.append(Op(item.instr, target=item.target,
                                  source=item.source))
        else:
            clone.items.append(item)
    return clone
