"""Control-flow graph over symbolic assembly units.

The reorganizer works on *naive* code (no delay slots: branches act
immediately, loads are immediately usable) straight out of the compiler.
A :class:`Cfg` partitions the instruction stream into basic blocks so the
delay-slot filler can reason about move-from-above candidates, branch
targets, and fall-through paths.

Data directives (``.word``/``.space``/``.org``) end the current code
region; blocks never span them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

from repro.asm.unit import AsmUnit, Label, Op, Org, Space, Word


@dataclasses.dataclass
class BasicBlock:
    """A straight-line run of instructions.

    ``labels`` are the labels bound to the block's first instruction.
    ``terminator`` is the trailing control transfer (branch or jump), if
    any; ``ops`` *includes* it.  ``slot_ops`` are delay-slot instructions
    appended by the filler after the terminator (empty on naive code).
    """

    index: int
    labels: List[str] = dataclasses.field(default_factory=list)
    ops: List[Op] = dataclasses.field(default_factory=list)
    slot_ops: List[Op] = dataclasses.field(default_factory=list)
    #: label insertions for squash fill: position (op index in ``body``) -> names
    inner_labels: Dict[int, List[str]] = dataclasses.field(default_factory=dict)

    @property
    def terminator(self) -> Optional[Op]:
        if self.ops and self.ops[-1].instr.is_control:
            return self.ops[-1]
        return None

    @property
    def body(self) -> List[Op]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.ops[:-1]
        return self.ops

    def falls_through(self) -> bool:
        """True if control can continue to the next block in layout order."""
        terminator = self.terminator
        if terminator is None:
            return True
        instr = terminator.instr
        if instr.is_branch:
            # ``br`` is encoded as beq r0, r0: always taken
            from repro.isa.opcodes import Opcode

            always = (instr.opcode == Opcode.BEQ
                      and instr.src1 == 0 and instr.src2 == 0)
            return not always
        return False  # unconditional jump or halt


@dataclasses.dataclass
class Cfg:
    """Basic blocks in layout order, plus the non-code items around them."""

    blocks: List[BasicBlock]
    by_label: Dict[str, BasicBlock]
    #: items emitted before block k: data directives and orgs
    prefix_items: Dict[int, List[Union[Word, Space, Org, Label]]]
    #: trailing non-code items after the last block
    suffix_items: List[Union[Word, Space, Org, Label]]

    def target_block(self, op: Op) -> Optional[BasicBlock]:
        """The statically-known target block of a control op, if any."""
        if op.target is not None:
            return self.by_label.get(op.target)
        return None

    def block_position(self, block: BasicBlock) -> int:
        return block.index


def build_cfg(unit: AsmUnit) -> Cfg:
    """Partition a symbolic unit into basic blocks."""
    blocks: List[BasicBlock] = []
    by_label: Dict[str, BasicBlock] = {}
    prefix_items: Dict[int, List] = {}
    pending_labels: List[str] = []
    pending_items: List = []
    current: Optional[BasicBlock] = None

    # collect every label that is a branch/jump target (block leaders)
    targets = {item.target for item in unit.items
               if isinstance(item, Op) and item.target is not None
               and item.instr.is_control}

    def close() -> None:
        nonlocal current
        current = None

    def open_block() -> BasicBlock:
        nonlocal current
        block = BasicBlock(index=len(blocks))
        if pending_items:
            prefix_items[block.index] = list(pending_items)
            pending_items.clear()
        block.labels = list(pending_labels)
        pending_labels.clear()
        for name in block.labels:
            by_label[name] = block
        blocks.append(block)
        current = block
        return block

    for item in unit.items:
        if isinstance(item, Label):
            # a label always starts a new block (even if not a known branch
            # target: it may be reached indirectly or used for data access;
            # data-only labels between code regions are harmless as blocks)
            close()
            pending_labels.append(item.name)
        elif isinstance(item, Op):
            if current is None:
                open_block()
            current.ops.append(item)
            if item.instr.is_control or item.instr.is_halt:
                close()
        else:  # data / org directives end the code region
            close()
            if pending_labels:
                # label bound to data: keep as a plain item, not a block
                pending_items.extend(Label(name) for name in pending_labels)
                pending_labels.clear()
            pending_items.append(item)

    suffix_items: List = list(pending_items)
    suffix_items.extend(Label(name) for name in pending_labels)
    _ = targets  # (kept for future use: distinguishing data labels)
    return Cfg(blocks=blocks, by_label=by_label, prefix_items=prefix_items,
               suffix_items=suffix_items)


def emit(cfg: Cfg) -> AsmUnit:
    """Serialize a (possibly transformed) CFG back into an AsmUnit."""
    unit = AsmUnit()
    for block in cfg.blocks:
        for item in cfg.prefix_items.get(block.index, []):
            unit.items.append(item)
        for name in block.labels:
            unit.label(name)
        body = block.body
        terminator = block.terminator
        for position, op in enumerate(body):
            for name in block.inner_labels.get(position, []):
                unit.label(name)
            unit.items.append(op)
        for name in block.inner_labels.get(len(body), []):
            unit.label(name)
        if terminator is not None:
            unit.items.append(terminator)
        for op in block.slot_ops:
            unit.items.append(op)
    for item in cfg.suffix_items:
        unit.items.append(item)
    return unit
