"""The post-pass code reorganizer (the software half of MIPS-X)."""

from repro.reorg.cfg import BasicBlock, Cfg, build_cfg, emit
from repro.reorg.delay_slots import (
    MIPSX_SCHEME,
    TABLE1_SCHEMES,
    BranchPlan,
    BranchScheme,
    FillStats,
    SlotFill,
)
from repro.reorg.hazards import PadStats, pad_load_delays, verify_unit
from repro.reorg.profiler import (
    ProfileData,
    branch_index_map,
    collect_profile,
    profile_and_reorganize,
)
from repro.reorg.reorganizer import (
    ReorgError,
    ReorgResult,
    ReorgStats,
    reorganize,
)

__all__ = [
    "BasicBlock",
    "BranchPlan",
    "BranchScheme",
    "Cfg",
    "FillStats",
    "MIPSX_SCHEME",
    "PadStats",
    "ProfileData",
    "ReorgError",
    "ReorgResult",
    "ReorgStats",
    "SlotFill",
    "TABLE1_SCHEMES",
    "branch_index_map",
    "build_cfg",
    "collect_profile",
    "emit",
    "pad_load_delays",
    "profile_and_reorganize",
    "reorganize",
    "verify_unit",
]
