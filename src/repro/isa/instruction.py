"""The :class:`Instruction` value object and convenience constructors.

An :class:`Instruction` is the decoded, machine-independent form of one
32-bit MIPS-X instruction word.  The assembler, the compiler's code
generator and the reorganizer all manipulate ``Instruction`` objects; the
binary encoding lives in :mod:`repro.isa.encoding` and the semantics in
:mod:`repro.core`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.isa.opcodes import (
    BRANCH_OPCODES,
    COPROCESSOR_OPCODES,
    DATA_MEMORY_OPCODES,
    WRITING_FUNCTS,
    Format,
    Funct,
    Opcode,
    SpecialReg,
    format_of,
)
from repro.isa.registers import register_name


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded MIPS-X instruction.

    Field use by format:

    * memory:  ``src1`` = base register, ``src2`` = data register
      (load destination / store source / link destination for ``jspci``),
      ``imm`` = signed 17-bit offset.
    * branch:  ``src1``/``src2`` = compared registers, ``imm`` = signed
      16-bit word displacement (target = branch PC + imm), ``squash`` =
      the squash bit of the paper's *squash optional* scheme.
    * compute: ``src1``/``src2`` = sources, ``dst`` = destination,
      ``funct`` = operation, ``shamt`` = shift amount or special-register id.
    """

    opcode: Opcode
    src1: int = 0
    src2: int = 0
    dst: int = 0
    imm: int = 0
    funct: Optional[Funct] = None
    shamt: int = 0
    squash: bool = False

    # ---------------------------------------------------------------- queries
    @property
    def format(self) -> Format:
        return format_of(self.opcode)

    @property
    def is_branch(self) -> bool:
        """Conditional branch (has delay slots and an optional squash bit)."""
        return self.opcode in BRANCH_OPCODES

    @property
    def is_jump(self) -> bool:
        """Unconditional control transfer computed in the ALU stage."""
        return self.opcode == Opcode.JSPCI or (
            self.opcode == Opcode.COMPUTE
            and self.funct in (Funct.JPC, Funct.JPCRS)
        )

    @property
    def is_control(self) -> bool:
        return self.is_branch or self.is_jump

    @property
    def is_load(self) -> bool:
        return self.opcode in (Opcode.LD, Opcode.LDF)

    @property
    def is_store(self) -> bool:
        return self.opcode in (Opcode.ST, Opcode.STF)

    @property
    def is_memory_access(self) -> bool:
        """Touches data memory in the MEM stage (loads and stores)."""
        return self.opcode in DATA_MEMORY_OPCODES

    @property
    def is_coprocessor(self) -> bool:
        return self.opcode in COPROCESSOR_OPCODES

    @property
    def is_nop(self) -> bool:
        return (
            self.opcode == Opcode.COMPUTE
            and self.funct == Funct.ADD
            and self.dst == 0
            and self.src1 == 0
            and self.src2 == 0
        )

    @property
    def is_halt(self) -> bool:
        return self.opcode == Opcode.COMPUTE and self.funct == Funct.HALT

    def writes_register(self) -> Optional[int]:
        """GPR written by this instruction, or ``None``.

        Writes to register 0 are architectural no-ops and reported as
        ``None`` (r0 is the paper's "place to write unwanted data").
        """
        reg: Optional[int] = None
        if self.opcode == Opcode.COMPUTE:
            if self.funct in WRITING_FUNCTS:
                reg = self.dst
        elif self.opcode in (Opcode.LD, Opcode.ADDI, Opcode.JSPCI, Opcode.MOVFRC):
            reg = self.src2
        if reg == 0:
            return None
        return reg

    def reads_registers(self) -> tuple:
        """GPR numbers read by this instruction (r0 reads included)."""
        op = self.opcode
        if op == Opcode.COMPUTE:
            funct = self.funct
            if funct in (Funct.SLL, Funct.SRL, Funct.SRA, Funct.NOT, Funct.ROTL):
                return (self.src1,)
            if funct == Funct.MOVTOS:
                return (self.src1,)
            if funct == Funct.MOVFRS:
                return ()
            if funct in (Funct.TRAP, Funct.JPC, Funct.JPCRS, Funct.HALT):
                return ()
            if funct in (Funct.MSTEP, Funct.DSTEP):
                return (self.src1, self.src2)
            return (self.src1, self.src2)
        if op in BRANCH_OPCODES:
            return (self.src1, self.src2)
        if op in (Opcode.LD, Opcode.ADDI, Opcode.JSPCI, Opcode.LDF, Opcode.MOVFRC):
            return (self.src1,)
        if op in (Opcode.ST,):
            return (self.src1, self.src2)
        if op in (Opcode.STF, Opcode.COP):
            return (self.src1,)
        if op == Opcode.MOVTOC:
            return (self.src1, self.src2)
        return ()

    # ------------------------------------------------------------- rendering
    def __str__(self) -> str:  # noqa: C901 - straightforward per-format text
        op = self.opcode
        if self.is_nop:
            return "nop"
        if op == Opcode.COMPUTE:
            funct = self.funct
            name = funct.name.lower()
            r = register_name
            if funct in (Funct.SLL, Funct.SRL, Funct.SRA, Funct.ROTL):
                return f"{name} {r(self.dst)}, {r(self.src1)}, {self.shamt}"
            if funct == Funct.NOT:
                return f"{name} {r(self.dst)}, {r(self.src1)}"
            if funct == Funct.MOVFRS:
                return f"{name} {r(self.dst)}, {SpecialReg(self.shamt).name.lower()}"
            if funct == Funct.MOVTOS:
                return f"{name} {SpecialReg(self.shamt).name.lower()}, {r(self.src1)}"
            if funct in (Funct.TRAP, Funct.JPC, Funct.JPCRS, Funct.HALT):
                return name
            return f"{name} {r(self.dst)}, {r(self.src1)}, {r(self.src2)}"
        if op in BRANCH_OPCODES:
            sq = "sq" if self.squash else ""
            return (
                f"{op.name.lower()}{sq} {register_name(self.src1)}, "
                f"{register_name(self.src2)}, {self.imm:+d}"
            )
        # memory format
        name = op.name.lower()
        r = register_name
        if op == Opcode.ADDI:
            return f"{name} {r(self.src2)}, {r(self.src1)}, {self.imm}"
        if op in (Opcode.COP,):
            return f"{name} {self.imm}({r(self.src1)})"
        if op in (Opcode.MOVTOC, Opcode.MOVFRC):
            return f"{name} {r(self.src2)}, {self.imm}({r(self.src1)})"
        if op in (Opcode.LDF, Opcode.STF):
            return f"{name} f{self.src2}, {self.imm}({r(self.src1)})"
        return f"{name} {r(self.src2)}, {self.imm}({r(self.src1)})"


# --------------------------------------------------------------------------
# Convenience constructors.  These are what the code generator and tests use;
# they read like assembly and keep field-placement knowledge in one module.
# --------------------------------------------------------------------------

def nop() -> Instruction:
    """The canonical no-op: ``add r0, r0, r0``."""
    return Instruction(Opcode.COMPUTE, funct=Funct.ADD)


def halt() -> Instruction:
    return Instruction(Opcode.COMPUTE, funct=Funct.HALT)


def add(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs1, src2=rs2, dst=rd, funct=Funct.ADD)


def sub(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs1, src2=rs2, dst=rd, funct=Funct.SUB)


def and_(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs1, src2=rs2, dst=rd, funct=Funct.AND)


def or_(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs1, src2=rs2, dst=rd, funct=Funct.OR)


def xor(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs1, src2=rs2, dst=rd, funct=Funct.XOR)


def not_(rd: int, rs: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs, dst=rd, funct=Funct.NOT)


def mov(rd: int, rs: int) -> Instruction:
    """Pseudo: ``or rd, rs, r0``."""
    return or_(rd, rs, 0)


def sll(rd: int, rs: int, amount: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs, dst=rd, funct=Funct.SLL, shamt=amount)


def srl(rd: int, rs: int, amount: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs, dst=rd, funct=Funct.SRL, shamt=amount)


def sra(rd: int, rs: int, amount: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs, dst=rd, funct=Funct.SRA, shamt=amount)


def rotl(rd: int, rs: int, amount: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs, dst=rd, funct=Funct.ROTL, shamt=amount)


def mstep(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs1, src2=rs2, dst=rd, funct=Funct.MSTEP)


def dstep(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs1, src2=rs2, dst=rd, funct=Funct.DSTEP)


def movfrs(rd: int, special: SpecialReg) -> Instruction:
    return Instruction(Opcode.COMPUTE, dst=rd, funct=Funct.MOVFRS, shamt=int(special))


def movtos(special: SpecialReg, rs: int) -> Instruction:
    return Instruction(Opcode.COMPUTE, src1=rs, funct=Funct.MOVTOS, shamt=int(special))


def trap() -> Instruction:
    return Instruction(Opcode.COMPUTE, funct=Funct.TRAP)


def jpc() -> Instruction:
    return Instruction(Opcode.COMPUTE, funct=Funct.JPC)


def jpcrs() -> Instruction:
    return Instruction(Opcode.COMPUTE, funct=Funct.JPCRS)


def ld(rd: int, base: int, offset: int) -> Instruction:
    return Instruction(Opcode.LD, src1=base, src2=rd, imm=offset)


def st(rs: int, base: int, offset: int) -> Instruction:
    return Instruction(Opcode.ST, src1=base, src2=rs, imm=offset)


def ldf(fd: int, base: int, offset: int) -> Instruction:
    return Instruction(Opcode.LDF, src1=base, src2=fd, imm=offset)


def stf(fs: int, base: int, offset: int) -> Instruction:
    return Instruction(Opcode.STF, src1=base, src2=fs, imm=offset)


def addi(rd: int, rs: int, imm: int) -> Instruction:
    return Instruction(Opcode.ADDI, src1=rs, src2=rd, imm=imm)


def li(rd: int, imm: int) -> Instruction:
    """Pseudo for small constants: ``addi rd, r0, imm`` (|imm| < 2**16)."""
    return addi(rd, 0, imm)


def jspci(link: int, base: int, offset: int) -> Instruction:
    return Instruction(Opcode.JSPCI, src1=base, src2=link, imm=offset)


def cop(base: int, payload: int) -> Instruction:
    """Coprocessor operation: address lines carry ``r[base] + payload``."""
    return Instruction(Opcode.COP, src1=base, imm=payload)


def movtoc(rs: int, base: int, payload: int) -> Instruction:
    return Instruction(Opcode.MOVTOC, src1=base, src2=rs, imm=payload)


def movfrc(rd: int, base: int, payload: int) -> Instruction:
    return Instruction(Opcode.MOVFRC, src1=base, src2=rd, imm=payload)


def branch(
    opcode: Opcode, rs1: int, rs2: int, disp: int, squash: bool = False
) -> Instruction:
    if opcode not in BRANCH_OPCODES:
        raise ValueError(f"not a branch opcode: {opcode}")
    return Instruction(opcode, src1=rs1, src2=rs2, imm=disp, squash=squash)


def beq(rs1: int, rs2: int, disp: int, squash: bool = False) -> Instruction:
    return branch(Opcode.BEQ, rs1, rs2, disp, squash)


def bne(rs1: int, rs2: int, disp: int, squash: bool = False) -> Instruction:
    return branch(Opcode.BNE, rs1, rs2, disp, squash)


def blt(rs1: int, rs2: int, disp: int, squash: bool = False) -> Instruction:
    return branch(Opcode.BLT, rs1, rs2, disp, squash)


def ble(rs1: int, rs2: int, disp: int, squash: bool = False) -> Instruction:
    return branch(Opcode.BLE, rs1, rs2, disp, squash)


def bgt(rs1: int, rs2: int, disp: int, squash: bool = False) -> Instruction:
    return branch(Opcode.BGT, rs1, rs2, disp, squash)


def bge(rs1: int, rs2: int, disp: int, squash: bool = False) -> Instruction:
    return branch(Opcode.BGE, rs1, rs2, disp, squash)


def br(disp: int) -> Instruction:
    """Unconditional PC-relative branch: ``beq r0, r0, disp``."""
    return beq(0, 0, disp)
