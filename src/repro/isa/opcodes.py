"""Opcode and function-code definitions for the MIPS-X reproduction ISA.

The paper is emphatic that the instruction format exists for "simple decode,
simple decode, and simple decode": every instruction is one fixed 32-bit word
and the opcode space is split into exactly three instruction classes --
memory operations (which, in the final design, subsume coprocessor
operations), branches, and compute operations.

Our encoding (documented field-by-field in :mod:`repro.isa.encoding`):

* bits [31:27] -- 5-bit major opcode, which also selects the format;
* **memory format**: ``op | src1(5) | src2(5) | offset(17 signed)``;
* **branch format**: ``op | src1(5) | src2(5) | disp(16 signed) | squash(1)``;
* **compute format**: ``op=COMPUTE | src1(5) | src2(5) | dst(5) | funct(7) | shamt(5)``.

Addresses are *word* addresses (see DESIGN.md); the 17-bit signed offset of
the memory format therefore spans +-64K words, matching the paper's 17-bit
signed byte offset in spirit.
"""

from __future__ import annotations

import enum


class Format(enum.Enum):
    """The three MIPS-X instruction formats."""

    MEMORY = "memory"
    BRANCH = "branch"
    COMPUTE = "compute"


class Opcode(enum.IntEnum):
    """5-bit major opcodes.

    ``COMPUTE`` carries a secondary function code (:class:`Funct`).  The six
    branch opcodes encode the *full compare* the paper chose after rejecting
    condition codes and the quick compare: every branch names two source
    registers and a condition.
    """

    COMPUTE = 0

    # Memory format ---------------------------------------------------------
    LD = 1        #: ``ld   rd, off(rb)``  rd <- mem[rb + off]
    ST = 2        #: ``st   rs, off(rb)``  mem[rb + off] <- rs
    LDF = 3       #: ``ldf  fd, off(rb)``  FPU reg fd <- mem[rb + off]
    STF = 4       #: ``stf  fs, off(rb)``  mem[rb + off] <- FPU reg fs
    ADDI = 5      #: ``addi rd, rb, imm``  rd <- rb + imm (no overflow trap)
    JSPCI = 6     #: ``jspci rd, off(rb)`` rd <- return PC; jump rb + off
    COP = 7       #: coprocessor op, no CPU data transfer
    MOVTOC = 8    #: coprocessor op, CPU drives data bus from reg src2
    MOVFRC = 9    #: coprocessor op, CPU reads data bus into reg src2

    # Branch format ---------------------------------------------------------
    BEQ = 16
    BNE = 17
    BLT = 18
    BLE = 19
    BGT = 20
    BGE = 21


class Funct(enum.IntEnum):
    """Function codes for ``COMPUTE``-format instructions (bits [11:5]).

    Shift instructions take their shift amount from the 5-bit ``shamt``
    field (bits [4:0]); everything else leaves it zero.
    """

    ADD = 0     #: rd <- src1 + src2 (sets overflow; traps if PSW.TE)
    SUB = 1     #: rd <- src1 - src2 (sets overflow; traps if PSW.TE)
    AND = 2
    OR = 3
    XOR = 4
    SLL = 5     #: rd <- src1 << shamt (funnel shifter)
    SRL = 6     #: rd <- src1 >> shamt (logical)
    SRA = 7     #: rd <- src1 >> shamt (arithmetic)
    MSTEP = 8   #: one multiply step using the MD register
    DSTEP = 9   #: one divide step using the MD register
    MOVFRS = 10  #: rd <- special register [shamt]
    MOVTOS = 11  #: special register [shamt] <- src1
    TRAP = 12    #: software trap (unconditional exception)
    JPC = 13     #: jump through the PC chain (exception return step)
    JPCRS = 14   #: jump through the PC chain + restore PSW (final step)
    NOT = 15     #: rd <- ~src1
    HALT = 16    #: stop the simulation (simulator-only, documented)
    ROTL = 17    #: rd <- src1 rotated left by shamt (funnel shifter)


class SpecialReg(enum.IntEnum):
    """Special registers addressed by ``movfrs``/``movtos`` (shamt field).

    ``PC1`` is the *oldest* PC in the chain -- the first instruction to
    re-execute when returning from an exception -- and ``PC3`` the youngest.
    """

    PSW = 0
    PSWOLD = 1
    MD = 2
    PC1 = 3
    PC2 = 4
    PC3 = 5


#: Opcodes using the memory format.
MEMORY_OPCODES = frozenset(
    {
        Opcode.LD,
        Opcode.ST,
        Opcode.LDF,
        Opcode.STF,
        Opcode.ADDI,
        Opcode.JSPCI,
        Opcode.COP,
        Opcode.MOVTOC,
        Opcode.MOVFRC,
    }
)

#: Opcodes using the branch format.
BRANCH_OPCODES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT, Opcode.BGE}
)

#: Memory-format opcodes that actually reference data memory.
DATA_MEMORY_OPCODES = frozenset({Opcode.LD, Opcode.ST, Opcode.LDF, Opcode.STF})

#: Memory-format opcodes that are coprocessor operations on the address lines.
COPROCESSOR_OPCODES = frozenset({Opcode.COP, Opcode.MOVTOC, Opcode.MOVFRC})

#: Compute functs that write a general-purpose destination register.
WRITING_FUNCTS = frozenset(
    {
        Funct.ADD,
        Funct.SUB,
        Funct.AND,
        Funct.OR,
        Funct.XOR,
        Funct.SLL,
        Funct.SRL,
        Funct.SRA,
        Funct.MSTEP,
        Funct.DSTEP,
        Funct.MOVFRS,
        Funct.NOT,
        Funct.ROTL,
    }
)


def format_of(opcode: Opcode) -> Format:
    """Return the instruction format a major opcode belongs to."""
    if opcode == Opcode.COMPUTE:
        return Format.COMPUTE
    if opcode in BRANCH_OPCODES:
        return Format.BRANCH
    return Format.MEMORY


#: Inverse condition for each branch opcode (used by the reorganizer when it
#: reverses a branch to retarget delay slots).
BRANCH_INVERSE = {
    Opcode.BEQ: Opcode.BNE,
    Opcode.BNE: Opcode.BEQ,
    Opcode.BLT: Opcode.BGE,
    Opcode.BGE: Opcode.BLT,
    Opcode.BGT: Opcode.BLE,
    Opcode.BLE: Opcode.BGT,
}

#: Field widths, shared by the encoder and the assembler's range checks.
OFFSET_BITS = 17      # memory-format signed offset
BRANCH_DISP_BITS = 16  # branch-format signed word displacement
SHAMT_BITS = 5
FUNCT_BITS = 7
