"""Register file conventions for the MIPS-X reproduction.

MIPS-X has 32 general purpose registers.  Register 0 is a hardwired constant
zero: reads always return 0 and writes are discarded (the paper notes that a
read-only zero register is "a place to write unwanted data" and the source of
immediate loads via ``add immediate to Register 0``).

The software calling convention below is our own (the paper does not publish
one) but follows the register-usage style of the Stanford compiler system:

====  =========  ==========================================================
Name  Number     Use
====  =========  ==========================================================
r0    0          hardwired zero
sp    1          stack pointer (grows toward lower addresses)
ra    2          return address (link register written by ``jspci``)
rv    3          function return value
a0-a5 4-9        argument registers
t0-t15 10-25     caller-saved temporaries
s0-s4 26-30      callee-saved registers
gp    31         global pointer (base of the global data segment)
====  =========  ==========================================================
"""

from __future__ import annotations

NUM_REGISTERS = 32

ZERO = 0
SP = 1
RA = 2
RV = 3
A0, A1, A2, A3, A4, A5 = 4, 5, 6, 7, 8, 9
T_FIRST, T_LAST = 10, 25
S_FIRST, S_LAST = 26, 30
GP = 31

#: Canonical assembler names, index = register number.
REGISTER_NAMES = (
    ["r0", "sp", "ra", "rv"]
    + [f"a{i}" for i in range(6)]
    + [f"t{i}" for i in range(16)]
    + [f"s{i}" for i in range(5)]
    + ["gp"]
)

#: Accepted aliases -> register number (includes bare rNN forms).
REGISTER_ALIASES = {name: idx for idx, name in enumerate(REGISTER_NAMES)}
REGISTER_ALIASES.update({f"r{i}": i for i in range(NUM_REGISTERS)})
REGISTER_ALIASES["zero"] = ZERO


def register_number(name: str) -> int:
    """Resolve a register name or alias to its number.

    Raises ``KeyError`` with a helpful message for unknown names.
    """
    key = name.strip().lower()
    if key not in REGISTER_ALIASES:
        raise KeyError(f"unknown register name {name!r}")
    return REGISTER_ALIASES[key]


def register_name(number: int) -> str:
    """Canonical assembler name for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"register number out of range: {number}")
    return REGISTER_NAMES[number]


#: Registers the callee must preserve across a call.
CALLEE_SAVED = tuple(range(S_FIRST, S_LAST + 1)) + (SP, GP)

#: Registers a caller must assume are clobbered by a call.
CALLER_SAVED = tuple(range(A0, T_LAST + 1)) + (RA, RV)
