"""Binary encoding of the MIPS-X reproduction ISA.

Every instruction is one 32-bit word.  The field layout implements the
paper's "simple decode" maxim: the major opcode is always bits [31:27] and
the two source-register fields are always bits [26:22] and [21:17], so the
register file can be read before the opcode is fully decoded (the property
the instruction register's predecode relies on).

======== =================== =================== ==========================
bits     memory format       branch format       compute format
======== =================== =================== ==========================
[31:27]  opcode              opcode (condition)  opcode = COMPUTE
[26:22]  src1 (base)         src1                src1
[21:17]  src2 (data)         src2                src2
[16:0]   offset (signed 17)  --                  --
[16:1]   --                  disp (signed 16)    --
[0]      --                  squash bit          --
[16:12]  --                  --                  dst
[11:5]   --                  --                  funct
[4:0]    --                  --                  shamt / special-reg id
======== =================== =================== ==========================
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_DISP_BITS,
    OFFSET_BITS,
    Format,
    Funct,
    Opcode,
    format_of,
)

WORD_MASK = 0xFFFFFFFF


class EncodingError(ValueError):
    """A field value does not fit its encoding field."""


def _check_register(value: int, field: str) -> int:
    if not 0 <= value < 32:
        raise EncodingError(f"{field} register out of range: {value}")
    return value


def _encode_signed(value: int, bits: int, field: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{field} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def _decode_signed(raw: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (raw & (sign - 1)) - (raw & sign)


def encode(instr: Instruction) -> int:
    """Encode one :class:`Instruction` into its 32-bit word."""
    op = instr.opcode
    word = (int(op) & 0x1F) << 27
    word |= _check_register(instr.src1, "src1") << 22
    word |= _check_register(instr.src2, "src2") << 17
    fmt = format_of(op)
    if fmt is Format.MEMORY:
        word |= _encode_signed(instr.imm, OFFSET_BITS, "offset")
    elif fmt is Format.BRANCH:
        word |= _encode_signed(instr.imm, BRANCH_DISP_BITS, "branch disp") << 1
        word |= 1 if instr.squash else 0
    else:  # compute
        if instr.funct is None:
            raise EncodingError("compute instruction missing funct")
        word |= _check_register(instr.dst, "dst") << 12
        word |= (int(instr.funct) & 0x7F) << 5
        if not 0 <= instr.shamt < 32:
            raise EncodingError(f"shamt out of range: {instr.shamt}")
        word |= instr.shamt
    return word & WORD_MASK


class DecodeError(ValueError):
    """A 32-bit word is not a valid instruction."""


def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`DecodeError` for undefined opcodes or function codes --
    the hardware would treat these as illegal-instruction faults, but in the
    simulator reaching one almost always indicates executing data, so a loud
    error is more useful.
    """
    word &= WORD_MASK
    op_raw = (word >> 27) & 0x1F
    try:
        op = Opcode(op_raw)
    except ValueError as exc:
        raise DecodeError(f"undefined opcode {op_raw} in word {word:#010x}") from exc
    src1 = (word >> 22) & 0x1F
    src2 = (word >> 17) & 0x1F
    fmt = format_of(op)
    if fmt is Format.MEMORY:
        return Instruction(
            op, src1=src1, src2=src2, imm=_decode_signed(word & 0x1FFFF, OFFSET_BITS)
        )
    if fmt is Format.BRANCH:
        disp = _decode_signed((word >> 1) & 0xFFFF, BRANCH_DISP_BITS)
        return Instruction(op, src1=src1, src2=src2, imm=disp, squash=bool(word & 1))
    funct_raw = (word >> 5) & 0x7F
    try:
        funct = Funct(funct_raw)
    except ValueError as exc:
        raise DecodeError(
            f"undefined funct {funct_raw} in word {word:#010x}"
        ) from exc
    if funct in (Funct.MOVFRS, Funct.MOVTOS):
        from repro.isa.opcodes import SpecialReg

        if (word & 0x1F) >= len(SpecialReg):
            raise DecodeError(
                f"undefined special register {word & 0x1F} "
                f"in word {word:#010x}")
    return Instruction(
        op,
        src1=src1,
        src2=src2,
        dst=(word >> 12) & 0x1F,
        funct=funct,
        shamt=word & 0x1F,
    )
