"""MIPS-X reproduction instruction set architecture.

The public surface of this package is:

* :class:`~repro.isa.instruction.Instruction` plus the assembly-like
  constructor functions in :mod:`repro.isa.instruction`;
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`;
* the opcode/funct enums in :mod:`repro.isa.opcodes`;
* register naming helpers in :mod:`repro.isa.registers`.
"""

from repro.isa.encoding import DecodeError, EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Funct, Opcode, SpecialReg, format_of
from repro.isa.registers import (
    NUM_REGISTERS,
    register_name,
    register_number,
)

__all__ = [
    "DecodeError",
    "EncodingError",
    "Format",
    "Funct",
    "Instruction",
    "NUM_REGISTERS",
    "Opcode",
    "SpecialReg",
    "decode",
    "encode",
    "format_of",
    "register_name",
    "register_number",
]
