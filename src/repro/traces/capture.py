"""Trace capture from the live pipeline.

The MIPS-X team drove all their cache and branch studies from instruction
traces produced by the compiler/simulator system; :class:`TraceCollector`
plugs into the pipeline's :class:`~repro.core.pipeline.TraceSink` hooks and
records the same streams:

* the instruction *fetch* stream (for Icache studies),
* the retired instruction stream,
* data reference addresses (for Ecache studies),
* the external-cache reference stream (kind + address, post-MMIO),
* branch outcomes (for the Table 1 and prediction studies).

Event streams are held in compact ``array.array`` columns (8 bytes per
address, 1 per flag) rather than per-event Python objects, so
multi-million-cycle captures stay tens of megabytes instead of gigabytes.
``approx_bytes()`` reports the footprint and an optional ``max_bytes``
cap streams full columns to disk (``.npy`` spill files) when capture
outgrows it; accessors transparently stitch spilled segments back
together.
"""

from __future__ import annotations

import dataclasses
import tempfile
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import TraceSink
from repro.isa.instruction import Instruction

#: ecache stream kinds (match the order of EcacheStats counters)
ECACHE_READ = 0
ECACHE_WRITE = 1
ECACHE_IFETCH = 2

_SPILL_CHECK_EVERY = 4096


@dataclasses.dataclass
class BranchEvent:
    pc: int
    taken: bool
    target: int


class _Column:
    """One append-only event column with optional spill-to-disk."""

    __slots__ = ("buf", "typecode", "dtype", "paths", "spilled_len")

    def __init__(self, typecode: str, dtype: str):
        self.buf = array(typecode)
        self.typecode = typecode
        self.dtype = np.dtype(dtype)
        self.paths: List[Path] = []
        self.spilled_len = 0

    def __len__(self) -> int:
        return self.spilled_len + len(self.buf)

    def nbytes(self) -> int:
        return len(self) * self.buf.itemsize

    def spill(self, directory: Path, stem: str) -> None:
        if not self.buf:
            return
        path = directory / f"{stem}-{len(self.paths)}.npy"
        np.save(path, np.frombuffer(self.buf, dtype=self.dtype))
        self.paths.append(path)
        self.spilled_len += len(self.buf)
        self.buf = array(self.typecode)

    def to_numpy(self) -> np.ndarray:
        parts = [np.load(p) for p in self.paths]
        if self.buf:
            # copy: a lingering frombuffer view would pin the array.array's
            # buffer export and make further appends raise BufferError
            parts.append(np.frombuffer(self.buf, dtype=self.dtype).copy())
        if not parts:
            return np.empty(0, dtype=self.dtype)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)


class TraceCollector(TraceSink):
    """Records pipeline event streams for trace-driven studies.

    Streams can be individually disabled to save memory on long runs;
    ``max_bytes`` bounds the in-memory footprint by spilling full
    columns to disk.
    """

    def __init__(self, fetches: bool = True, retires: bool = False,
                 data: bool = True, branches: bool = True,
                 ecache: bool = False,
                 max_bytes: Optional[int] = None):
        self._want_fetches = fetches
        self._want_retires = retires
        self._want_data = data
        self._want_branches = branches
        self._want_ecache = ecache
        self._max_bytes = max_bytes
        self._events = 0
        self._spill_dir: Optional[tempfile.TemporaryDirectory] = None
        self._fetch = _Column("q", "int64")
        self._data_addr = _Column("q", "int64")
        self._data_store = _Column("b", "int8")
        self._br_pc = _Column("q", "int64")
        self._br_taken = _Column("b", "int8")
        self._br_target = _Column("q", "int64")
        self._ec_kind = _Column("b", "int8")
        self._ec_addr = _Column("q", "int64")
        self.retire_trace: List[Tuple[int, Instruction, bool]] = []
        self.exceptions: List[str] = []

    # ------------------------------------------------------------- sinks
    def on_fetch(self, pc: int) -> None:
        if self._want_fetches:
            self._fetch.buf.append(pc)
            self._bump()

    def on_retire(self, pc: int, instr: Instruction, squashed: bool) -> None:
        if self._want_retires:
            self.retire_trace.append((pc, instr, squashed))

    def on_data(self, pc: int, address: int, is_store: bool) -> None:
        if self._want_data:
            self._data_addr.buf.append(address)
            self._data_store.buf.append(1 if is_store else 0)
            self._bump()

    def on_branch(self, pc: int, instr: Instruction, taken: bool,
                  target: int) -> None:
        if self._want_branches:
            self._br_pc.buf.append(pc)
            self._br_taken.buf.append(1 if taken else 0)
            self._br_target.buf.append(target)
            self._bump()

    def on_ecache(self, kind: int, address: int) -> None:
        if self._want_ecache:
            self._ec_kind.buf.append(kind)
            self._ec_addr.buf.append(address)
            self._bump()

    def on_exception(self, cause: str) -> None:
        self.exceptions.append(cause)

    # --------------------------------------------------- memory accounting
    def approx_bytes(self) -> int:
        """Approximate capture footprint (in-memory + spilled)."""
        columns = sum(c.nbytes() for c in self._columns())
        return columns + 64 * len(self.retire_trace)

    def _columns(self) -> Tuple[_Column, ...]:
        return (self._fetch, self._data_addr, self._data_store,
                self._br_pc, self._br_taken, self._br_target,
                self._ec_kind, self._ec_addr)

    def _bump(self) -> None:
        self._events += 1
        if (self._max_bytes is not None
                and self._events % _SPILL_CHECK_EVERY == 0):
            self._maybe_spill()

    def _maybe_spill(self) -> None:
        in_memory = sum(len(c.buf) * c.buf.itemsize for c in self._columns())
        if in_memory <= self._max_bytes:
            return
        if self._spill_dir is None:
            self._spill_dir = tempfile.TemporaryDirectory(
                prefix="repro-trace-spill-")
        directory = Path(self._spill_dir.name)
        for i, column in enumerate(self._columns()):
            column.spill(directory, f"col{i}")

    # -------------------------------------------------------- array views
    def fetch_array(self) -> np.ndarray:
        return self._fetch.to_numpy()

    def data_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._data_addr.to_numpy(), self._data_store.to_numpy()

    def branch_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (self._br_pc.to_numpy(), self._br_taken.to_numpy(),
                self._br_target.to_numpy())

    def ecache_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._ec_kind.to_numpy(), self._ec_addr.to_numpy()

    # ---------------------------------------- compatibility list accessors
    @property
    def fetch_trace(self) -> np.ndarray:
        return self.fetch_array()

    @property
    def data_trace(self) -> List[Tuple[int, bool]]:
        addresses, stores = self.data_arrays()
        return [(int(a), bool(s)) for a, s in zip(addresses, stores)]

    @property
    def branch_events(self) -> List[BranchEvent]:
        pcs, taken, targets = self.branch_arrays()
        return [BranchEvent(int(p), bool(t), int(g))
                for p, t, g in zip(pcs, taken, targets)]

    # ---------------------------------------------------------- summaries
    def branch_outcome_counts(self) -> Dict[int, Tuple[int, int]]:
        """Per-branch-pc (taken, not-taken) execution counts."""
        pcs, taken, _ = self.branch_arrays()
        if pcs.size == 0:
            return {}
        unique, inverse = np.unique(pcs, return_inverse=True)
        taken_counts = np.bincount(inverse, weights=taken,
                                   minlength=unique.size).astype(np.int64)
        totals = np.bincount(inverse, minlength=unique.size)
        return {int(pc): (int(t), int(n - t))
                for pc, t, n in zip(unique, taken_counts, totals)}

    def data_addresses(self) -> List[int]:
        return self._data_addr.to_numpy().tolist()


class BranchOnlyCollector(TraceSink):
    """Cheap collector recording only per-pc branch outcome counts."""

    def __init__(self):
        self.counts: Dict[int, List[int]] = {}

    def on_branch(self, pc: int, instr: Instruction, taken: bool,
                  target: int) -> None:
        entry = self.counts.setdefault(pc, [0, 0])
        entry[0 if taken else 1] += 1

    def outcome_counts(self) -> Dict[int, Tuple[int, int]]:
        return {pc: (taken, not_taken)
                for pc, (taken, not_taken) in self.counts.items()}
