"""Trace capture from the live pipeline.

The MIPS-X team drove all their cache and branch studies from instruction
traces produced by the compiler/simulator system; :class:`TraceCollector`
plugs into the pipeline's :class:`~repro.core.pipeline.TraceSink` hooks and
records the same streams:

* the instruction *fetch* stream (for Icache studies),
* the retired instruction stream,
* data reference addresses (for Ecache studies),
* branch outcomes (for the Table 1 and prediction studies).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.pipeline import TraceSink
from repro.isa.instruction import Instruction


@dataclasses.dataclass
class BranchEvent:
    pc: int
    taken: bool
    target: int


class TraceCollector(TraceSink):
    """Records pipeline event streams for trace-driven studies.

    Streams can be individually disabled to save memory on long runs.
    """

    def __init__(self, fetches: bool = True, retires: bool = False,
                 data: bool = True, branches: bool = True):
        self._want_fetches = fetches
        self._want_retires = retires
        self._want_data = data
        self._want_branches = branches
        self.fetch_trace: List[int] = []
        self.retire_trace: List[Tuple[int, Instruction, bool]] = []
        self.data_trace: List[Tuple[int, bool]] = []
        self.branch_events: List[BranchEvent] = []
        self.exceptions: List[str] = []

    # ------------------------------------------------------------- sinks
    def on_fetch(self, pc: int) -> None:
        if self._want_fetches:
            self.fetch_trace.append(pc)

    def on_retire(self, pc: int, instr: Instruction, squashed: bool) -> None:
        if self._want_retires:
            self.retire_trace.append((pc, instr, squashed))

    def on_data(self, pc: int, address: int, is_store: bool) -> None:
        if self._want_data:
            self.data_trace.append((address, is_store))

    def on_branch(self, pc: int, instr: Instruction, taken: bool,
                  target: int) -> None:
        if self._want_branches:
            self.branch_events.append(BranchEvent(pc, taken, target))

    def on_exception(self, cause: str) -> None:
        self.exceptions.append(cause)

    # ---------------------------------------------------------- summaries
    def branch_outcome_counts(self) -> Dict[int, Tuple[int, int]]:
        """Per-branch-pc (taken, not-taken) execution counts."""
        counts: Dict[int, Tuple[int, int]] = {}
        for event in self.branch_events:
            taken, not_taken = counts.get(event.pc, (0, 0))
            if event.taken:
                counts[event.pc] = (taken + 1, not_taken)
            else:
                counts[event.pc] = (taken, not_taken + 1)
        return counts

    def data_addresses(self) -> List[int]:
        return [address for address, _ in self.data_trace]


class BranchOnlyCollector(TraceSink):
    """Cheap collector recording only per-pc branch outcome counts."""

    def __init__(self):
        self.counts: Dict[int, List[int]] = {}

    def on_branch(self, pc: int, instr: Instruction, taken: bool,
                  target: int) -> None:
        entry = self.counts.setdefault(pc, [0, 0])
        entry[0 if taken else 1] += 1

    def outcome_counts(self) -> Dict[int, Tuple[int, int]]:
        return {pc: (taken, not_taken)
                for pc, (taken, not_taken) in self.counts.items()}
