"""Trace capture and synthetic trace generation."""

from repro.traces.capture import BranchEvent, BranchOnlyCollector, TraceCollector

__all__ = ["BranchEvent", "BranchOnlyCollector", "TraceCollector"]
