"""Trace capture, storage, and synthetic trace generation."""

from repro.traces.capture import BranchEvent, BranchOnlyCollector, TraceCollector
from repro.traces.store import CapturedTrace, TraceStore, descriptor_key

__all__ = [
    "BranchEvent",
    "BranchOnlyCollector",
    "CapturedTrace",
    "TraceCollector",
    "TraceStore",
    "descriptor_key",
]
