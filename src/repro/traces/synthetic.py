"""Synthetic large-program traces (the ATUM substitute).

The paper's benchmarks (50-270 KB static) "fit entirely" in the 64K-word
external cache, so the team derived Ecache effects from much larger traces
captured with ATUM microcode tracing.  We have the same problem one level
down as well: the compiled workloads are small.  This generator produces
instruction and data address streams with controlled working-set size and
locality, modelling a large multi-phase program:

* code is a set of *procedures* (contiguous instruction ranges) called
  according to a Markov-ish walk with loops inside each procedure;
* data references mix stack-like locality, a sequential scan, and a large
  randomly-indexed heap;
* everything is seeded and deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple


class _Xorshift:
    """Deterministic 32-bit xorshift PRNG (no global random state)."""

    def __init__(self, seed: int):
        self.state = (seed or 1) & 0xFFFFFFFF

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def below(self, bound: int) -> int:
        return self.next() % bound


@dataclasses.dataclass
class SyntheticProgram:
    """Shape parameters for a synthetic trace."""

    code_words: int = 40_000        #: static code footprint
    procedures: int = 60
    mean_loop_length: int = 12      #: instructions per inner loop
    mean_loop_trips: int = 20
    call_locality: float = 0.7      #: P(next call stays in a hot cluster)
    data_words: int = 200_000       #: heap footprint
    data_reference_rate: float = 0.33  #: data refs per instruction
    seed: int = 0xC0FFEE

    def instruction_trace(self, length: int) -> Iterator[int]:
        """Yield ``length`` instruction fetch addresses."""
        rng = _Xorshift(self.seed)
        proc_size = max(self.code_words // self.procedures, 32)
        hot = [rng.below(self.procedures) for _ in range(6)]
        produced = 0
        while produced < length:
            if rng.below(1000) < int(self.call_locality * 1000):
                proc = hot[rng.below(len(hot))]
            else:
                proc = rng.below(self.procedures)
                hot[rng.below(len(hot))] = proc  # cluster drifts slowly
            base = proc * proc_size
            cursor = base + rng.below(max(proc_size - 64, 1))
            # straight-line entry, then a loop
            for _ in range(rng.below(8) + 2):
                yield cursor
                cursor += 1
                produced += 1
                if produced >= length:
                    return
            loop_len = rng.below(self.mean_loop_length * 2) + 2
            trips = rng.below(self.mean_loop_trips * 2) + 1
            loop_start = cursor
            for _ in range(trips):
                for offset in range(loop_len):
                    yield loop_start + offset
                    produced += 1
                    if produced >= length:
                        return

    def data_trace(self, length: int) -> Iterator[Tuple[int, bool]]:
        """Yield ``length`` (address, is_store) data references.

        Mix: stack-like hot region, a sequential scan over an eighth of
        the heap, a hot heap cluster (a sixteenth of the heap) and a cold
        random tail -- standard skewed locality, so cache size matters
        but cannot be beaten by a tiny cache."""
        rng = _Xorshift(self.seed ^ 0x9E3779B9)
        stack_top = self.data_words
        hot_base = rng.below(self.data_words // 2)
        hot_span = max(self.data_words // 32, 1)
        scan = 0
        produced = 0
        while produced < length:
            choice = rng.below(100)
            if choice < 40:      # stack-like: small hot region
                address = stack_top - rng.below(64)
            elif choice < 70:    # sequential scan
                scan = (scan + 1) % max(self.data_words // 16, 1)
                address = scan
            elif choice < 95:    # hot heap cluster
                address = hot_base + rng.below(hot_span)
            else:                # cold random tail
                address = rng.below(self.data_words)
            yield address, rng.below(100) < 30
            produced += 1


def paper_regime_program() -> SyntheticProgram:
    """The large-program stand-in calibrated to the paper's Icache regime.

    Against the 512-word cache this trace reproduces the paper's numbers:
    ~20-25% miss ratio with single-word fetch-back (the "disappointing"
    initial simulations), ~12% with the double fetch-back, and an average
    instruction fetch cost of ~1.25 cycles (paper: 1.24).
    """
    return SyntheticProgram(code_words=40_000, procedures=80,
                            mean_loop_length=20, mean_loop_trips=4,
                            call_locality=0.6)


def combined_fetch_trace(traces: List[List[int]],
                         quantum: int = 10_000) -> List[int]:
    """Interleave several fetch traces, switching every ``quantum``
    references, with each trace relocated to its own code region.

    Models a multiprogrammed / large multi-phase program from small ones
    (the standard trace-driven technique of the era: Smith's cache studies
    switched traces every Q references for the same reason).
    """
    relocated = []
    base = 0
    for trace in traces:
        if len(trace) == 0:  # len(): traces may be numpy arrays
            relocated.append([])
            continue
        span = int(max(trace)) + 1
        relocated.append([base + int(address) for address in trace])
        base += span + 1024  # guard gap between programs
    result: List[int] = []
    cursors = [0] * len(relocated)
    live = [bool(t) for t in relocated]
    index = 0
    while any(live):
        if live[index]:
            trace = relocated[index]
            cursor = cursors[index]
            take = min(quantum, len(trace) - cursor)
            result.extend(trace[cursor:cursor + take])
            cursors[index] = cursor + take
            if cursors[index] >= len(trace):
                live[index] = False
        index = (index + 1) % len(relocated)
    return result
