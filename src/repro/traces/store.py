"""Content-addressed binary trace store: capture once, replay many.

The MIPS-X cache and branch studies were trace-driven: an address trace
was captured once per workload and then swept against every candidate
organization (the ATUM/A. J. Smith methodology).  :class:`TraceStore`
gives the repo the same shape.  A *descriptor* -- a small JSON-able dict
that names everything the captured streams depend on (workload or
synthetic-program parameters, trace length, reorganization scheme,
capture format version) -- is canonicalised and hashed into a
content-addressed key; the captured streams live in one ``.npz`` per key
under ``.trace_cache/``.  Change any input and the key changes, so stale
traces can never be replayed silently.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

logger = logging.getLogger(__name__)

#: bump when the capture format or stream semantics change -- it is part
#: of every cache key, so old .npz files are simply never matched again
FORMAT = 1

REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_ROOT = REPO_ROOT / ".trace_cache"

_META_KEY = "__meta__"


@dataclasses.dataclass
class CapturedTrace:
    """Named event-stream arrays plus their JSON-able capture metadata."""

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arrays.values())

    def save(self, path: Path) -> None:
        meta_blob = np.frombuffer(
            json.dumps(self.meta, sort_keys=True).encode(), dtype=np.uint8)
        payload = dict(self.arrays)
        payload[_META_KEY] = meta_blob
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: Path) -> "CapturedTrace":
        with np.load(path) as npz:
            meta = json.loads(bytes(npz[_META_KEY]).decode())
            arrays = {name: npz[name] for name in npz.files
                      if name != _META_KEY}
        return cls(arrays=arrays, meta=meta)


def canonical_json(material: object) -> str:
    """The canonical JSON text of a JSON-able value.

    Key-sorted, minimal separators, no whitespace variance: two
    structurally equal values (whatever their dict insertion order, and
    with tuples and lists interchangeable) canonicalise to the same
    text.  Both the trace-store descriptor keys and the service-layer
    request hashes (:mod:`repro.service.cache`) derive their sha256
    content addresses from this one function, so the two caches can
    never drift apart on canonicalisation.
    """
    return json.dumps(material, sort_keys=True, separators=(",", ":"))


def descriptor_key(descriptor: Dict[str, object]) -> str:
    """The content-addressed key of a capture descriptor."""
    material = dict(descriptor)
    material["format"] = FORMAT
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()[:24]


class TraceStore:
    """On-disk cache of captured traces keyed by capture descriptor.

    Integrity: every entry carries a ``.sha256`` sidecar with the digest
    of the ``.npz`` payload bytes.  :meth:`get` verifies it -- a corrupt,
    truncated, or sidecar-less entry is a counted-and-logged **miss**
    (``integrity_failures``), never a silent wrong replay.  :meth:`put`
    holds a per-entry lockfile so two concurrent producers (parallel
    ``repro bench`` runs racing on a cold cache) cannot interleave the
    payload and its digest.
    """

    #: a lock older than this is presumed abandoned (crashed writer) and
    #: is broken; trace captures run seconds, not minutes.  A lock whose
    #: recorded pid is dead is broken immediately, whatever its age.
    LOCK_STALE_SECONDS = 120.0
    LOCK_TIMEOUT_SECONDS = 30.0
    #: a writer SIGKILLed mid-save leaves a ``*.tmp``; ones older than
    #: this are swept on a cache miss (a live writer finishes in seconds)
    TMP_STALE_SECONDS = 120.0

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else DEFAULT_ROOT
        self.hits = 0
        self.misses = 0
        self.integrity_failures = 0

    def path_for(self, descriptor: Dict[str, object]) -> Path:
        return self.root / f"{descriptor_key(descriptor)}.npz"

    def digest_path_for(self, descriptor: Dict[str, object]) -> Path:
        return self.path_for(descriptor).with_suffix(".sha256")

    def get(self, descriptor: Dict[str, object]) -> Optional[CapturedTrace]:
        path = self.path_for(descriptor)
        if not path.exists():
            self.misses += 1
            self._sweep_stale_tmp()
            return None
        try:
            payload = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        digest_path = self.digest_path_for(descriptor)
        try:
            expected = digest_path.read_text().strip()
        except OSError:
            expected = None
        actual = hashlib.sha256(payload).hexdigest()
        if expected != actual:
            self.integrity_failures += 1
            self.misses += 1
            reason = ("no sha256 sidecar" if expected is None
                      else f"sha256 mismatch (expected {expected[:12]}..., "
                           f"got {actual[:12]}...)")
            logger.warning("trace store: %s for %s; treating as a miss",
                           reason, path.name)
            return None
        try:
            trace = CapturedTrace.load(path)
        except (OSError, ValueError, KeyError):
            # digest matched but the archive does not parse: a corrupt
            # payload was stored wholesale (writer bug, not bit rot)
            self.integrity_failures += 1
            self.misses += 1
            logger.warning("trace store: undecodable entry %s; treating "
                           "as a miss", path.name)
            return None
        self.hits += 1
        return trace

    def _sweep_stale_tmp(self) -> None:
        """Age out ``*.tmp`` debris left by writers killed mid-save.

        A SIGKILL between ``mkstemp`` and ``os.replace`` orphans the
        temp file; it can never be mistaken for an entry (entries end in
        ``.npz``), but it would accumulate forever.  Swept lazily on a
        miss so the hot hit path never pays for it.
        """
        try:
            candidates = list(self.root.glob("*.tmp"))
        except OSError:
            return
        now = time.time()
        for tmp in candidates:
            try:
                if now - tmp.stat().st_mtime > self.TMP_STALE_SECONDS:
                    tmp.unlink()
                    logger.warning("trace store: removed orphaned temp "
                                   "file %s (crashed writer)", tmp.name)
            except OSError:
                pass                        # concurrent sweep or live writer

    # ------------------------------------------------------------- locking
    def _lock_path(self, path: Path) -> Path:
        return path.with_suffix(".lock")

    @staticmethod
    def _lock_holder_dead(lock: Path) -> bool:
        """True when the lock records a pid that no longer exists."""
        try:
            pid = int(lock.read_text().strip() or "0")
        except (OSError, ValueError):
            return False            # vanished, or pid not yet written
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False            # alive, owned by someone else
        return False

    def _acquire_lock(self, path: Path) -> Path:
        lock = self._lock_path(path)
        lock.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.LOCK_TIMEOUT_SECONDS
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                return lock
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue                    # holder just released it
                if self._lock_holder_dead(lock):
                    logger.warning("trace store: breaking lock %s (holder "
                                   "pid is dead)", lock.name)
                    try:
                        lock.unlink()
                    except OSError:
                        pass
                    continue
                if age > self.LOCK_STALE_SECONDS:
                    logger.warning("trace store: breaking stale lock %s "
                                   "(%.0fs old)", lock.name, age)
                    try:
                        lock.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"trace store: could not acquire {lock} within "
                        f"{self.LOCK_TIMEOUT_SECONDS:.0f}s") from None
                time.sleep(0.05)

    def put(self, descriptor: Dict[str, object],
            trace: CapturedTrace) -> Path:
        path = self.path_for(descriptor)
        lock = self._acquire_lock(path)
        try:
            trace.save(path)
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            digest_path = self.digest_path_for(descriptor)
            fd, tmp = tempfile.mkstemp(dir=path.parent,
                                       suffix=".sha256.tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(digest + "\n")
                os.replace(tmp, digest_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        finally:
            try:
                lock.unlink()
            except OSError:
                pass
        return path

    def get_or_capture(
            self, descriptor: Dict[str, object],
            capture: Callable[[], CapturedTrace],
            reuse: bool = True) -> Tuple[CapturedTrace, float, bool]:
        """Return ``(trace, capture_seconds, cache_hit)``.

        ``reuse=False`` (the ``--no-trace-reuse`` escape hatch) forces a
        fresh capture; the store entry is refreshed either way.
        """
        if reuse:
            cached = self.get(descriptor)
            if cached is not None:
                return cached, 0.0, True
        start = time.perf_counter()
        trace = capture()
        elapsed = time.perf_counter() - start
        self.put(descriptor, trace)
        return trace, elapsed, False


# ------------------------------------------------- synthetic-trace capture
def synthetic_fetch_descriptor(program, length: int) -> Dict[str, object]:
    return {"kind": "synthetic-fetch",
            "program": dataclasses.asdict(program),
            "length": int(length)}


def capture_synthetic_fetch(program, length: int) -> CapturedTrace:
    addresses = np.fromiter(program.instruction_trace(length),
                            dtype=np.int64, count=length)
    return CapturedTrace(
        arrays={"addresses": addresses},
        meta={"kind": "synthetic-fetch", "length": int(length)})


def synthetic_data_descriptor(program, references: int) -> Dict[str, object]:
    return {"kind": "synthetic-data",
            "program": dataclasses.asdict(program),
            "references": int(references)}


def capture_synthetic_data(program, references: int) -> CapturedTrace:
    addresses = np.empty(references, dtype=np.int64)
    is_store = np.empty(references, dtype=np.int8)
    for i, (address, store) in enumerate(program.data_trace(references)):
        addresses[i] = address
        is_store[i] = store
    return CapturedTrace(
        arrays={"addresses": addresses, "is_store": is_store},
        meta={"kind": "synthetic-data", "references": int(references)})
