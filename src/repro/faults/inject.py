"""Apply a :class:`~repro.faults.plan.FaultPlan` to a live machine.

:class:`FaultInjector` is a :class:`repro.core.pipeline.FaultHook`: the
pipeline calls :meth:`on_cycle` once per cycle before any stage work.
When no event is due the hook costs two comparisons; when the pipeline is
bulk-consuming a stall the cycle counter jumps and every event whose
target cycle was passed fires at the next opportunity.

Asynchronous exception events (parity NMI, spurious IRQ, overflow) only
*arm* the pipeline's pending flags; the pipeline's own sampling interlock
(`Pipeline._async_hold`) delays delivery until the PC-chain restart would
be architecturally clean, exactly like the hardware holding an interrupt
for an uninterruptible window.  Two exception events arming while one is
still pending coalesce into a single delivery -- the pending flag is a
level, not a queue -- so the invariant checker counts *taken* exceptions,
never requested ones.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.pipeline import FaultHook, Pipeline
from repro.core.psw import PswBit
from repro.faults.plan import FaultEvent, FaultPlan

#: ICU cause bits the injected device faults assert
PARITY_CAUSE = 0x2
SPURIOUS_CAUSE = 0x4


class FaultInjector(FaultHook):
    """Replays a plan's events against the pipeline, in cycle order."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._events = sorted(plan.events, key=lambda e: (e.cycle, e.kind))
        self._index = 0
        self._next_cycle = (self._events[0].cycle if self._events
                            else None)
        # injection-local randomness (victim selection inside the caches),
        # derived only from the plan seed: deterministic across processes
        self._rng = random.Random(plan.seed ^ 0xC0FFEE)
        #: (cycle_applied, kind, effective_magnitude) for the report;
        #: magnitude 0 means the event found nothing to corrupt
        self.applied: List[tuple] = []

    # ------------------------------------------------------------- the hook
    def on_cycle(self, pipeline: Pipeline) -> None:
        next_cycle = self._next_cycle
        if next_cycle is None or pipeline.stats.cycles < next_cycle:
            return
        events = self._events
        index = self._index
        now = pipeline.stats.cycles
        while index < len(events) and events[index].cycle <= now:
            self._apply(events[index], pipeline, now)
            index += 1
        self._index = index
        self._next_cycle = events[index].cycle if index < len(events) else None

    # ------------------------------------------------------------ dispatch
    def _apply(self, event: FaultEvent, pipeline: Pipeline,
               now: int) -> None:
        kind = event.kind
        if kind == "icache-valid-flip":
            done = pipeline.icache.inject_valid_flips(
                self._rng, event.param("count", 1))
        elif kind == "icache-tag-corrupt":
            done = pipeline.icache.inject_tag_corruption(
                self._rng, event.param("count", 1))
        elif kind == "ecache-forced-miss":
            count = event.param("count", 1)
            pipeline.ecache.begin_forced_misses(count)
            done = count
        elif kind == "coproc-busy":
            pipeline.coprocessors.begin_busy(event.param("ops", 1),
                                             event.param("stall", 4))
            done = event.param("ops", 1)
        elif kind == "parity-nmi":
            pipeline.post_interrupt(cause_bits=PARITY_CAUSE, nmi=True)
            done = 1
        elif kind == "spurious-irq":
            pipeline.post_interrupt(cause_bits=SPURIOUS_CAUSE, nmi=False)
            done = 1
        elif kind == "overflow":
            # an injected ALU-overflow detection: rides the NMI sampling
            # point (unmaskable, asynchronous) but reports CAUSE_OVF
            pipeline._fault_cause = PswBit.CAUSE_OVF
            pipeline._nmi_pending = True
            done = 1
        else:  # pragma: no cover - plan.EVENT_KINDS is the closed set
            raise ValueError(f"unknown fault event kind {kind!r}")
        self.applied.append((now, kind, done))

    # ------------------------------------------------------------- summary
    def summary(self) -> Dict[str, object]:
        return {
            "events_planned": len(self._events),
            "events_applied": len(self.applied),
            "events_effective": sum(1 for _, _, done in self.applied
                                    if done),
            "applied": [
                {"cycle": cycle, "kind": kind, "magnitude": done}
                for cycle, kind, done in self.applied
            ],
        }
