"""Self-checking assembly workloads for the fault campaigns.

Every workload shares one memory layout so the differential checker can
compare faulted and golden executions word for word:

* ``0x00``  exception vector: ``br fault_handler`` (+ two delay nops);
* ``0x10``  the handler: register-transparent (saves/restores its one
  scratch register to ``SCRATCH_SAVE``), bumps the exception counter at
  ``HANDLER_COUNT``, returns via the paper's ``jpc; jpc; jpcrs``
  three-jump restart sequence;
* ``0x100`` the program, which enables interrupts (so spurious-IRQ
  faults are deliverable) and finishes by storing its results at
  ``RESULTS_BASE`` and writing a checksum to the console;
* ``0x200`` (``RESULTS_BASE``) the result words.

The scratch words are the *only* memory a faulted run may legitimately
differ in from its golden run (the golden run takes no exceptions), so
the checker compares every other word.

The workloads deliberately cover the mechanisms the fault classes
stress: plain and squashing branches (squash FSM), tight load/store
loops (Ecache late-miss path), and FPU traffic over the coprocessor
interface (busy-line stalls, ``movfrc`` load timing).
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

from repro.asm import assemble
from repro.asm.unit import Program
from repro.coproc.fpu import FpuOp, fpu_op
from repro.core.psw import PswBit

#: handler scratch: the saved register and the exception counter --
#: excluded from the differential memory comparison
SCRATCH_SAVE = 128
HANDLER_COUNT = 132
SCRATCH_WORDS = frozenset({SCRATCH_SAVE, HANDLER_COUNT})

#: result words start here; everything the workloads compute lands at or
#: above this address
RESULTS_BASE = 0x200

#: console word port (mmio_base 0x3FFF00 + console offset 0xF0)
CONSOLE_PORT = 0x3FFFF0

#: system mode + PC-chain shifting + interrupts enabled
_PSW_RUN = ((1 << PswBit.MODE) | (1 << PswBit.SHIFT_EN)
            | (1 << PswBit.IE))

_PROLOGUE = f"""
; shared fault-campaign scaffolding: vector, transparent handler
.org 0
    br fault_handler
    nop
    nop

.org 0x10
fault_handler:
    ; register-transparent: t8 is saved/restored around the count bump
    st   t8, {SCRATCH_SAVE}(r0)
    ld   t8, {HANDLER_COUNT}(r0)
    nop
    addi t8, t8, 1
    st   t8, {HANDLER_COUNT}(r0)
    ld   t8, {SCRATCH_SAVE}(r0)
    nop
    jpc
    jpc
    jpcrs

.org 0x100
_start:
    li   t9, {_PSW_RUN}
    movtos psw, t9
"""


def _epilogue(*result_regs: str) -> str:
    """Store the named registers at RESULTS_BASE and print the first."""
    lines = []
    for offset, reg in enumerate(result_regs):
        lines.append(f"    st   {reg}, {RESULTS_BASE + offset}(r0)")
    lines.append(f"    li   t9, {CONSOLE_PORT}")
    lines.append(f"    st   {result_regs[0]}, 0(t9)")
    lines.append("    halt")
    return "\n".join(lines)


SUM_SOURCE = _PROLOGUE + f"""
    ; phase 1: plain-branch accumulation loop
    li   t0, 0          ; acc
    li   t1, 1          ; i
    li   t2, 48         ; N
sumloop:
    add  t0, t0, t1
    addi t1, t1, 1
    ble  t1, t2, sumloop
    nop
    nop
    ; phase 2: squashing branches -- delay slots execute only when taken
    li   t3, 0
    li   t4, 12
    li   t5, 0
sqloop:
    addi t3, t3, 1
    bltsq t3, t4, sqloop
    addi t5, t5, 3      ; slot 1: runs per taken iteration, squashed at exit
    nop                 ; slot 2
    add  t6, t0, t5
""" + _epilogue("t6", "t0", "t3", "t5")


MIX_SOURCE = _PROLOGUE + f"""
    ; shift/xor mixer with a strided store stream (Ecache traffic)
    li   t0, 4660       ; 0x1234
    li   t1, 0          ; index
    li   t2, 32         ; iterations
    li   s0, {RESULTS_BASE + 8}
mixloop:
    sll  t3, t0, 3
    xor  t0, t0, t3
    srl  t3, t0, 5
    xor  t0, t0, t3
    rotl t3, t0, 7
    add  t0, t0, t3
    add  s1, s0, t1
    st   t0, 0(s1)
    ld   t4, 0(s1)      ; read it straight back (late-miss read path)
    addi t1, t1, 1
    blt  t1, t2, mixloop
    nop
    nop
    add  t6, t0, t4
""" + _epilogue("t6", "t0", "t1")


COPROC_SOURCE = _PROLOGUE + f"""
    ; integer <-> FPU round trips over the coprocessor interface
    li   t0, 0          ; i
    li   t1, 8          ; iterations
    li   t2, 0          ; acc
coploop:
    movtoc t0, {fpu_op(FpuOp.MTC_INT, fd=0)}(r0)
    movtoc t2, {fpu_op(FpuOp.MTC_INT, fd=1)}(r0)
    cop  {fpu_op(FpuOp.FADD, 0, 1)}(r0)
    movfrc t3, {fpu_op(FpuOp.MFC_INT, fd=0)}(r0)
    nop                 ; movfrc has load timing
    add  t2, t3, r0
    addi t0, t0, 1
    blt  t0, t1, coploop
    nop
    nop
""" + _epilogue("t2", "t0")


_SOURCES: Dict[str, str] = {
    "sum": SUM_SOURCE,
    "mix": MIX_SOURCE,
    "coproc": COPROC_SOURCE,
}

WORKLOADS: Tuple[str, ...] = tuple(sorted(_SOURCES))

#: the workload whose traffic best exercises each fault class
CLASS_WORKLOADS: Dict[str, str] = {
    "icache-valid": "sum",
    "icache-tag": "mix",
    "ecache-storm": "mix",
    "parity-nmi": "sum",
    "spurious-irq": "sum",
    "coproc-busy": "coproc",
    "overflow-storm": "mix",
    "mixed": "coproc",
}


@functools.lru_cache(maxsize=None)
def fault_program(name: str) -> Program:
    """Assemble (once per process) the named fault workload."""
    try:
        source = _SOURCES[name]
    except KeyError:
        raise ValueError(f"unknown fault workload {name!r}; "
                         f"expected one of {WORKLOADS}") from None
    return assemble(source)
