"""The :class:`FaultPlan` DSL: seeded, cycle-targeted machine faults.

A plan is a pure description -- which fault classes fire, at which target
cycles, with what intensity -- fully determined by ``(seed, fault_class,
horizon)``.  Building a plan touches no machine state; the injector in
:mod:`repro.faults.inject` applies it.  Because the pipeline's bulk-stall
fast path can jump the cycle counter, target cycles mean "fire at the
first injection opportunity at or after this cycle", and plans therefore
never rely on exact-cycle delivery.

Fault classes (each maps to a paper mechanism; see DESIGN.md):

========================= ==================================================
``icache-valid``          flip set sub-block valid bits (SEU in the 512-bit
                          valid array) -> refetch through the miss FSM
``icache-tag``            corrupt Icache tags -> false misses, Fig. 4 path
``ecache-storm``          force Ecache probes to miss -> late-miss retry
                          storm ("re-execute phase 2 of MEM")
``parity-nmi``            memory parity error raised as a non-maskable
                          interrupt through the exception mechanism
``spurious-irq``          spurious maskable device interrupt via the ICU
``coproc-busy``           coprocessor holds its busy line -> w1 withheld
``overflow-storm``        burst of injected overflow exceptions through the
                          squash/exception hardware of Fig. 3
``mixed``                 a seeded interleaving of all of the above
========================= ==================================================
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple

FAULT_CLASSES: Tuple[str, ...] = (
    "icache-valid",
    "icache-tag",
    "ecache-storm",
    "parity-nmi",
    "spurious-irq",
    "coproc-busy",
    "overflow-storm",
    "mixed",
)

#: event kinds an injector must implement (class "mixed" draws from all)
EVENT_KINDS: Tuple[str, ...] = (
    "icache-valid-flip",
    "icache-tag-corrupt",
    "ecache-forced-miss",
    "parity-nmi",
    "spurious-irq",
    "coproc-busy",
    "overflow",
)

#: cycles before the first event: the pipe must be full (no ``None``
#: flights) and past the PSW-setup prologue before anything is injected
WARMUP_CYCLES = 48

#: generous per-event cycle-inflation allowances, used to derive the
#: bounded-termination budget a faulted run must respect
_EVENT_BUDGET: Dict[str, int] = {
    "icache-valid-flip": 64,     # refills: miss_cycles + ecache penalties
    "icache-tag-corrupt": 512,   # a whole block may refetch word by word
    "ecache-forced-miss": 16,    # miss_penalty per forced probe
    "parity-nmi": 192,           # handler + interlock hold windows
    "spurious-irq": 192,
    "coproc-busy": 8,            # per stalled op (scaled by ops*stall below)
    "overflow": 192,
}


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One injected fault: ``kind`` with ``params``, due at ``cycle``."""

    cycle: int
    kind: str
    params: Tuple[Tuple[str, int], ...] = ()

    def param(self, name: str, default: int = 0) -> int:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def budget(self) -> int:
        """Worst-case cycle inflation this event may cause."""
        base = _EVENT_BUDGET[self.kind]
        if self.kind == "ecache-forced-miss":
            return base * max(1, self.param("count", 1))
        if self.kind == "coproc-busy":
            return (self.param("ops", 1) * self.param("stall", 4)
                    + _EVENT_BUDGET["coproc-busy"])
        if self.kind in ("icache-valid-flip", "icache-tag-corrupt"):
            return base * max(1, self.param("count", 1))
        return base


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultEvent` over one execution."""

    seed: int
    fault_class: str
    horizon: int                       #: golden cycle count of the workload
    events: Tuple[FaultEvent, ...]

    def cycle_budget(self) -> int:
        """Cycle-inflation bound for the whole plan: the faulted run must
        halt within ``horizon + cycle_budget()`` cycles or the late-miss /
        exception machinery failed to terminate."""
        return (sum(event.budget() for event in self.events)
                + max(512, self.horizon // 4))

    def describe(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "fault_class": self.fault_class,
            "horizon": self.horizon,
            "events": [
                {"cycle": e.cycle, "kind": e.kind, **dict(e.params)}
                for e in self.events
            ],
        }


def _params(**kwargs: int) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(kwargs.items()))


def _draw_event(rng: random.Random, kind: str, cycle: int) -> FaultEvent:
    if kind == "icache-valid-flip":
        return FaultEvent(cycle, kind, _params(count=rng.randint(1, 6)))
    if kind == "icache-tag-corrupt":
        return FaultEvent(cycle, kind, _params(count=rng.randint(1, 3)))
    if kind == "ecache-forced-miss":
        return FaultEvent(cycle, kind, _params(count=rng.randint(2, 12)))
    if kind == "coproc-busy":
        return FaultEvent(cycle, kind,
                          _params(ops=rng.randint(1, 4),
                                  stall=rng.randint(2, 10)))
    # parity-nmi / spurious-irq / overflow carry no parameters
    return FaultEvent(cycle, kind)


_CLASS_KINDS: Dict[str, Tuple[str, ...]] = {
    "icache-valid": ("icache-valid-flip",),
    "icache-tag": ("icache-tag-corrupt",),
    "ecache-storm": ("ecache-forced-miss",),
    "parity-nmi": ("parity-nmi",),
    "spurious-irq": ("spurious-irq",),
    "coproc-busy": ("coproc-busy",),
    "overflow-storm": ("overflow",),
    "mixed": EVENT_KINDS,
}


def build_plan(seed: int, fault_class: str, horizon: int,
               max_events: int = 6) -> FaultPlan:
    """Build the deterministic plan for ``(seed, fault_class, horizon)``.

    ``horizon`` is the golden (fault-free) cycle count of the workload the
    plan will run against; all target cycles land inside
    ``[WARMUP_CYCLES, horizon)`` so every event has a chance to fire
    before the program halts.  Exception-class events are spaced at least
    64 cycles apart so one handler invocation completes (and re-enables
    PC shifting) before the next fault arrives -- back-to-back NMIs
    before the handler saves the PC chain lose machine state on the real
    hardware too, and coalescing is already exercised by the pending-flag
    model.
    """
    if fault_class not in _CLASS_KINDS:
        raise ValueError(f"unknown fault class {fault_class!r}; "
                         f"expected one of {FAULT_CLASSES}")
    if horizon <= WARMUP_CYCLES:
        raise ValueError(f"horizon {horizon} leaves no room after the "
                         f"{WARMUP_CYCLES}-cycle warmup")
    # NB: no hash() here -- Python string hashing is salted per process,
    # and campaign workers must rebuild byte-identical plans
    class_salt = FAULT_CLASSES.index(fault_class)
    rng = random.Random(((seed << 8) ^ (class_salt * 0x9E3779B1))
                        & 0xFFFFFFFF)
    kinds = _CLASS_KINDS[fault_class]
    count = rng.randint(1, max_events)
    exception_kinds = {"parity-nmi", "spurious-irq", "overflow"}
    events: List[FaultEvent] = []
    last_exception_cycle = -10_000
    for _ in range(count):
        kind = kinds[rng.randrange(len(kinds))]
        cycle = rng.randint(WARMUP_CYCLES, max(WARMUP_CYCLES + 1,
                                               horizon - 1))
        if kind in exception_kinds:
            if cycle - last_exception_cycle < 64:
                cycle = last_exception_cycle + 64
            last_exception_cycle = cycle
        events.append(_draw_event(rng, kind, cycle))
    events.sort(key=lambda e: (e.cycle, e.kind))
    return FaultPlan(seed=seed, fault_class=fault_class, horizon=horizon,
                     events=tuple(events))
