"""Fault injection and resilience checking for the MIPS-X model.

MIPS-X's most distinctive mechanisms are its *fault paths*: the minimal
exception mechanism that reuses the branch-squash hardware (Figure 3),
the external-cache late-miss retry loop (Figure 4), and the per-word
sub-block valid bits of the on-chip instruction cache.  This package
deliberately stresses them:

* :mod:`repro.faults.plan` -- a seeded, cycle-targeted :class:`FaultPlan`
  DSL over the supported fault classes;
* :mod:`repro.faults.inject` -- a :class:`~repro.core.pipeline.FaultHook`
  that applies a plan to a live machine (zero overhead when detached);
* :mod:`repro.faults.workloads` -- small self-checking assembly programs
  with a register-transparent fault handler at the exception vector;
* :mod:`repro.faults.invariants` -- the differential checker: each
  faulted execution runs against a fault-free golden run and the paper's
  guarantees are asserted (restartability, bounded late-miss inflation,
  no squashed instruction ever commits);
* :mod:`repro.faults.campaign` -- the ``repro faults`` campaign driver
  that fans seeded plans across :class:`repro.harness.runner.Runner`;
* :mod:`repro.faults.multi` -- node-level campaigns on the shared-memory
  multiprocessor: corrupt one node's caches mid-run, assert the other
  nodes' results stay golden and the victim reconverges.
"""

from repro.faults.invariants import DifferentialReport, run_differential
from repro.faults.multi import MULTI_FAULT_CLASSES, node_fault_point
from repro.faults.plan import FAULT_CLASSES, FaultEvent, FaultPlan, build_plan

__all__ = [
    "DifferentialReport",
    "FAULT_CLASSES",
    "FaultEvent",
    "FaultPlan",
    "MULTI_FAULT_CLASSES",
    "build_plan",
    "node_fault_point",
    "run_differential",
]
