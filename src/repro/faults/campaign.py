"""The ``repro faults`` campaign driver.

Fans N seeded fault plans across :class:`repro.harness.runner.Runner`
(one differential run per worker process), aggregates a structured
per-fault-class report, and writes it atomically to
``FAULTS_campaign.json`` at the repo root.

The campaign doubles as a chaos test of the harness itself: with
``chaos_rate > 0`` a seeded subset of first-attempt workers is killed
mid-job (``ChaosMonkey``), and the runner's backoff-retry/merge path has
to deliver the same verdicts regardless -- the report's ``harness``
section records exactly what the runner had to absorb.

Exit semantics (used by the CLI): a campaign *fails* only when a job
ends in an unhandled state (``error``/``timeout``/``crashed``) -- that
would mean a fault escaped the model as a Python crash.  Classified
invariant violations are a *finding*, reported separately: the checker
did its job.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Optional

from repro.faults.invariants import differential_for_seed
from repro.faults.plan import FAULT_CLASSES
from repro.harness.bench import REPO_ROOT, write_json_atomic
from repro.harness.runner import ChaosMonkey, Job, JobResult, Runner

DEFAULT_REPORT = REPO_ROOT / "FAULTS_campaign.json"

#: per-differential-run wall-clock watchdog (each run simulates a few
#: thousand cycles; a minute means something hung, not something slow)
JOB_TIMEOUT = 60.0


def campaign_point(seed: int, fault_class: str,
                   max_events: int = 6) -> Dict[str, Any]:
    """One campaign job: build the plan for ``seed``, run the
    differential checker, return the verdict (picklable dict)."""
    report = differential_for_seed(seed, fault_class,
                                   max_events=max_events)
    return report.to_dict()


def campaign_jobs(seeds: int, quick: bool = False,
                  timeout: Optional[float] = JOB_TIMEOUT) -> List[Job]:
    """The seeded job grid: fault classes rotate across seeds so every
    class is exercised roughly ``seeds / len(FAULT_CLASSES)`` times."""
    jobs = []
    for seed in range(seeds):
        fault_class = FAULT_CLASSES[seed % len(FAULT_CLASSES)]
        jobs.append(Job(
            id=f"faults/{seed:03d}-{fault_class}",
            fn="repro.faults.campaign:campaign_point",
            params={"seed": seed, "fault_class": fault_class,
                    "max_events": 3 if quick else 6},
            timeout=timeout,
            sweep="faults"))
    return jobs


def _aggregate(results: List[JobResult]) -> Dict[str, Any]:
    per_class: Dict[str, Dict[str, Any]] = {}
    for fault_class in FAULT_CLASSES:
        per_class[fault_class] = {
            "runs": 0, "absorbed": 0, "not_triggered": 0, "violated": 0,
            "exceptions_taken": 0, "max_inflation": 0, "violations": [],
        }
    for result in results:
        if not result.ok or not isinstance(result.value, dict):
            continue
        verdict = result.value
        row = per_class[verdict["fault_class"]]
        row["runs"] += 1
        row[verdict["status"].replace("-", "_")] += 1
        row["exceptions_taken"] += verdict["exceptions_taken"]
        row["max_inflation"] = max(row["max_inflation"],
                                   verdict["inflation"])
        for violation in verdict["violations"]:
            row["violations"].append(
                {"seed": verdict["seed"], **violation})
    return {name: row for name, row in per_class.items() if row["runs"]}


def run_campaign(seeds: int = 32,
                 workers: Optional[int] = None,
                 quick: bool = False,
                 parallel: bool = True,
                 chaos_rate: float = 0.0,
                 chaos_seed: int = 0,
                 output: Optional[pathlib.Path] = None) -> Dict[str, Any]:
    """Run the campaign and persist the structured report."""
    jobs = campaign_jobs(seeds, quick=quick)
    runner = Runner(max_workers=workers,
                    default_timeout=JOB_TIMEOUT,
                    chaos=ChaosMonkey(rate=chaos_rate, seed=chaos_seed))
    results = runner.run(jobs, parallel=parallel)

    harness_rows = {
        r.job_id: {
            "status": r.status,
            "attempts": r.attempts,
            "error_kind": r.error_kind,
            "duration_s": round(r.duration, 4),
        }
        for r in results
    }
    unhandled = {r.job_id: (r.error or r.status) for r in results
                 if not r.ok and r.status != "interrupted"}
    interrupted = sum(1 for r in results if r.status == "interrupted")
    classes = _aggregate(results)
    violated = sum(row["violated"] for row in classes.values())
    payload: Dict[str, Any] = {
        "schema": 1,
        "seeds": seeds,
        "quick": quick,
        "chaos_rate": chaos_rate,
        "complete": interrupted == 0,
        "summary": {
            "runs": sum(row["runs"] for row in classes.values()),
            "absorbed": sum(row["absorbed"] for row in classes.values()),
            "not_triggered": sum(row["not_triggered"]
                                 for row in classes.values()),
            "violated": violated,
            "unhandled_jobs": len(unhandled),
            "interrupted_jobs": interrupted,
            "retried_jobs": sum(1 for r in results
                                if r.status == "retried-ok"),
        },
        "classes": classes,
        "harness": harness_rows,
    }
    if unhandled:
        payload["unhandled"] = unhandled
    path = pathlib.Path(output) if output else DEFAULT_REPORT
    write_json_atomic(path, payload)
    payload["report_path"] = str(path)
    return payload


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a campaign report."""
    summary = payload["summary"]
    lines = [
        f"fault campaign    {summary['runs']} runs over "
        f"{len(payload['classes'])} fault classes "
        f"({payload['seeds']} seeds"
        + (", quick" if payload.get("quick") else "") + ")",
        f"  absorbed        {summary['absorbed']}",
        f"  not triggered   {summary['not_triggered']}",
        f"  violations      {summary['violated']}",
        f"  harness         {summary['unhandled_jobs']} unhandled, "
        f"{summary['retried_jobs']} retried"
        + (f", {summary['interrupted_jobs']} interrupted"
           if summary.get("interrupted_jobs") else "")
        + (f" (chaos rate {payload['chaos_rate']})"
           if payload.get("chaos_rate") else ""),
        f"  {'class':<16} {'runs':>4} {'absorb':>6} {'quiet':>5} "
        f"{'viol':>4} {'exc':>4} {'max infl':>8}",
    ]
    for name, row in sorted(payload["classes"].items()):
        lines.append(
            f"  {name:<16} {row['runs']:>4} {row['absorbed']:>6} "
            f"{row['not_triggered']:>5} {row['violated']:>4} "
            f"{row['exceptions_taken']:>4} {row['max_inflation']:>8}")
    for name, row in sorted(payload["classes"].items()):
        for violation in row["violations"][:10]:
            lines.append(f"  ! {name} seed {violation['seed']}: "
                         f"[{violation['kind']}] {violation['detail']}")
    return "\n".join(lines)
