"""Differential invariant checking: faulted run vs golden run.

The golden reference is the same workload on the same machine
configuration with *no* fault hook attached.  After the faulted run the
checker asserts the paper's guarantees:

* **restartability / reconvergence** -- every injected exception vectors
  through the handler and the PC-chain restart brings the machine back:
  final registers, PSW, console output and every memory word outside the
  handler scratch area equal the golden run's;
* **bounded late-miss inflation** -- the late-miss retry loop and every
  other injected stall terminate: the faulted run halts within
  ``horizon + plan.cycle_budget()`` cycles;
* **no squashed commit** -- the squash FSM never lets a squashed
  instruction write the register file (audited on the writeback path);
* **handler accounting** -- the handler's exception counter equals the
  number of exceptions the machine actually took (none lost, none
  duplicated by a botched restart).

A faulted run with zero violations is *absorbed*; a plan none of whose
events landed before the program halted is *not-triggered* (reported so
campaigns can tell silence from luck).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.coproc.fpu import Fpu
from repro.core import Machine, MachineConfig
from repro.core.pipeline import Flight, Pipeline
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, build_plan
from repro.faults.workloads import (
    CLASS_WORKLOADS,
    HANDLER_COUNT,
    SCRATCH_WORDS,
    fault_program,
)

#: golden runs must halt well within this many cycles (tiny workloads)
GOLDEN_MAX_CYCLES = 2_000_000


class WritebackAudit:
    """Watches the writeback stage for squashed commits.

    Wraps ``pipeline._writeback`` as an instance attribute (instance
    lookup shadows the class method), so only audited -- i.e. faulted --
    runs pay for it; the hot path of normal runs is untouched.
    """

    def __init__(self, pipeline: Pipeline):
        self.violations: List[Dict[str, int]] = []
        self._regs = pipeline.regs
        self._original = pipeline._writeback
        pipeline._writeback = self._audited   # type: ignore[method-assign]

    def _audited(self, flight: Optional[Flight]) -> None:
        if flight is None or not flight.squashed or not flight.dest:
            self._original(flight)
            return
        before = self._regs.read(flight.dest)
        self._original(flight)
        after = self._regs.read(flight.dest)
        if after != before:
            self.violations.append(
                {"pc": flight.pc, "register": flight.dest,
                 "before": before, "after": after})


@dataclasses.dataclass
class DifferentialReport:
    """Outcome of one faulted-vs-golden differential run."""

    seed: int
    fault_class: str
    workload: str
    status: str                  #: "absorbed" | "not-triggered" | "violated"
    violations: List[Dict[str, object]]
    golden_cycles: int
    faulted_cycles: int
    cycle_budget: int
    exceptions_taken: int
    handler_count: int
    events_applied: int
    events_effective: int

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["inflation"] = self.faulted_cycles - self.golden_cycles
        return data


def _build_machine(workload: str,
                   config: Optional[MachineConfig] = None) -> Machine:
    machine = Machine(config or MachineConfig())
    machine.attach_coprocessor(Fpu())
    machine.load_program(fault_program(workload))
    return machine


def golden_run(workload: str,
               config: Optional[MachineConfig] = None) -> Machine:
    """The fault-free reference execution of a workload."""
    machine = _build_machine(workload, config)
    machine.run(GOLDEN_MAX_CYCLES)
    if not machine.halted:
        raise RuntimeError(
            f"golden run of fault workload {workload!r} did not halt "
            f"within {GOLDEN_MAX_CYCLES} cycles -- workload bug")
    return machine


def _compare_state(golden: Machine, faulted: Machine,
                   violations: List[Dict[str, object]]) -> None:
    """Architectural-state comparison, scratch words excluded."""
    for register in range(1, 32):
        want = golden.regs.read(register)
        got = faulted.regs.read(register)
        if want != got:
            violations.append({
                "kind": "state-divergence",
                "detail": f"r{register}: golden {want:#x}, "
                          f"faulted {got:#x}"})
    if golden.psw.value != faulted.psw.value:
        violations.append({
            "kind": "state-divergence",
            "detail": f"psw: golden {golden.psw.value:#x}, "
                      f"faulted {faulted.psw.value:#x}"})
    if (golden.console.values != faulted.console.values
            or golden.console.text != faulted.console.text):
        violations.append({
            "kind": "state-divergence",
            "detail": f"console: golden {golden.console.values!r}, "
                      f"faulted {faulted.console.values!r}"})
    golden_words = golden.memory.system._words
    faulted_words = faulted.memory.system._words
    for address in sorted(set(golden_words) | set(faulted_words)):
        if address in SCRATCH_WORDS:
            continue
        want = golden_words.get(address, 0)
        got = faulted_words.get(address, 0)
        if want != got:
            violations.append({
                "kind": "state-divergence",
                "detail": f"mem[{address:#x}]: golden {want:#x}, "
                          f"faulted {got:#x}"})


def run_differential(plan: FaultPlan, workload: str,
                     config: Optional[MachineConfig] = None,
                     golden: Optional[Machine] = None) -> DifferentialReport:
    """Run ``workload`` under ``plan`` and check every invariant.

    ``golden`` may be supplied to amortize the reference run across many
    plans of the same workload (the campaign driver does this per
    worker); it must come from :func:`golden_run` on the same config.
    """
    if golden is None:
        golden = golden_run(workload, config)

    faulted = _build_machine(workload, config)
    injector = FaultInjector(plan)
    audit = WritebackAudit(faulted.pipeline)
    faulted.set_fault_hook(injector)
    budget = plan.cycle_budget()
    faulted.run(golden.stats.cycles + budget)

    violations: List[Dict[str, object]] = []
    if not faulted.halted:
        violations.append({
            "kind": "no-termination",
            "detail": f"faulted run still live after golden "
                      f"{golden.stats.cycles} + budget {budget} cycles "
                      "(late-miss retry or exception loop did not "
                      "terminate)"})
    for entry in audit.violations:
        violations.append({
            "kind": "squashed-commit",
            "detail": f"squashed instruction at pc={entry['pc']:#x} "
                      f"wrote r{entry['register']}"})
    if faulted.halted:
        _compare_state(golden, faulted, violations)
        handler_count = faulted.memory.system.read(HANDLER_COUNT)
        if handler_count != faulted.stats.interrupts:
            violations.append({
                "kind": "handler-miscount",
                "detail": f"handler counted {handler_count} exceptions, "
                          f"machine took {faulted.stats.interrupts}"})
        handler_seen = handler_count
    else:
        handler_seen = faulted.memory.system.read(HANDLER_COUNT)

    summary = injector.summary()
    if violations:
        status = "violated"
    elif summary["events_effective"]:
        status = "absorbed"
    else:
        status = "not-triggered"
    return DifferentialReport(
        seed=plan.seed,
        fault_class=plan.fault_class,
        workload=workload,
        status=status,
        violations=violations,
        golden_cycles=golden.stats.cycles,
        faulted_cycles=faulted.stats.cycles,
        cycle_budget=budget,
        exceptions_taken=faulted.stats.interrupts,
        handler_count=handler_seen,
        events_applied=summary["events_applied"],
        events_effective=summary["events_effective"],
    )


def differential_for_seed(seed: int, fault_class: str,
                          workload: Optional[str] = None,
                          config: Optional[MachineConfig] = None,
                          golden: Optional[Machine] = None,
                          max_events: int = 6) -> DifferentialReport:
    """Plan construction + differential run for one campaign point."""
    workload = workload or CLASS_WORKLOADS[fault_class]
    if golden is None:
        golden = golden_run(workload, config)
    plan = build_plan(seed, fault_class, horizon=golden.stats.cycles,
                      max_events=max_events)
    return run_differential(plan, workload, config=config, golden=golden)
