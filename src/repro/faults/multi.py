"""Node-level fault campaigns on the shared-memory multiprocessor.

Single-node fault campaigns (:mod:`repro.faults.campaign`) check that one
machine absorbs its own cache faults.  The multiprocessor campaign checks
the *system-level* guarantee: a timing fault injected into **one node's**
caches mid-run must leave every other node's results golden and let the
victim reconverge -- because both the Icache valid array and the Ecache
tags are timing-only models over the single shared functional memory
image, the only legal effect of corrupting them is extra refetch latency
(and the bus contention it radiates to the neighbours).

Each campaign point runs a parallel workload twice on an ``n``-node
:class:`~repro.multi.system.MultiMachine` -- once fault-free, once with a
seeded mid-run injection into a seeded victim node -- and then asserts

* **bounded termination**: the faulted system halts within the golden
  cycle count plus a per-fault budget (late-miss retries and bus
  contention terminate);
* **result integrity**: the shared console output and every shared
  memory word *outside the per-node stack region* equal the golden
  run's.  Stacks are excluded because barrier spin counts (and so the
  locals frames hold at halt) legitimately depend on timing.

Only ``psieve`` and ``pintmm`` participate: ``pring``'s Peterson lock
state (``pturn``) finishes at a timing-dependent value by design, so its
memory image is not comparable across timing perturbations.
"""

from __future__ import annotations

import pathlib
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import MachineConfig
from repro.faults.plan import WARMUP_CYCLES
from repro.harness.bench import REPO_ROOT, write_json_atomic
from repro.harness.runner import Job, JobResult, Runner
from repro.lang.codegen import NODE_STACK_WORDS, STACK_TOP
from repro.multi.system import MultiMachine
from repro.workloads.parallel import QUICK_SIZES, parallel_program

DEFAULT_MULTI_REPORT = REPO_ROOT / "FAULTS_multi.json"

#: node-level fault classes: which timing structure of the victim node
#: gets corrupted mid-run
MULTI_FAULT_CLASSES: Tuple[str, ...] = ("node-icache-valid",
                                        "node-ecache-tag")

#: workloads with timing-independent final memory (see module docstring)
MULTI_FAULT_WORKLOADS: Tuple[str, ...] = ("psieve", "pintmm")

#: default node count for campaign points (a mid-size system: big enough
#: for real neighbour traffic, small enough for CI)
DEFAULT_NODES = 4

#: per-differential-run watchdog for the Runner
JOB_TIMEOUT = 120.0

#: golden multiprocessor runs must halt within this many global cycles
GOLDEN_MAX_CYCLES = 5_000_000


def _stack_region(nodes: int) -> range:
    """Shared-memory word addresses holding the per-node stacks."""
    return range(STACK_TOP - nodes * NODE_STACK_WORDS, STACK_TOP)


def _build_system(workload: str, nodes: int,
                  size: Optional[int]) -> MultiMachine:
    system = MultiMachine(nodes, MachineConfig())
    system.load_program(parallel_program(workload, nodes, size))
    return system


def _inject(system: MultiMachine, victim: int, fault_class: str,
            rng: random.Random, count: int) -> int:
    """Corrupt the victim node's cache; returns structures corrupted."""
    machine = system.node(victim)
    if fault_class == "node-icache-valid":
        return machine.icache.inject_valid_flips(rng, count)
    if fault_class == "node-ecache-tag":
        return machine.ecache.inject_tag_corruption(rng, count)
    raise ValueError(f"unknown node fault class {fault_class!r}; "
                     f"expected one of {MULTI_FAULT_CLASSES}")


def _fault_budget(fault_class: str, count: int, nodes: int,
                  horizon: int) -> int:
    """Worst-case global-cycle inflation for one injection.

    Refetches pay the late-miss penalty *and* radiate bus contention to
    up to ``nodes - 1`` waiting neighbours, hence the node multiplier.
    """
    per_event = 64 if fault_class == "node-icache-valid" else 16
    return per_event * count * nodes + max(1024, horizon // 2)


def node_fault_point(seed: int, fault_class: str,
                     nodes: int = DEFAULT_NODES,
                     quick: bool = False) -> Dict[str, Any]:
    """One campaign point: golden run, seeded victim injection, verdict.

    Deterministic in ``(seed, fault_class, nodes, quick)``.  Returns a
    picklable verdict dict with ``status`` one of ``"absorbed"``
    (fault landed, every invariant held), ``"not-triggered"`` (the
    program halted before the injection cycle, or the victim's cache was
    cold), or ``"violated"`` (with a ``violations`` list).
    """
    class_salt = MULTI_FAULT_CLASSES.index(fault_class)
    rng = random.Random(((seed << 8) ^ (class_salt * 0x9E3779B1))
                        & 0xFFFFFFFF)
    workload = MULTI_FAULT_WORKLOADS[seed % len(MULTI_FAULT_WORKLOADS)]
    size = QUICK_SIZES[workload] if quick else None
    victim = rng.randrange(nodes)
    count = rng.randint(1, 6)

    golden = _build_system(workload, nodes, size)
    golden.run(GOLDEN_MAX_CYCLES)
    if not golden.all_halted:
        raise RuntimeError(
            f"golden {nodes}-node run of {workload!r} did not halt "
            f"within {GOLDEN_MAX_CYCLES} cycles -- workload bug")
    horizon = golden.cycles
    fault_cycle = rng.randint(WARMUP_CYCLES,
                              max(WARMUP_CYCLES + 1, horizon * 2 // 3))

    faulted = _build_system(workload, nodes, size)
    faulted.run(fault_cycle)
    effective = 0
    if not faulted.all_halted:
        effective = _inject(faulted, victim, fault_class, rng, count)
    budget = _fault_budget(fault_class, count, nodes, horizon)
    faulted.run(horizon + budget)

    violations: List[Dict[str, str]] = []
    if not faulted.all_halted:
        violations.append({
            "kind": "no-termination",
            "detail": f"system still live after golden {horizon} + "
                      f"budget {budget} global cycles"})
    else:
        if (golden.console.values != faulted.console.values
                or golden.console.text != faulted.console.text):
            violations.append({
                "kind": "result-divergence",
                "detail": f"console: golden {golden.console.values!r}, "
                          f"faulted {faulted.console.values!r}"})
        stacks = _stack_region(nodes)
        golden_words = golden.memory.system._words
        faulted_words = faulted.memory.system._words
        for address in sorted(set(golden_words) | set(faulted_words)):
            if address in stacks:
                continue
            want = golden_words.get(address, 0)
            got = faulted_words.get(address, 0)
            if want != got:
                violations.append({
                    "kind": "result-divergence",
                    "detail": f"mem[{address:#x}]: golden {want:#x}, "
                              f"faulted {got:#x}"})

    if violations:
        status = "violated"
    elif effective:
        status = "absorbed"
    else:
        status = "not-triggered"
    return {
        "seed": seed,
        "fault_class": fault_class,
        "workload": workload,
        "nodes": nodes,
        "victim": victim,
        "fault_cycle": fault_cycle,
        "status": status,
        "violations": violations,
        "golden_cycles": horizon,
        "faulted_cycles": faulted.cycles,
        "cycle_budget": budget,
        "events_effective": effective,
        "inflation": faulted.cycles - horizon,
    }


def multi_campaign_jobs(seeds: int, nodes: int = DEFAULT_NODES,
                        quick: bool = False,
                        timeout: Optional[float] = JOB_TIMEOUT) -> List[Job]:
    """The seeded grid: fault classes rotate across seeds (and workloads
    rotate inside :func:`node_fault_point`), so every (class, workload)
    pair is hit roughly ``seeds / 4`` times."""
    jobs = []
    for seed in range(seeds):
        fault_class = MULTI_FAULT_CLASSES[seed % len(MULTI_FAULT_CLASSES)]
        jobs.append(Job(
            id=f"faults-multi/{seed:03d}-{fault_class}",
            fn="repro.faults.multi:node_fault_point",
            params={"seed": seed, "fault_class": fault_class,
                    "nodes": nodes, "quick": quick},
            timeout=timeout,
            sweep="faults-multi"))
    return jobs


def _aggregate(results: List[JobResult]) -> Dict[str, Any]:
    per_class: Dict[str, Dict[str, Any]] = {}
    for fault_class in MULTI_FAULT_CLASSES:
        per_class[fault_class] = {
            "runs": 0, "absorbed": 0, "not_triggered": 0, "violated": 0,
            "max_inflation": 0, "violations": [],
        }
    for result in results:
        if not result.ok or not isinstance(result.value, dict):
            continue
        verdict = result.value
        row = per_class[verdict["fault_class"]]
        row["runs"] += 1
        row[verdict["status"].replace("-", "_")] += 1
        row["max_inflation"] = max(row["max_inflation"],
                                   verdict["inflation"])
        for violation in verdict["violations"]:
            row["violations"].append(
                {"seed": verdict["seed"],
                 "workload": verdict["workload"],
                 "victim": verdict["victim"], **violation})
    return {name: row for name, row in per_class.items() if row["runs"]}


def run_multi_campaign(seeds: int = 16,
                       nodes: int = DEFAULT_NODES,
                       workers: Optional[int] = None,
                       quick: bool = False,
                       parallel: bool = True,
                       output: Optional[pathlib.Path] = None
                       ) -> Dict[str, Any]:
    """Fan the node-fault grid across the Runner; persist the report.

    Same exit taxonomy as the single-node campaign: an ``unhandled`` job
    is a harness/model crash; a classified violation is a finding.
    """
    jobs = multi_campaign_jobs(seeds, nodes=nodes, quick=quick)
    runner = Runner(max_workers=workers, default_timeout=JOB_TIMEOUT)
    results = runner.run(jobs, parallel=parallel)

    unhandled = {r.job_id: (r.error or r.status) for r in results
                 if not r.ok}
    classes = _aggregate(results)
    payload: Dict[str, Any] = {
        "schema": 1,
        "seeds": seeds,
        "nodes": nodes,
        "quick": quick,
        "summary": {
            "runs": sum(row["runs"] for row in classes.values()),
            "absorbed": sum(row["absorbed"] for row in classes.values()),
            "not_triggered": sum(row["not_triggered"]
                                 for row in classes.values()),
            "violated": sum(row["violated"] for row in classes.values()),
            "unhandled_jobs": len(unhandled),
        },
        "classes": classes,
        "harness": {
            r.job_id: {
                "status": r.status,
                "attempts": r.attempts,
                "duration_s": round(r.duration, 4),
            }
            for r in results
        },
    }
    if unhandled:
        payload["unhandled"] = unhandled
    path = pathlib.Path(output) if output else DEFAULT_MULTI_REPORT
    write_json_atomic(path, payload)
    payload["report_path"] = str(path)
    return payload


def format_summary(payload: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a node-fault report."""
    summary = payload["summary"]
    lines = [
        f"node faults       {summary['runs']} runs on "
        f"{payload['nodes']}-node systems ({payload['seeds']} seeds"
        + (", quick" if payload.get("quick") else "") + ")",
        f"  absorbed        {summary['absorbed']}",
        f"  not triggered   {summary['not_triggered']}",
        f"  violations      {summary['violated']}",
        f"  harness         {summary['unhandled_jobs']} unhandled",
    ]
    for name, row in sorted(payload["classes"].items()):
        lines.append(
            f"  {name:<18} {row['runs']:>4} runs, "
            f"{row['absorbed']} absorbed, {row['not_triggered']} quiet, "
            f"{row['violated']} violated, "
            f"max inflation {row['max_inflation']}")
    for name, row in sorted(payload["classes"].items()):
        for violation in row["violations"][:10]:
            lines.append(
                f"  ! {name} seed {violation['seed']} "
                f"({violation['workload']}, victim node "
                f"{violation['victim']}): [{violation['kind']}] "
                f"{violation['detail']}")
    return "\n".join(lines)
